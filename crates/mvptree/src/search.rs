//! Similarity search in mvp-trees — the paper's §4.3 algorithm (range
//! queries) plus a k-nearest-neighbor extension.

use vantage_core::trace::{DistanceRole, NoTrace, PruneReason, TraceSink};
use vantage_core::{BoundedMetric, KnnCollector, Neighbor};

use crate::node::{Node, NodeId};
use crate::tree::MvpTree;

/// The shell `[lo, hi]` of partition `i` given its cutoff vector.
#[inline]
fn shell(cutoffs: &[f64], i: usize) -> (f64, f64) {
    let lo = if i == 0 { 0.0 } else { cutoffs[i - 1] };
    let hi = if i == cutoffs.len() {
        f64::INFINITY
    } else {
        cutoffs[i]
    };
    (lo, hi)
}

/// Lower bound on the distance from a query at distance `d` (to the
/// vantage point) to any point inside the shell `[lo, hi]`.
#[inline]
fn shell_bound(d: f64, lo: f64, hi: f64) -> f64 {
    (d - hi).max(lo - d).max(0.0)
}

impl<T, M: BoundedMetric<T>> MvpTree<T, M> {
    /// Range search (paper §4.3).
    ///
    /// Depth-first descent maintaining `PATH[]`, the distances between the
    /// query and the first `p` vantage points on the current path. At each
    /// node exactly two distances are computed (`d(Q, Sv1)`, `d(Q, Sv2)`);
    /// branch `(i, j)` is entered only when the query ball can intersect
    /// both its vp1-shell and its vp2-shell. At a leaf, a data point's
    /// exact distance is computed **only** if it survives the `D1`, `D2`
    /// and all `p` `PATH` triangle-inequality filters — the paper's
    /// delayed major filtering step.
    pub(crate) fn range_search(&self, query: &T, radius: f64) -> Vec<Neighbor> {
        self.range_traced(query, radius, &mut NoTrace)
    }

    /// [`range`](vantage_core::MetricIndex::range) with instrumentation:
    /// reports every vantage/candidate distance, every shell prune and
    /// leaf-filter rejection (with the triangle-inequality bound that
    /// justified it), and the per-level fanout into `sink`. Answers and
    /// distance computations are identical to the untraced method — with
    /// [`NoTrace`] the sink calls compile away.
    pub fn range_traced<S: TraceSink>(
        &self,
        query: &T,
        radius: f64,
        sink: &mut S,
    ) -> Vec<Neighbor> {
        let mut out = Vec::new();
        let mut path: Vec<f64> = Vec::with_capacity(self.params.p);
        if let Some(root) = self.root {
            self.range_node(root, query, radius, 0, &mut path, sink, &mut out);
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn range_node<S: TraceSink>(
        &self,
        node: NodeId,
        query: &T,
        radius: f64,
        level: u32,
        path: &mut Vec<f64>,
        sink: &mut S,
        out: &mut Vec<Neighbor>,
    ) {
        match self.node(node) {
            Node::Leaf { vp1, vp2, entries } => {
                sink.enter_node(level, true);
                // Step 1: the vantage points are data points, checked
                // directly.
                sink.distance(DistanceRole::Vantage);
                let dq1 = self.metric.distance(query, &self.items[*vp1 as usize]);
                if dq1 <= radius {
                    out.push(Neighbor::new(*vp1 as usize, dq1));
                }
                let Some(vp2) = vp2 else { return };
                sink.distance(DistanceRole::Vantage);
                let dq2 = self.metric.distance(query, &self.items[*vp2 as usize]);
                if dq2 <= radius {
                    out.push(Neighbor::new(*vp2 as usize, dq2));
                }
                // Step 2: filter entries by D1, D2, then PATH; compute the
                // real distance only for survivors, through the bounded
                // kernel with the query radius as the bound.
                'entry: for i in 0..entries.len() {
                    let b1 = (dq1 - entries.d1(i)).abs();
                    if b1 > radius {
                        sink.reject(PruneReason::PrecomputedD1, b1);
                        continue;
                    }
                    let b2 = (dq2 - entries.d2(i)).abs();
                    if b2 > radius {
                        sink.reject(PruneReason::PrecomputedD2, b2);
                        continue;
                    }
                    for (&qp, &ep) in path.iter().zip(entries.path(i)) {
                        let bp = (qp - ep).abs();
                        if bp > radius {
                            sink.reject(PruneReason::PathFilter, bp);
                            continue 'entry;
                        }
                    }
                    let id = entries.id(i) as usize;
                    sink.distance(DistanceRole::Candidate);
                    match self
                        .metric
                        .distance_within_frac(query, &self.items[id], radius)
                    {
                        (Some(d), _) => out.push(Neighbor::new(id, d)),
                        (None, work) => {
                            if S::ENABLED {
                                sink.abandon(DistanceRole::Candidate, work);
                            }
                        }
                    }
                }
            }
            Node::Internal {
                vp1,
                vp2,
                cutoffs1,
                cutoffs2,
                children,
            } => {
                sink.enter_node(level, false);
                let m = self.params.m;
                sink.distance(DistanceRole::Vantage);
                let dq1 = self.metric.distance(query, &self.items[*vp1 as usize]);
                if dq1 <= radius {
                    out.push(Neighbor::new(*vp1 as usize, dq1));
                }
                sink.distance(DistanceRole::Vantage);
                let dq2 = self.metric.distance(query, &self.items[*vp2 as usize]);
                if dq2 <= radius {
                    out.push(Neighbor::new(*vp2 as usize, dq2));
                }
                // Step 3.1: extend the query's PATH.
                let saved = path.len();
                if path.len() < self.params.p {
                    path.push(dq1);
                }
                if path.len() < self.params.p {
                    path.push(dq2);
                }
                // Steps 3.2/3.3 generalized: interval overlap against both
                // vantage points' shells.
                for i in 0..m {
                    let (lo1, hi1) = shell(cutoffs1, i);
                    if dq1 - radius > hi1 || dq1 + radius < lo1 {
                        if S::ENABLED {
                            // One prune event per subtree the failed
                            // vp1-shell test rules out.
                            for j in 0..m {
                                if children[i * m + j].is_some() {
                                    sink.prune(
                                        level + 1,
                                        PruneReason::FirstShell,
                                        shell_bound(dq1, lo1, hi1),
                                    );
                                }
                            }
                        }
                        continue;
                    }
                    for j in 0..m {
                        let Some(child) = children[i * m + j] else {
                            continue;
                        };
                        let (lo2, hi2) = shell(&cutoffs2[i], j);
                        if dq2 - radius > hi2 || dq2 + radius < lo2 {
                            if S::ENABLED {
                                sink.prune(
                                    level + 1,
                                    PruneReason::SecondShell,
                                    shell_bound(dq2, lo2, hi2),
                                );
                            }
                            continue;
                        }
                        self.range_node(child, query, radius, level + 1, path, sink, out);
                    }
                }
                path.truncate(saved);
            }
        }
    }

    /// k-nearest-neighbor search: depth-first branch-and-bound with the
    /// dynamically shrinking radius of a [`KnnCollector`], visiting
    /// children in order of their lower-bound distance. The leaf-level
    /// `D1`/`D2`/`PATH` arrays provide per-point lower bounds
    /// `max_i |PATH_q[i] − PATH_x[i]|`, skipping exact computations the
    /// same way the paper's range filter does.
    pub(crate) fn knn_search(&self, query: &T, k: usize) -> Vec<Neighbor> {
        self.knn_traced(query, k, &mut NoTrace)
    }

    /// [`knn`](vantage_core::MetricIndex::knn) with instrumentation; see
    /// [`range_traced`](MvpTree::range_traced). Leaf rejections are
    /// attributed to the filter stage with the *tightest* lower bound
    /// (the one that would exclude the candidate at the largest radius);
    /// children abandoned by the bound-ordered early exit are reported as
    /// shell prunes attributed the same way.
    pub fn knn_traced<S: TraceSink>(&self, query: &T, k: usize, sink: &mut S) -> Vec<Neighbor> {
        let mut collector = KnnCollector::new(k);
        self.knn_into(&mut collector, query, sink);
        collector.into_sorted()
    }

    /// Runs the kNN traversal into a caller-provided collector — the
    /// shared kernel behind [`knn_traced`](MvpTree::knn_traced) and the
    /// sharded scatter path (which passes a collector wired to a
    /// cross-shard bound).
    pub(crate) fn knn_into<S: TraceSink>(
        &self,
        collector: &mut KnnCollector,
        query: &T,
        sink: &mut S,
    ) {
        if collector.k() == 0 {
            return;
        }
        let mut path: Vec<f64> = Vec::with_capacity(self.params.p);
        if let Some(root) = self.root {
            self.knn_node(root, query, 0, collector, &mut path, sink);
        }
    }

    /// The stage that produced a rejected leaf candidate's lower bound
    /// (`bound` is the max of `b1`, `b2` and the path differences):
    /// trace-only attribution, always guarded by `S::ENABLED`.
    fn attribute_leaf_bound(b1: f64, b2: f64, bound: f64) -> PruneReason {
        if b1 >= bound {
            PruneReason::PrecomputedD1
        } else if b2 >= bound {
            PruneReason::PrecomputedD2
        } else {
            PruneReason::PathFilter
        }
    }

    fn knn_node<S: TraceSink>(
        &self,
        node: NodeId,
        query: &T,
        level: u32,
        collector: &mut KnnCollector,
        path: &mut Vec<f64>,
        sink: &mut S,
    ) {
        match self.node(node) {
            Node::Leaf { vp1, vp2, entries } => {
                sink.enter_node(level, true);
                sink.distance(DistanceRole::Vantage);
                let dq1 = self.metric.distance(query, &self.items[*vp1 as usize]);
                collector.offer(*vp1 as usize, dq1);
                let Some(vp2) = vp2 else { return };
                sink.distance(DistanceRole::Vantage);
                let dq2 = self.metric.distance(query, &self.items[*vp2 as usize]);
                collector.offer(*vp2 as usize, dq2);
                for i in 0..entries.len() {
                    let b1 = (dq1 - entries.d1(i)).abs();
                    let b2 = (dq2 - entries.d2(i)).abs();
                    let mut bound = b1.max(b2);
                    for (&qp, &ep) in path.iter().zip(entries.path(i)) {
                        bound = bound.max((qp - ep).abs());
                    }
                    if bound <= collector.radius() {
                        let id = entries.id(i) as usize;
                        sink.distance(DistanceRole::Candidate);
                        // Bounded by the current k-th best distance: an
                        // abandoned candidate is one the collector's
                        // strict `<` would have discarded.
                        match self.metric.distance_within_frac(
                            query,
                            &self.items[id],
                            collector.radius(),
                        ) {
                            (Some(d), _) => {
                                collector.offer(id, d);
                            }
                            (None, work) => {
                                if S::ENABLED {
                                    sink.abandon(DistanceRole::Candidate, work);
                                }
                            }
                        }
                    } else if S::ENABLED {
                        sink.reject(Self::attribute_leaf_bound(b1, b2, bound), bound);
                    }
                }
            }
            Node::Internal {
                vp1,
                vp2,
                cutoffs1,
                cutoffs2,
                children,
            } => {
                sink.enter_node(level, false);
                let m = self.params.m;
                sink.distance(DistanceRole::Vantage);
                let dq1 = self.metric.distance(query, &self.items[*vp1 as usize]);
                collector.offer(*vp1 as usize, dq1);
                sink.distance(DistanceRole::Vantage);
                let dq2 = self.metric.distance(query, &self.items[*vp2 as usize]);
                collector.offer(*vp2 as usize, dq2);
                let saved = path.len();
                if path.len() < self.params.p {
                    path.push(dq1);
                }
                if path.len() < self.params.p {
                    path.push(dq2);
                }
                // Order children by lower bound, then recurse while the
                // bound beats the (shrinking) k-th best distance. Each
                // entry carries which vantage point produced the larger
                // bound so abandoned children can be attributed; the sort
                // compares only the bound, so the extra field does not
                // perturb the visit order.
                let mut order: Vec<(f64, NodeId, PruneReason)> = Vec::with_capacity(m * m);
                for i in 0..m {
                    let (lo1, hi1) = shell(cutoffs1, i);
                    let b1 = shell_bound(dq1, lo1, hi1);
                    for j in 0..m {
                        let Some(child) = children[i * m + j] else {
                            continue;
                        };
                        let (lo2, hi2) = shell(&cutoffs2[i], j);
                        let b2 = shell_bound(dq2, lo2, hi2);
                        let reason = if b1 >= b2 {
                            PruneReason::FirstShell
                        } else {
                            PruneReason::SecondShell
                        };
                        order.push((b1.max(b2), child, reason));
                    }
                }
                order.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
                let mut abandoned = None;
                for (pos, &(bound, child, _)) in order.iter().enumerate() {
                    if bound > collector.radius() {
                        abandoned = Some(pos);
                        break;
                    }
                    self.knn_node(child, query, level + 1, collector, path, sink);
                }
                if S::ENABLED {
                    if let Some(pos) = abandoned {
                        for &(bound, _, reason) in &order[pos..] {
                            sink.prune(level + 1, reason, bound);
                        }
                    }
                }
                path.truncate(saved);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::params::MvpParams;
    use crate::tree::MvpTree;
    use vantage_core::prelude::*;
    use vantage_core::MetricIndex;

    fn grid() -> Vec<Vec<f64>> {
        let mut v = Vec::new();
        for x in 0..12 {
            for y in 0..12 {
                v.push(vec![f64::from(x), f64::from(y)]);
            }
        }
        v
    }

    fn tree(m: usize, k: usize, p: usize) -> MvpTree<Vec<f64>, Euclidean> {
        MvpTree::build(grid(), Euclidean, MvpParams::paper(m, k, p).seed(4)).unwrap()
    }

    fn oracle() -> LinearScan<Vec<f64>, Euclidean> {
        LinearScan::new(grid(), Euclidean)
    }

    #[test]
    fn range_matches_linear_scan_across_configs() {
        let o = oracle();
        for (m, k, p) in [(2, 1, 0), (2, 5, 2), (3, 9, 5), (3, 80, 5), (4, 13, 4)] {
            let t = tree(m, k, p);
            for (q, r) in [
                (vec![5.0, 5.0], 2.0),
                (vec![0.0, 0.0], 4.0),
                (vec![6.4, 3.2], 0.5),
                (vec![-3.0, 15.0], 6.0),
            ] {
                let mut a = t.range(&q, r);
                let mut b = o.range(&q, r);
                a.sort_unstable_by_key(|n| n.id);
                b.sort_unstable_by_key(|n| n.id);
                assert_eq!(a, b, "m={m} k={k} p={p} q={q:?} r={r}");
            }
        }
    }

    #[test]
    fn knn_matches_brute_force_distances() {
        let o = oracle();
        for (m, k, p) in [(2, 5, 2), (3, 9, 5), (3, 40, 5)] {
            let t = tree(m, k, p);
            for knn_k in [1, 2, 7, 50, 144, 200] {
                let a = t.knn(&vec![4.7, 8.1], knn_k);
                let b = o.knn(&vec![4.7, 8.1], knn_k);
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(&b) {
                    assert!(
                        (x.distance - y.distance).abs() < 1e-12,
                        "m={m} k={k} knn_k={knn_k}"
                    );
                }
            }
        }
    }

    #[test]
    fn knn_k_zero_is_empty() {
        assert!(tree(3, 9, 5).knn(&vec![0.0, 0.0], 0).is_empty());
    }

    #[test]
    fn range_zero_radius_finds_exact() {
        let t = tree(3, 9, 5);
        let hits = t.range(&vec![7.0, 7.0], 0.0);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].distance, 0.0);
    }

    #[test]
    fn huge_radius_returns_everything() {
        assert_eq!(tree(2, 5, 3).range(&vec![5.0, 5.0], 1e9).len(), 144);
    }

    #[test]
    fn search_beats_linear_scan_on_distance_count() {
        let metric = Counted::new(Euclidean);
        let probe = metric.clone();
        let t = MvpTree::build(grid(), metric, MvpParams::paper(2, 10, 4).seed(4)).unwrap();
        probe.reset();
        t.range(&vec![5.0, 5.0], 1.0);
        let used = probe.count();
        assert!(used < 144, "mvp-tree used {used} >= linear scan's 144");
    }

    #[test]
    fn knn_prunes_with_path_filters() {
        let metric = Counted::new(Euclidean);
        let probe = metric.clone();
        let t = MvpTree::build(grid(), metric, MvpParams::paper(3, 9, 5).seed(4)).unwrap();
        probe.reset();
        let out = t.knn(&vec![5.0, 5.0], 4);
        assert_eq!(out.len(), 4);
        assert!(probe.count() < 144);
    }

    #[test]
    fn path_filter_reduces_distance_count() {
        // Same tree shape (same seed), different p: more path distances
        // must never *increase* the leaf-level exact computations.
        let count_for = |p: usize| {
            let metric = Counted::new(Euclidean);
            let probe = metric.clone();
            let t = MvpTree::build(grid(), metric, MvpParams::paper(2, 20, p).seed(9)).unwrap();
            probe.reset();
            for x in 0..6 {
                t.range(&vec![f64::from(x) * 2.0, 5.5], 1.5);
            }
            probe.count()
        };
        let without = count_for(0);
        let with = count_for(6);
        assert!(
            with <= without,
            "p=6 used {with} > p=0's {without} distance computations"
        );
    }
}
