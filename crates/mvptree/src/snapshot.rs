//! Structural introspection for persistence.
//!
//! Mirrors `vantage_vptree::snapshot`: exposes the mvp-tree's node arena
//! as plain public data ([`MvpTreeParts`]) so a persistence layer can
//! serialize it, and rebuilds a tree from parts with full **structural**
//! validation (shapes, id ranges, preorder links, exactly-once item
//! coverage — see [`crate::validate::validate_arena`]). Pre-computed
//! distances (`D1`/`D2`/`PATH`, cutoffs) are checked for shape and
//! NaN-freeness but **not** recomputed — that is `check_invariants`' job
//! and costs `O(n · height)` metric evaluations; the on-disk format
//! guards payload integrity with checksums instead.

use vantage_core::{Result, VantageError};

use crate::arena::{MvpArena, MvpNodeView, NO_CHILD};
use crate::node::{LeafEntries, Node, NodeId};
use crate::params::MvpParams;
use crate::tree::MvpTree;

/// One leaf's data points in struct-of-arrays layout, public mirror of
/// the internal `LeafEntries`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RawMvpLeafEntries {
    /// Item ids, one per entry.
    pub ids: Vec<u32>,
    /// Exact distances to the leaf's first vantage point.
    pub d1: Vec<f64>,
    /// Exact distances to the leaf's second vantage point.
    pub d2: Vec<f64>,
    /// PATH length shared by every entry of this leaf.
    pub path_len: usize,
    /// Row-major PATH buffer, `ids.len() × path_len` values.
    pub path: Vec<f64>,
}

/// One mvp-tree node in the public mirror of the arena layout.
#[derive(Debug, Clone, PartialEq)]
pub enum RawMvpNode {
    /// Interior node: two vantage points, first- and second-level cutoffs,
    /// `m²` child slots in row-major order.
    Internal {
        /// First vantage point's item id.
        vp1: u32,
        /// Second vantage point's item id.
        vp2: u32,
        /// `m − 1` first-level cutoffs, non-decreasing.
        cutoffs1: Vec<f64>,
        /// `m` second-level cutoff vectors of `m − 1` values each.
        cutoffs2: Vec<Vec<f64>>,
        /// Child arena ids, slot `i·m + j` is subgroup `j` of group `i`.
        children: Vec<Option<u32>>,
    },
    /// Leaf node: its own vantage points plus the entry table.
    Leaf {
        /// The leaf's first vantage point.
        vp1: u32,
        /// The leaf's second vantage point (`None` for single-point
        /// leaves).
        vp2: Option<u32>,
        /// The leaf's data points with pre-computed distances.
        entries: RawMvpLeafEntries,
    },
}

/// The structural skeleton of an mvp-tree: everything except the item
/// payloads and the metric value itself.
#[derive(Debug, Clone, PartialEq)]
pub struct MvpTreeParts {
    /// The construction parameters the tree was built with.
    pub params: MvpParams,
    /// Arena id of the root node (`None` for an empty tree).
    pub root: Option<u32>,
    /// The node arena in DFS preorder (parents precede children).
    pub nodes: Vec<RawMvpNode>,
}

fn corrupt(detail: impl Into<String>) -> VantageError {
    VantageError::corrupt(detail)
}

impl<T, M> MvpTree<T, M> {
    /// Copies the tree's structural skeleton out as plain data.
    pub fn to_parts(&self) -> MvpTreeParts {
        let view = self.arena.view();
        let m = view.m();
        MvpTreeParts {
            params: self.params.clone(),
            root: self.root,
            nodes: (0..view.len() as u32)
                .map(|id| match view.node(id) {
                    MvpNodeView::Internal {
                        vp1,
                        vp2,
                        cutoffs1,
                        cutoffs2,
                        children,
                    } => RawMvpNode::Internal {
                        vp1,
                        vp2,
                        cutoffs1: cutoffs1.to_vec(),
                        cutoffs2: cutoffs2.chunks_exact(m - 1).map(<[f64]>::to_vec).collect(),
                        children: children
                            .iter()
                            .map(|&c| (c != NO_CHILD).then_some(c))
                            .collect(),
                    },
                    MvpNodeView::Leaf { vp1, vp2, entries } => RawMvpNode::Leaf {
                        vp1,
                        vp2,
                        entries: RawMvpLeafEntries {
                            ids: entries.ids().to_vec(),
                            d1: entries.d1_column().to_vec(),
                            d2: entries.d2_column().to_vec(),
                            path_len: entries.path_len(),
                            path: entries.path_block().to_vec(),
                        },
                    },
                })
                .collect(),
        }
    }

    /// Reassembles a tree from `items`, a `metric` and a previously
    /// exported (or deserialized) skeleton, validating every structural
    /// invariant the search paths rely on. No distances are recomputed —
    /// validation is `O(n + nodes)`; use
    /// [`check_invariants`](MvpTree::check_invariants) for the expensive
    /// distance re-verification.
    ///
    /// # Errors
    ///
    /// [`VantageError::CorruptSnapshot`] describing the first violated
    /// invariant, or an [`VantageError::InvalidParameter`] from the
    /// embedded params.
    pub fn from_parts(items: Vec<T>, metric: M, parts: MvpTreeParts) -> Result<Self> {
        let MvpTreeParts {
            params,
            root,
            nodes,
        } = parts;
        params.validate()?;
        let m = params.m;
        if nodes.len() >= (1usize << 31) {
            return Err(corrupt("node arena exceeds 2^31 - 1 nodes"));
        }

        // Per-node stride pre-checks so the arena packer below cannot
        // panic; every semantic invariant (id ranges, preorder links,
        // sortedness, NaN-freeness, capacities, exactly-once coverage)
        // is proved once by `validate_arena` inside `from_arena`.
        for (node_id, node) in nodes.iter().enumerate() {
            match node {
                RawMvpNode::Internal {
                    cutoffs1,
                    cutoffs2,
                    children,
                    ..
                } => {
                    if children.len() != m * m {
                        return Err(corrupt(format!(
                            "node {node_id}: {} child slots, fanout is m² = {}",
                            children.len(),
                            m * m
                        )));
                    }
                    if cutoffs1.len() + 1 != m {
                        return Err(corrupt(format!(
                            "node {node_id}: {} first-level cutoffs, expected {}",
                            cutoffs1.len(),
                            m - 1
                        )));
                    }
                    if cutoffs2.len() != m || cutoffs2.iter().any(|c| c.len() + 1 != m) {
                        return Err(corrupt(format!(
                            "node {node_id}: second-level cutoffs are not {m} vectors of {} values",
                            m - 1
                        )));
                    }
                }
                RawMvpNode::Leaf { entries, .. } => {
                    let n = entries.ids.len();
                    if entries.d1.len() != n || entries.d2.len() != n {
                        return Err(corrupt(format!(
                            "node {node_id}: D1/D2 columns ({}/{}) do not match {n} entries",
                            entries.d1.len(),
                            entries.d2.len()
                        )));
                    }
                    if entries.path.len() != n * entries.path_len {
                        return Err(corrupt(format!(
                            "node {node_id}: PATH buffer holds {} values, expected {n} × {}",
                            entries.path.len(),
                            entries.path_len
                        )));
                    }
                }
            }
        }

        let nodes: Vec<Node> = nodes
            .into_iter()
            .map(|node| match node {
                RawMvpNode::Internal {
                    vp1,
                    vp2,
                    cutoffs1,
                    cutoffs2,
                    children,
                } => Node::Internal {
                    vp1,
                    vp2,
                    cutoffs1,
                    cutoffs2,
                    children: children as Vec<Option<NodeId>>,
                },
                RawMvpNode::Leaf { vp1, vp2, entries } => Node::Leaf {
                    vp1,
                    vp2,
                    entries: LeafEntries::from_raw(
                        entries.ids,
                        entries.d1,
                        entries.d2,
                        entries.path_len,
                        entries.path,
                    ),
                },
            })
            .collect();
        let arena = MvpArena::from_nodes(m, &nodes);
        Self::from_arena(items, metric, params, root, arena)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vantage_core::prelude::*;

    fn points(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| vec![f64::from(i as u32 % 23), f64::from(i as u32 % 31)])
            .collect()
    }

    fn tree() -> MvpTree<Vec<f64>, Euclidean> {
        MvpTree::build(points(300), Euclidean, MvpParams::paper(3, 8, 4).seed(11)).unwrap()
    }

    #[test]
    fn parts_round_trip_is_identical() {
        let original = tree();
        let parts = original.to_parts();
        let rebuilt =
            MvpTree::from_parts(original.items().to_vec(), Euclidean, parts.clone()).unwrap();
        assert_eq!(rebuilt.to_parts(), parts);
        let q = vec![11.0, 4.0];
        assert_eq!(original.range(&q, 6.0), rebuilt.range(&q, 6.0));
        assert_eq!(original.knn(&q, 7), rebuilt.knn(&q, 7));
        rebuilt.check_invariants().unwrap();
    }

    #[test]
    fn arena_round_trip_preserves_answers() {
        let original = tree();
        let rebuilt = MvpTree::from_arena(
            original.items().to_vec(),
            Euclidean,
            original.params().clone(),
            original.root(),
            original.arena.clone(),
        )
        .unwrap();
        let q = vec![11.0, 4.0];
        assert_eq!(original.range(&q, 6.0), rebuilt.range(&q, 6.0));
        assert_eq!(original.knn(&q, 7), rebuilt.knn(&q, 7));
        assert_eq!(original.k_farthest(&q, 5), rebuilt.k_farthest(&q, 5));
    }

    #[test]
    fn empty_tree_round_trips() {
        let original =
            MvpTree::build(Vec::<Vec<f64>>::new(), Euclidean, MvpParams::default()).unwrap();
        let rebuilt =
            MvpTree::from_parts(Vec::<Vec<f64>>::new(), Euclidean, original.to_parts()).unwrap();
        assert!(rebuilt.is_empty());
    }

    #[test]
    fn missing_item_is_rejected() {
        let original = tree();
        let mut parts = original.to_parts();
        // Drop one entry id from a leaf but keep its D1/D2 columns — both
        // the column shapes and the coverage bitmap must catch this.
        let leaf = parts
            .nodes
            .iter_mut()
            .find_map(|n| match n {
                RawMvpNode::Leaf { entries, .. } if !entries.ids.is_empty() => Some(entries),
                _ => None,
            })
            .expect("tree has a populated leaf");
        leaf.ids.pop();
        let err = MvpTree::from_parts(original.items().to_vec(), Euclidean, parts).unwrap_err();
        assert!(matches!(err, VantageError::CorruptSnapshot { .. }), "{err}");
    }

    #[test]
    fn path_buffer_length_mismatch_is_rejected() {
        let original = tree();
        let mut parts = original.to_parts();
        let leaf = parts
            .nodes
            .iter_mut()
            .find_map(|n| match n {
                RawMvpNode::Leaf { entries, .. }
                    if !entries.ids.is_empty() && entries.path_len > 0 =>
                {
                    Some(entries)
                }
                _ => None,
            })
            .expect("tree has a leaf with PATH data");
        leaf.path.pop();
        let err = MvpTree::from_parts(original.items().to_vec(), Euclidean, parts).unwrap_err();
        assert!(matches!(err, VantageError::CorruptSnapshot { .. }), "{err}");
    }

    #[test]
    fn oversized_leaf_is_rejected() {
        let original = tree();
        let mut parts = original.to_parts();
        // Shrink the declared capacity below an existing leaf's size.
        parts.params.k = 1;
        let err = MvpTree::from_parts(original.items().to_vec(), Euclidean, parts).unwrap_err();
        assert!(matches!(err, VantageError::CorruptSnapshot { .. }), "{err}");
    }

    #[test]
    fn forward_link_violation_is_rejected() {
        let original = tree();
        let mut parts = original.to_parts();
        let child = parts
            .nodes
            .iter_mut()
            .skip(1)
            .find_map(|n| match n {
                RawMvpNode::Internal { children, .. } => {
                    children.iter_mut().find_map(|c| c.as_mut())
                }
                RawMvpNode::Leaf { .. } => None,
            })
            .expect("tree has a non-root internal node");
        *child = 0;
        let err = MvpTree::from_parts(original.items().to_vec(), Euclidean, parts).unwrap_err();
        assert!(matches!(err, VantageError::CorruptSnapshot { .. }), "{err}");
    }
}
