//! Structural statistics and the paper's §4.2 counting identities.

use crate::arena::{MvpArenaView, MvpNodeView, NO_CHILD};
use crate::tree::MvpTree;

/// Shape summary of a built mvp-tree.
///
/// The paper's closed forms for a *full* tree of height `h` with
/// parameters `(m, k, p)` — `2·(m^{2h} − 1)/(m² − 1)` vantage points and
/// `m^{2(h−1)}·k` leaf points — correspond here to
/// `vantage_points` and `leaf_entries`; real datasets rarely produce
/// perfectly full trees, but `vantage_points + leaf_entries` always equals
/// the dataset size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MvpTreeStats {
    /// Number of interior nodes.
    pub internal_nodes: usize,
    /// Number of leaf nodes.
    pub leaf_nodes: usize,
    /// Number of data points stored as leaf entries (with `D1`/`D2`/`PATH`
    /// arrays).
    pub leaf_entries: usize,
    /// Number of data points serving as vantage points (two per internal
    /// node plus one or two per leaf).
    pub vantage_points: usize,
    /// Height: edges on the longest root-to-leaf path (0 for a single
    /// leaf or an empty tree).
    pub height: usize,
    /// Largest number of entries in any leaf.
    pub max_leaf_entries: usize,
    /// Longest `PATH` array stored in any leaf entry.
    pub max_path_len: usize,
}

impl MvpTreeStats {
    /// Fraction of data points living in leaves — the quantity the paper
    /// maximizes by keeping `k` large (§4.2: *"It is a good idea to keep k
    /// large so that most of the data items are kept in the leaves"*).
    pub fn leaf_fraction(&self) -> f64 {
        let total = self.leaf_entries + self.vantage_points;
        if total == 0 {
            0.0
        } else {
            self.leaf_entries as f64 / total as f64
        }
    }

    /// The paper's §4.2 closed form: *"A full mvp-tree with parameters
    /// (m, k, p) and height h has 2·(m^{2h} − 1)/(m² − 1) vantage
    /// points"* — two per node of a complete m²-ary tree with `levels`
    /// levels (the paper's `h` counts levels; [`MvpTreeStats::height`]
    /// counts edges, so `levels = height + 1`).
    pub fn full_tree_vantage_points(m: usize, levels: u32) -> u64 {
        let fanout = (m * m) as u64;
        2 * (fanout.pow(levels) - 1) / (fanout - 1)
    }

    /// The paper's §4.2 companion form: a full tree of `levels` levels
    /// stores *"(m^{2(h−1)})·k"* data points in its leaves (leaf count ×
    /// leaf capacity).
    pub fn full_tree_leaf_points(m: usize, levels: u32, k: usize) -> u64 {
        ((m * m) as u64).pow(levels - 1) * k as u64
    }
}

impl<T, M> MvpTree<T, M> {
    /// Computes structural statistics by walking the tree.
    pub fn stats(&self) -> MvpTreeStats {
        let mut s = MvpTreeStats {
            internal_nodes: 0,
            leaf_nodes: 0,
            leaf_entries: 0,
            vantage_points: 0,
            height: 0,
            max_leaf_entries: 0,
            max_path_len: 0,
        };
        if let Some(root) = self.root {
            s.height = walk(self.arena.view(), root, &mut s);
        }
        s
    }
}

fn walk(view: MvpArenaView<'_>, node: u32, s: &mut MvpTreeStats) -> usize {
    match view.node(node) {
        MvpNodeView::Leaf { vp2, entries, .. } => {
            s.leaf_nodes += 1;
            s.leaf_entries += entries.len();
            s.vantage_points += 1 + usize::from(vp2.is_some());
            s.max_leaf_entries = s.max_leaf_entries.max(entries.len());
            if !entries.is_empty() {
                // PATH lengths are uniform within a leaf.
                s.max_path_len = s.max_path_len.max(entries.path_len());
            }
            0
        }
        MvpNodeView::Internal { children, .. } => {
            s.internal_nodes += 1;
            s.vantage_points += 2;
            1 + children
                .iter()
                .filter(|&&c| c != NO_CHILD)
                .map(|&c| walk(view, c, s))
                .max()
                .unwrap_or(0)
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::params::MvpParams;
    use crate::stats::MvpTreeStats;
    use crate::tree::MvpTree;
    use vantage_core::prelude::*;

    fn points(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64]).collect()
    }

    #[test]
    fn empty_tree_stats() {
        let s = MvpTree::build(points(0), Euclidean, MvpParams::binary(4, 2))
            .unwrap()
            .stats();
        assert_eq!(s.internal_nodes + s.leaf_nodes, 0);
        assert_eq!(s.leaf_fraction(), 0.0);
    }

    #[test]
    fn conservation_of_points() {
        for n in [1, 2, 3, 10, 100, 777] {
            let s = MvpTree::build(points(n), Euclidean, MvpParams::paper(3, 9, 5).seed(2))
                .unwrap()
                .stats();
            assert_eq!(s.leaf_entries + s.vantage_points, n, "n={n}");
        }
    }

    #[test]
    fn large_k_puts_most_points_in_leaves() {
        let small_k = MvpTree::build(points(2000), Euclidean, MvpParams::paper(3, 9, 5))
            .unwrap()
            .stats();
        let large_k = MvpTree::build(points(2000), Euclidean, MvpParams::paper(3, 80, 5))
            .unwrap()
            .stats();
        assert!(large_k.leaf_fraction() > small_k.leaf_fraction());
        assert!(large_k.leaf_fraction() > 0.9);
    }

    #[test]
    fn mvp_tree_is_shorter_than_equivalent_vp_tree() {
        // Fanout m² vs m: the mvp-tree should be roughly half the height
        // of a vp-tree with the same m and comparable leaf handling.
        let mvp = MvpTree::build(points(3000), Euclidean, MvpParams::paper(2, 1, 0).seed(1))
            .unwrap()
            .stats();
        use vantage_vptree::{VpTree, VpTreeParams};
        let vp = VpTree::build(points(3000), Euclidean, VpTreeParams::binary().seed(1))
            .unwrap()
            .stats();
        assert!(
            mvp.height * 2 <= vp.height + 2,
            "mvp height {} vs vp height {}",
            mvp.height,
            vp.height
        );
    }

    #[test]
    fn max_leaf_entries_bounded_by_k() {
        let s = MvpTree::build(points(1234), Euclidean, MvpParams::paper(3, 13, 4))
            .unwrap()
            .stats();
        assert!(s.max_leaf_entries <= 13);
    }

    #[test]
    fn paper_closed_forms_match_an_exactly_full_tree() {
        // m = 2, k = 2: a dataset of 18 points builds a perfectly full
        // 2-level tree (root internal: 2 vps + 4 groups of 4; each group
        // a full leaf: 2 vps + 2 entries), and 74 points a full 3-level
        // tree. The paper's closed forms must match the walked stats.
        for (n, levels) in [(18usize, 2u32), (74, 3)] {
            let points: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
            let t = MvpTree::build(points, Euclidean, MvpParams::binary(2, 0).seed(3)).unwrap();
            let s = t.stats();
            assert_eq!(s.height + 1, levels as usize, "n={n}");
            assert_eq!(
                s.vantage_points as u64,
                MvpTreeStats::full_tree_vantage_points(2, levels),
                "n={n}"
            );
            assert_eq!(
                s.leaf_entries as u64,
                MvpTreeStats::full_tree_leaf_points(2, levels, 2),
                "n={n}"
            );
            // The two forms partition the dataset.
            assert_eq!(
                MvpTreeStats::full_tree_vantage_points(2, levels)
                    + MvpTreeStats::full_tree_leaf_points(2, levels, 2),
                n as u64
            );
        }
    }

    #[test]
    fn closed_forms_for_single_leaf_tree() {
        // levels = 1: one leaf node, 2 vantage points, k entries.
        assert_eq!(MvpTreeStats::full_tree_vantage_points(3, 1), 2);
        assert_eq!(MvpTreeStats::full_tree_leaf_points(3, 1, 80), 80);
    }

    #[test]
    fn height_shrinks_with_larger_m() {
        let m2 = MvpTree::build(points(4000), Euclidean, MvpParams::paper(2, 4, 0).seed(7))
            .unwrap()
            .stats();
        let m4 = MvpTree::build(points(4000), Euclidean, MvpParams::paper(4, 4, 0).seed(7))
            .unwrap()
            .stats();
        assert!(m4.height < m2.height);
    }
}
