//! The [`MvpTree`] type and its public surface.

use vantage_core::{MetricIndex, Neighbor, Result};

use crate::arena::{MvpArena, MvpArenaView};
use crate::params::MvpParams;
use crate::treeref::MvpTreeRef;
use crate::validate::validate_arena;

/// A multi-vantage-point tree over items of type `T` under metric `M`.
///
/// Built once from a dataset ([`MvpTree::build`], paper §4.2); answers
/// range and k-nearest-neighbor queries through [`MetricIndex`] (paper
/// §4.3). Nodes live in a flat, index-addressed [`MvpArena`]; see the
/// crate docs for the algorithm.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MvpTree<T, M> {
    pub(crate) items: Vec<T>,
    pub(crate) metric: M,
    pub(crate) arena: MvpArena,
    pub(crate) root: Option<u32>,
    pub(crate) params: MvpParams,
}

impl<T, M> MvpTree<T, M> {
    /// The construction parameters.
    pub fn params(&self) -> &MvpParams {
        &self.params
    }

    /// The metric in use.
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// All indexed items, in insertion order (ids index into this slice).
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// The flat node arena.
    pub fn arena(&self) -> MvpArenaView<'_> {
        self.arena.view()
    }

    /// Arena id of the root node (`None` for an empty tree).
    pub fn root(&self) -> Option<u32> {
        self.root
    }

    /// Borrows the tree as an [`MvpTreeRef`] — the same view type the
    /// zero-copy snapshot path serves queries through.
    pub fn as_view(&self) -> MvpTreeRef<'_, &[T], M> {
        MvpTreeRef::new(
            self.arena.view(),
            self.root,
            self.items.as_slice(),
            &self.metric,
            self.params.p,
        )
    }

    /// Assembles a tree from items, a metric, parameters and a flat node
    /// arena, validating every structural invariant the search paths rely
    /// on — the decode path of the persistence layer.
    ///
    /// # Errors
    ///
    /// [`CorruptSnapshot`](vantage_core::VantageError::CorruptSnapshot)
    /// describing the first violated invariant, or an
    /// [`InvalidParameter`](vantage_core::VantageError::InvalidParameter)
    /// from the embedded params.
    pub fn from_arena(
        items: Vec<T>,
        metric: M,
        params: MvpParams,
        root: Option<u32>,
        arena: MvpArena,
    ) -> Result<Self> {
        params.validate()?;
        validate_arena(arena.view(), root, items.len(), &params)?;
        Ok(MvpTree {
            items,
            metric,
            arena,
            root,
            params,
        })
    }
}

impl<T, M: vantage_core::BoundedMetric<T>> MetricIndex<T> for MvpTree<T, M> {
    fn len(&self) -> usize {
        self.items.len()
    }

    fn get(&self, id: usize) -> Option<&T> {
        self.items.get(id)
    }

    fn range(&self, query: &T, radius: f64) -> Vec<Neighbor> {
        self.range_search(query, radius)
    }

    fn knn(&self, query: &T, k: usize) -> Vec<Neighbor> {
        self.knn_search(query, k)
    }
}
