//! Structural validation of flat arenas.
//!
//! [`validate_arena`] is the gate every untrusted arena passes through
//! (snapshot decode, mmap open, [`MvpTree::from_arena`]): it proves all
//! the invariants the search kernels rely on for memory safety and
//! termination, in `O(n + nodes)` with no distance computations. The
//! distance-recomputing [`MvpTree::check_invariants`] remains a
//! test/diagnostic facility.

use vantage_core::{Metric, Result, VantageError};

use crate::arena::{LeafEntriesView, MvpArenaView, MvpNodeView, NO_CHILD};
use crate::params::MvpParams;
use crate::tree::MvpTree;

fn corrupt(detail: impl Into<String>) -> VantageError {
    VantageError::corrupt(detail)
}

/// Validates every structural invariant of a flat arena: meta/rank
/// consistency, array strides, id ranges, arena preorder (every child id
/// exceeds its parent's, which also rules out cycles), cutoff shapes and
/// ordering, leaf entry and PATH spans tiling their shared buffers,
/// leaf capacities, finite precomputed distances, reachability of every
/// node from the root, and exactly-once coverage of every item.
///
/// A search over a view that passed this check can neither panic, index
/// out of bounds, nor fail to terminate — the contract the zero-copy
/// snapshot path relies on to run queries straight over mapped bytes.
///
/// # Errors
///
/// [`CorruptSnapshot`](VantageError::CorruptSnapshot) describing the
/// first violated invariant.
pub fn validate_arena(
    arena: MvpArenaView<'_>,
    root: Option<u32>,
    item_count: usize,
    params: &MvpParams,
) -> Result<()> {
    let m = params.m;
    if arena.m() != m {
        return Err(corrupt(format!(
            "arena fanout {} does not match params m = {m}",
            arena.m()
        )));
    }
    let n_nodes = arena.len();
    if n_nodes >= (1usize << 31) {
        return Err(corrupt("node arena exceeds 2^31 - 1 nodes"));
    }

    // Meta ranks must equal the running count of each node class, so the
    // class-segregated arrays are addressed densely and in arena order.
    let (mut internals, mut leaves) = (0usize, 0usize);
    for (node_id, &meta) in arena.meta().iter().enumerate() {
        let is_leaf = meta & (1 << 31) != 0;
        let rank = (meta & !(1u32 << 31)) as usize;
        let expected = if is_leaf { leaves } else { internals };
        if rank != expected {
            return Err(corrupt(format!(
                "node {node_id}: class rank {rank}, expected {expected}"
            )));
        }
        if is_leaf {
            leaves += 1;
        } else {
            internals += 1;
        }
    }
    if arena.vp1().len() != internals || arena.vp2().len() != internals {
        return Err(corrupt(format!(
            "{}/{} vantage entries for {internals} internal nodes",
            arena.vp1().len(),
            arena.vp2().len()
        )));
    }
    if arena.children().len() != internals * m * m {
        return Err(corrupt(format!(
            "{} child slots for {internals} internal nodes of fanout {m}",
            arena.children().len()
        )));
    }
    if arena.cutoffs1().len() != internals * (m - 1) {
        return Err(corrupt(format!(
            "{} first-level cutoffs for {internals} internal nodes of fanout {m}",
            arena.cutoffs1().len()
        )));
    }
    if arena.cutoffs2().len() != internals * m * (m - 1) {
        return Err(corrupt(format!(
            "{} second-level cutoffs for {internals} internal nodes of fanout {m}",
            arena.cutoffs2().len()
        )));
    }
    if arena.leaf_heads().len() != leaves * 6 {
        return Err(corrupt(format!(
            "{} leaf-head words for {leaves} leaves",
            arena.leaf_heads().len()
        )));
    }
    if arena.d1().len() != arena.ids().len() || arena.d2().len() != arena.ids().len() {
        return Err(corrupt(format!(
            "D1/D2 columns hold {}/{} distances for {} leaf entries",
            arena.d1().len(),
            arena.d2().len(),
            arena.ids().len()
        )));
    }

    // Leaf entry spans must tile the shared id/D1/D2 columns
    // contiguously, and PATH spans the shared path buffer.
    let mut running = 0usize;
    let mut running_path = 0usize;
    for (leaf, head) in arena.leaf_heads().chunks_exact(6).enumerate() {
        let (start, len) = (head[2] as usize, head[3] as usize);
        let (path_len, path_start) = (head[4] as usize, head[5] as usize);
        if start != running {
            return Err(corrupt(format!(
                "leaf {leaf}: entries start at {start}, expected {running}"
            )));
        }
        if len > params.k {
            return Err(corrupt(format!(
                "leaf {leaf}: holds {len} entries, capacity k = {}",
                params.k
            )));
        }
        if path_len > params.p {
            return Err(corrupt(format!(
                "leaf {leaf}: PATH length {path_len} exceeds p = {}",
                params.p
            )));
        }
        if path_start != running_path {
            return Err(corrupt(format!(
                "leaf {leaf}: PATH block starts at {path_start}, expected {running_path}"
            )));
        }
        if head[1] == NO_CHILD && len != 0 {
            return Err(corrupt(format!(
                "leaf {leaf}: {len} entries but no second vantage point"
            )));
        }
        running += len;
        running_path += len * path_len;
    }
    if running != arena.ids().len() {
        return Err(corrupt(format!(
            "leaf spans cover {running} entries, id column holds {}",
            arena.ids().len()
        )));
    }
    if running_path != arena.path().len() {
        return Err(corrupt(format!(
            "leaf PATH spans cover {running_path} distances, path buffer holds {}",
            arena.path().len()
        )));
    }

    match root {
        None => {
            if item_count != 0 || n_nodes != 0 {
                return Err(corrupt(format!(
                    "rootless tree carries {item_count} items and {n_nodes} nodes"
                )));
            }
        }
        Some(root) => {
            if (root as usize) >= n_nodes {
                return Err(corrupt(format!(
                    "root id {root} out of range ({n_nodes} nodes)"
                )));
            }
        }
    }

    let mut seen = vec![false; item_count];
    let mut mark = |id: u32| -> Result<()> {
        let slot = seen
            .get_mut(id as usize)
            .ok_or_else(|| corrupt(format!("item id {id} out of range ({item_count} items)")))?;
        if *slot {
            return Err(corrupt(format!("item id {id} appears more than once")));
        }
        *slot = true;
        Ok(())
    };
    // Child links into a node must come from exactly one parent and
    // point strictly forward; with the root at the front this makes
    // the arena an acyclic preorder forest rooted at `root`.
    let mut referenced = vec![false; n_nodes];
    for node_id in 0..n_nodes {
        match arena.node(node_id as u32) {
            MvpNodeView::Internal {
                vp1,
                vp2,
                cutoffs1,
                cutoffs2,
                children,
            } => {
                mark(vp1)?;
                mark(vp2)?;
                if cutoffs1.iter().any(|c| c.is_nan()) {
                    return Err(corrupt(format!("node {node_id}: NaN first-level cutoff")));
                }
                if cutoffs1.windows(2).any(|w| w[0] > w[1]) {
                    return Err(corrupt(format!(
                        "node {node_id}: cutoffs1 not sorted: {cutoffs1:?}"
                    )));
                }
                for row in cutoffs2.chunks_exact(m - 1) {
                    if row.iter().any(|c| c.is_nan()) {
                        return Err(corrupt(format!("node {node_id}: NaN second-level cutoff")));
                    }
                    if row.windows(2).any(|w| w[0] > w[1]) {
                        return Err(corrupt(format!(
                            "node {node_id}: cutoffs2 row not sorted: {row:?}"
                        )));
                    }
                }
                for &child in children.iter().filter(|&&c| c != NO_CHILD) {
                    if (child as usize) >= n_nodes {
                        return Err(corrupt(format!(
                            "node {node_id}: child id {child} out of range ({n_nodes} nodes)"
                        )));
                    }
                    if (child as usize) <= node_id {
                        return Err(corrupt(format!(
                            "node {node_id}: child id {child} does not follow its parent"
                        )));
                    }
                    if referenced[child as usize] {
                        return Err(corrupt(format!(
                            "node {child} is referenced by more than one parent"
                        )));
                    }
                    referenced[child as usize] = true;
                }
            }
            MvpNodeView::Leaf { vp1, vp2, entries } => {
                mark(vp1)?;
                if let Some(vp2) = vp2 {
                    mark(vp2)?;
                }
                for i in 0..entries.len() {
                    mark(entries.id(i))?;
                }
                if entries.d1_column().iter().any(|d| d.is_nan())
                    || entries.d2_column().iter().any(|d| d.is_nan())
                    || entries.path_block().iter().any(|d| d.is_nan())
                {
                    return Err(corrupt(format!(
                        "node {node_id}: NaN precomputed leaf distance"
                    )));
                }
            }
        }
    }
    if let Some(root) = root {
        if referenced[root as usize] {
            return Err(corrupt("root node is also referenced as a child"));
        }
    }
    // Every non-root node must be someone's child: single-reference
    // plus exactly-once item coverage then imply the whole arena is
    // reachable from the root.
    if let Some(orphan) = referenced
        .iter()
        .enumerate()
        .position(|(id, &linked)| !linked && Some(id as u32) != root)
    {
        return Err(corrupt(format!(
            "node {orphan} is unreachable from the root"
        )));
    }
    if let Some(missing) = seen.iter().position(|&s| !s) {
        return Err(corrupt(format!("item {missing} appears in no node")));
    }
    Ok(())
}

impl<T, M: Metric<T>> MvpTree<T, M> {
    /// Verifies the tree's structural invariants, returning a description
    /// of the first violation found:
    ///
    /// 1. every item id appears exactly once (vantage point or leaf
    ///    entry);
    /// 2. every point in subgroup `(i, j)`'s subtree lies inside shell `i`
    ///    of the node's first vantage point **and** shell `(i, j)` of its
    ///    second vantage point;
    /// 3. leaf `D1`/`D2` arrays hold the exact distances to the leaf's
    ///    vantage points;
    /// 4. every leaf entry's `PATH[i]` equals the exact distance to the
    ///    i-th ancestor vantage point (root-to-leaf, first-then-second),
    ///    with length `min(p, 2 × internal depth)`;
    /// 5. leaves respect capacity `k`; cutoff vectors are sorted.
    ///
    /// Re-computes `O(n · height)` distances — strictly for tests.
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        let view = self.arena.view();
        let mut seen = vec![false; self.items.len()];
        if let Some(root) = self.root {
            let mut ancestors = Vec::new();
            self.check_node(view, root, &mut ancestors, &mut seen)?;
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(format!("item {missing} not reachable from the root"));
        }
        Ok(())
    }

    fn mark(&self, id: u32, seen: &mut [bool]) -> std::result::Result<(), String> {
        let slot = seen
            .get_mut(id as usize)
            .ok_or_else(|| format!("item id {id} out of bounds"))?;
        if *slot {
            return Err(format!("item {id} appears more than once"));
        }
        *slot = true;
        Ok(())
    }

    fn dist(&self, a: u32, b: u32) -> f64 {
        self.metric
            .distance(&self.items[a as usize], &self.items[b as usize])
    }

    fn check_leaf(
        &self,
        vp1: u32,
        vp2: Option<u32>,
        entries: LeafEntriesView<'_>,
        ancestors: &[u32],
        seen: &mut [bool],
    ) -> std::result::Result<(), String> {
        self.mark(vp1, seen)?;
        if let Some(v2) = vp2 {
            self.mark(v2, seen)?;
        } else if !entries.is_empty() {
            return Err("leaf has entries but no second vantage point".into());
        }
        if entries.len() > self.params.k {
            return Err(format!(
                "leaf holds {} entries, capacity k = {}",
                entries.len(),
                self.params.k
            ));
        }
        for idx in 0..entries.len() {
            let id = entries.id(idx);
            self.mark(id, seen)?;
            let d1 = self.dist(vp1, id);
            if d1 != entries.d1(idx) {
                return Err(format!(
                    "entry {id}: stored D1 {} != recomputed {d1}",
                    entries.d1(idx)
                ));
            }
            let v2 = vp2.expect("entries imply vp2");
            let d2 = self.dist(v2, id);
            if d2 != entries.d2(idx) {
                return Err(format!(
                    "entry {id}: stored D2 {} != recomputed {d2}",
                    entries.d2(idx)
                ));
            }
            let expected_len = self.params.p.min(ancestors.len());
            if entries.path(idx).len() != expected_len {
                return Err(format!(
                    "entry {id}: PATH length {} != min(p, ancestors) = {}",
                    entries.path(idx).len(),
                    expected_len
                ));
            }
            for (i, (&stored, &vp)) in entries.path(idx).iter().zip(ancestors.iter()).enumerate() {
                let d = self.dist(vp, id);
                if d != stored {
                    return Err(format!(
                        "entry {id}: PATH[{i}] = {stored} != recomputed {d}"
                    ));
                }
            }
        }
        Ok(())
    }

    fn check_node(
        &self,
        view: MvpArenaView<'_>,
        node: u32,
        ancestors: &mut Vec<u32>,
        seen: &mut [bool],
    ) -> std::result::Result<(), String> {
        match view.node(node) {
            MvpNodeView::Leaf { vp1, vp2, entries } => {
                self.check_leaf(vp1, vp2, entries, ancestors, seen)
            }
            MvpNodeView::Internal {
                vp1,
                vp2,
                cutoffs1,
                cutoffs2,
                children,
            } => {
                let m = self.params.m;
                self.mark(vp1, seen)?;
                self.mark(vp2, seen)?;
                if cutoffs1.windows(2).any(|w| w[0] > w[1]) {
                    return Err(format!("cutoffs1 not sorted: {cutoffs1:?}"));
                }
                for c in cutoffs2.chunks_exact(m - 1) {
                    if c.windows(2).any(|w| w[0] > w[1]) {
                        return Err(format!("cutoffs2 not sorted: {c:?}"));
                    }
                }
                for i in 0..m {
                    let lo1 = if i == 0 { 0.0 } else { cutoffs1[i - 1] };
                    let hi1 = if i == m - 1 {
                        f64::INFINITY
                    } else {
                        cutoffs1[i]
                    };
                    let row = &cutoffs2[i * (m - 1)..(i + 1) * (m - 1)];
                    for j in 0..m {
                        let child = children[i * m + j];
                        if child == NO_CHILD {
                            continue;
                        }
                        let lo2 = if j == 0 { 0.0 } else { row[j - 1] };
                        let hi2 = if j == m - 1 { f64::INFINITY } else { row[j] };
                        let mut subtree = Vec::new();
                        collect_subtree(view, child, &mut subtree);
                        for id in subtree {
                            let d1 = self.dist(vp1, id);
                            if d1 < lo1 || d1 > hi1 {
                                return Err(format!(
                                    "item {id}: d(vp1) = {d1} outside shell [{lo1}, {hi1}] of group {i}"
                                ));
                            }
                            let d2 = self.dist(vp2, id);
                            if d2 < lo2 || d2 > hi2 {
                                return Err(format!(
                                    "item {id}: d(vp2) = {d2} outside shell [{lo2}, {hi2}] of subgroup ({i}, {j})"
                                ));
                            }
                        }
                        ancestors.push(vp1);
                        ancestors.push(vp2);
                        self.check_node(view, child, ancestors, seen)?;
                        ancestors.pop();
                        ancestors.pop();
                    }
                }
                Ok(())
            }
        }
    }
}

fn collect_subtree(view: MvpArenaView<'_>, node: u32, out: &mut Vec<u32>) {
    match view.node(node) {
        MvpNodeView::Leaf { vp1, vp2, entries } => {
            out.push(vp1);
            if let Some(v2) = vp2 {
                out.push(v2);
            }
            out.extend_from_slice(entries.ids());
        }
        MvpNodeView::Internal {
            vp1, vp2, children, ..
        } => {
            out.push(vp1);
            out.push(vp2);
            for &child in children.iter().filter(|&&c| c != NO_CHILD) {
                collect_subtree(view, child, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::params::{MvpParams, SecondVantage};
    use crate::tree::MvpTree;
    use vantage_core::prelude::*;

    #[test]
    fn built_trees_satisfy_invariants() {
        let points: Vec<Vec<f64>> = (0..400)
            .map(|i| vec![f64::from(i % 19), f64::from(i % 29), f64::from(i % 7)])
            .collect();
        for m in [2, 3] {
            for k in [1, 9, 40] {
                for p in [0, 2, 8] {
                    for second in [SecondVantage::Farthest, SecondVantage::Random] {
                        let t = MvpTree::build(
                            points.clone(),
                            Euclidean,
                            MvpParams::paper(m, k, p).second(second).seed(3),
                        )
                        .unwrap();
                        t.check_invariants()
                            .unwrap_or_else(|e| panic!("m={m} k={k} p={p}: {e}"));
                    }
                }
            }
        }
    }

    #[test]
    fn built_trees_pass_arena_validation() {
        let points: Vec<Vec<f64>> = (0..250)
            .map(|i| vec![f64::from(i % 13), f64::from(i % 29)])
            .collect();
        for (m, k, p) in [(2, 5, 2), (3, 9, 5), (4, 13, 0)] {
            let t = MvpTree::build(points.clone(), Euclidean, MvpParams::paper(m, k, p).seed(9))
                .unwrap();
            super::validate_arena(t.arena(), t.root(), t.items().len(), t.params()).unwrap();
        }
    }

    #[test]
    fn empty_and_tiny_trees_are_valid() {
        for n in 0..8 {
            let points: Vec<Vec<f64>> = (0..n).map(|i| vec![f64::from(i)]).collect();
            let t = MvpTree::build(points, Euclidean, MvpParams::binary(3, 2)).unwrap();
            t.check_invariants().unwrap();
            super::validate_arena(t.arena(), t.root(), t.items().len(), t.params()).unwrap();
        }
    }
}
