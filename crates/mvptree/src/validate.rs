//! Structural invariant checking (test/diagnostic facility).

use vantage_core::Metric;

use crate::node::{Node, NodeId};
use crate::tree::MvpTree;

impl<T, M: Metric<T>> MvpTree<T, M> {
    /// Verifies the tree's structural invariants, returning a description
    /// of the first violation found:
    ///
    /// 1. every item id appears exactly once (vantage point or leaf
    ///    entry);
    /// 2. every point in subgroup `(i, j)`'s subtree lies inside shell `i`
    ///    of the node's first vantage point **and** shell `(i, j)` of its
    ///    second vantage point;
    /// 3. leaf `D1`/`D2` arrays hold the exact distances to the leaf's
    ///    vantage points;
    /// 4. every leaf entry's `PATH[i]` equals the exact distance to the
    ///    i-th ancestor vantage point (root-to-leaf, first-then-second),
    ///    with length `min(p, 2 × internal depth)`;
    /// 5. leaves respect capacity `k`; cutoff vectors are sorted and have
    ///    the right shapes.
    ///
    /// Re-computes `O(n · height)` distances — strictly for tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut seen = vec![false; self.items.len()];
        if let Some(root) = self.root {
            let mut ancestors = Vec::new();
            self.check_node(root, &mut ancestors, &mut seen)?;
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(format!("item {missing} not reachable from the root"));
        }
        Ok(())
    }

    fn mark(&self, id: u32, seen: &mut [bool]) -> Result<(), String> {
        let slot = seen
            .get_mut(id as usize)
            .ok_or_else(|| format!("item id {id} out of bounds"))?;
        if *slot {
            return Err(format!("item {id} appears more than once"));
        }
        *slot = true;
        Ok(())
    }

    fn dist(&self, a: u32, b: u32) -> f64 {
        self.metric
            .distance(&self.items[a as usize], &self.items[b as usize])
    }

    fn check_node(
        &self,
        node: NodeId,
        ancestors: &mut Vec<u32>,
        seen: &mut [bool],
    ) -> Result<(), String> {
        match self.node(node) {
            Node::Leaf { vp1, vp2, entries } => {
                self.mark(*vp1, seen)?;
                if let Some(v2) = vp2 {
                    self.mark(*v2, seen)?;
                } else if !entries.is_empty() {
                    return Err("leaf has entries but no second vantage point".into());
                }
                if entries.len() > self.params.k {
                    return Err(format!(
                        "leaf holds {} entries, capacity k = {}",
                        entries.len(),
                        self.params.k
                    ));
                }
                for idx in 0..entries.len() {
                    let id = entries.id(idx);
                    self.mark(id, seen)?;
                    let d1 = self.dist(*vp1, id);
                    if d1 != entries.d1(idx) {
                        return Err(format!(
                            "entry {id}: stored D1 {} != recomputed {d1}",
                            entries.d1(idx)
                        ));
                    }
                    let v2 = vp2.expect("entries imply vp2");
                    let d2 = self.dist(v2, id);
                    if d2 != entries.d2(idx) {
                        return Err(format!(
                            "entry {id}: stored D2 {} != recomputed {d2}",
                            entries.d2(idx)
                        ));
                    }
                    let expected_len = self.params.p.min(ancestors.len());
                    if entries.path(idx).len() != expected_len {
                        return Err(format!(
                            "entry {id}: PATH length {} != min(p, ancestors) = {}",
                            entries.path(idx).len(),
                            expected_len
                        ));
                    }
                    for (i, (&stored, &vp)) in
                        entries.path(idx).iter().zip(ancestors.iter()).enumerate()
                    {
                        let d = self.dist(vp, id);
                        if d != stored {
                            return Err(format!(
                                "entry {id}: PATH[{i}] = {stored} != recomputed {d}"
                            ));
                        }
                    }
                }
                Ok(())
            }
            Node::Internal {
                vp1,
                vp2,
                cutoffs1,
                cutoffs2,
                children,
            } => {
                let m = self.params.m;
                self.mark(*vp1, seen)?;
                self.mark(*vp2, seen)?;
                if cutoffs1.len() != m - 1
                    || cutoffs2.len() != m
                    || cutoffs2.iter().any(|c| c.len() != m - 1)
                    || children.len() != m * m
                {
                    return Err("internal node has wrong cutoff/children shapes".into());
                }
                if cutoffs1.windows(2).any(|w| w[0] > w[1]) {
                    return Err(format!("cutoffs1 not sorted: {cutoffs1:?}"));
                }
                for c in cutoffs2 {
                    if c.windows(2).any(|w| w[0] > w[1]) {
                        return Err(format!("cutoffs2 not sorted: {c:?}"));
                    }
                }
                for i in 0..m {
                    let lo1 = if i == 0 { 0.0 } else { cutoffs1[i - 1] };
                    let hi1 = if i == m - 1 {
                        f64::INFINITY
                    } else {
                        cutoffs1[i]
                    };
                    for j in 0..m {
                        let Some(child) = children[i * m + j] else {
                            continue;
                        };
                        let lo2 = if j == 0 { 0.0 } else { cutoffs2[i][j - 1] };
                        let hi2 = if j == m - 1 {
                            f64::INFINITY
                        } else {
                            cutoffs2[i][j]
                        };
                        let mut subtree = Vec::new();
                        self.collect_subtree(child, &mut subtree);
                        for id in subtree {
                            let d1 = self.dist(*vp1, id);
                            if d1 < lo1 || d1 > hi1 {
                                return Err(format!(
                                    "item {id}: d(vp1) = {d1} outside shell [{lo1}, {hi1}] of group {i}"
                                ));
                            }
                            let d2 = self.dist(*vp2, id);
                            if d2 < lo2 || d2 > hi2 {
                                return Err(format!(
                                    "item {id}: d(vp2) = {d2} outside shell [{lo2}, {hi2}] of subgroup ({i}, {j})"
                                ));
                            }
                        }
                        ancestors.push(*vp1);
                        ancestors.push(*vp2);
                        self.check_node(child, ancestors, seen)?;
                        ancestors.pop();
                        ancestors.pop();
                    }
                }
                Ok(())
            }
        }
    }

    fn collect_subtree(&self, node: NodeId, out: &mut Vec<u32>) {
        match self.node(node) {
            Node::Leaf { vp1, vp2, entries } => {
                out.push(*vp1);
                if let Some(v2) = vp2 {
                    out.push(*v2);
                }
                out.extend_from_slice(entries.ids());
            }
            Node::Internal {
                vp1, vp2, children, ..
            } => {
                out.push(*vp1);
                out.push(*vp2);
                for child in children.iter().flatten() {
                    self.collect_subtree(*child, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::params::{MvpParams, SecondVantage};
    use crate::tree::MvpTree;
    use vantage_core::prelude::*;

    #[test]
    fn built_trees_satisfy_invariants() {
        let points: Vec<Vec<f64>> = (0..400)
            .map(|i| vec![f64::from(i % 19), f64::from(i % 29), f64::from(i % 7)])
            .collect();
        for m in [2, 3] {
            for k in [1, 9, 40] {
                for p in [0, 2, 8] {
                    for second in [SecondVantage::Farthest, SecondVantage::Random] {
                        let t = MvpTree::build(
                            points.clone(),
                            Euclidean,
                            MvpParams::paper(m, k, p).second(second).seed(3),
                        )
                        .unwrap();
                        t.check_invariants()
                            .unwrap_or_else(|e| panic!("m={m} k={k} p={p}: {e}"));
                    }
                }
            }
        }
    }

    #[test]
    fn empty_and_tiny_trees_are_valid() {
        for n in 0..8 {
            let points: Vec<Vec<f64>> = (0..n).map(|i| vec![f64::from(i)]).collect();
            let t = MvpTree::build(points, Euclidean, MvpParams::binary(3, 2)).unwrap();
            t.check_invariants().unwrap();
        }
    }
}
