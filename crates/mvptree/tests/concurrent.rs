//! Correctness of [`ConcurrentMvpTree`]: differential testing against a
//! brute-force scan under churn, and multi-threaded stress where every
//! reader verifies query answers against the *same pinned snapshot's*
//! own live set — so a torn or stale publication cannot hide.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use vantage_core::prelude::*;
use vantage_mvptree::{ConcurrentMvpTree, MvpParams};

fn pt(x: f64, y: f64) -> Vec<f64> {
    vec![x, y]
}

/// Deterministic pseudo-random stream (splitmix64).
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn coord(state: &mut u64) -> f64 {
    (next(state) % 1000) as f64 / 10.0
}

fn sorted_ids(mut neighbors: Vec<Neighbor>) -> Vec<usize> {
    neighbors.sort_by_key(|a| a.id);
    neighbors.into_iter().map(|n| n.id).collect()
}

/// Brute-force range over an explicit `(id, item)` live set.
fn brute_range(live: &[(usize, Vec<f64>)], query: &[f64], radius: f64) -> Vec<usize> {
    let mut ids: Vec<usize> = live
        .iter()
        .filter(|(_, item)| Euclidean.distance(&query.to_vec(), item) <= radius)
        .map(|(id, _)| *id)
        .collect();
    ids.sort_unstable();
    ids
}

#[test]
fn matches_brute_force_under_insert_delete_churn() {
    let params = MvpParams::paper(2, 2, 4);
    let tree = ConcurrentMvpTree::new(Euclidean, params).expect("valid params");
    let mut live: Vec<(usize, Vec<f64>)> = Vec::new();
    let mut state = 0xc0ffee_u64;

    for step in 0..400 {
        if step % 5 == 4 && !live.is_empty() {
            // Delete a pseudo-random live item.
            let victim = (next(&mut state) as usize) % live.len();
            let (id, _) = live.swap_remove(victim);
            assert!(tree.remove(id), "live id {id} failed to remove");
            assert!(!tree.remove(id), "double remove of {id} succeeded");
        } else {
            let item = pt(coord(&mut state), coord(&mut state));
            let id = tree.insert(item.clone());
            live.push((id, item));
        }

        if step % 7 == 0 {
            let query = pt(coord(&mut state), coord(&mut state));
            let radius = 12.5;
            assert_eq!(
                sorted_ids(tree.range(&query, radius)),
                brute_range(&live, &query, radius),
                "range diverged at step {step}"
            );
            let got = tree.knn(&query, 5);
            let k = got.len();
            assert_eq!(k, live.len().min(5), "knn cardinality at step {step}");
            // kNN distances must match the brute-force k smallest.
            let mut expected: Vec<f64> = live
                .iter()
                .map(|(_, item)| Euclidean.distance(&query, item))
                .collect();
            expected.sort_by(f64::total_cmp);
            for (n, want) in got.iter().zip(expected.iter().take(k)) {
                assert_eq!(n.distance, *want, "knn distance at step {step}");
            }
        }
        assert_eq!(tree.len(), live.len(), "live count at step {step}");
    }
}

#[test]
fn pinned_snapshot_is_immutable_while_writers_churn() {
    let params = MvpParams::paper(2, 2, 4);
    let tree = ConcurrentMvpTree::new(Euclidean, params).expect("valid params");
    let mut state = 7_u64;
    for _ in 0..64 {
        tree.insert(pt(coord(&mut state), coord(&mut state)));
    }

    let snapshot = tree.read();
    let frozen: Vec<(usize, Vec<f64>)> = snapshot
        .live_items()
        .map(|(id, item)| (id, item.clone()))
        .collect();
    let query = pt(50.0, 50.0);
    let before = sorted_ids(snapshot.range(&query, 30.0));

    // Churn heavily: inserts, deletes, and forced rebuilds.
    for i in 0..64 {
        tree.insert(pt(coord(&mut state), coord(&mut state)));
        if i % 2 == 0 {
            tree.remove(i);
        }
    }
    tree.reindex();

    // The pinned snapshot still answers from its point in time.
    assert_eq!(snapshot.len(), frozen.len());
    assert_eq!(sorted_ids(snapshot.range(&query, 30.0)), before);
    assert_eq!(before, brute_range(&frozen, &query, 30.0));
    // While the current generation has moved on.
    assert_ne!(tree.len(), frozen.len());
}

#[test]
fn concurrent_readers_always_see_internally_consistent_generations() {
    let params = MvpParams::paper(2, 2, 4);
    let tree = Arc::new(ConcurrentMvpTree::new(Euclidean, params).expect("valid params"));
    let mut state = 99_u64;
    for _ in 0..128 {
        tree.insert(pt(coord(&mut state), coord(&mut state)));
    }

    let stop = Arc::new(AtomicBool::new(false));
    let checks = Arc::new(AtomicU64::new(0));
    let readers: Vec<_> = (0..4)
        .map(|r| {
            let tree = Arc::clone(&tree);
            let stop = Arc::clone(&stop);
            let checks = Arc::clone(&checks);
            std::thread::spawn(move || {
                let mut state = 0x5eed_u64 ^ (r as u64);
                let mut last_generation = 0;
                while !stop.load(Ordering::Acquire) {
                    // Pin one generation and verify a query against that
                    // same generation's own live set: any torn swap or
                    // mixed-generation view diverges from the brute force.
                    let snapshot = tree.read();
                    assert!(
                        snapshot.generation() >= last_generation,
                        "reader saw time move backwards"
                    );
                    last_generation = snapshot.generation();
                    let live: Vec<(usize, Vec<f64>)> = snapshot
                        .live_items()
                        .map(|(id, item)| (id, item.clone()))
                        .collect();
                    assert_eq!(snapshot.len(), live.len());
                    let query = pt(coord(&mut state), coord(&mut state));
                    assert_eq!(
                        sorted_ids(snapshot.range(&query, 15.0)),
                        brute_range(&live, &query, 15.0),
                        "pinned generation disagreed with its own live set"
                    );
                    checks.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    // Writer: sustained ingest with deletes and periodic full reindexes,
    // crossing many rebuild thresholds while the readers verify.
    let mut removable = 0;
    for i in 0..600 {
        tree.insert(pt(coord(&mut state), coord(&mut state)));
        if i % 3 == 0 {
            tree.remove(removable);
            removable += 1;
        }
        if i % 200 == 199 {
            tree.reindex();
        }
    }

    stop.store(true, Ordering::Release);
    for handle in readers {
        handle.join().expect("reader panicked");
    }
    assert!(
        checks.load(Ordering::Relaxed) >= 4,
        "readers barely ran; stress proved nothing"
    );
    // Every write published a generation: 600 inserts + 200 removes + 3
    // reindexes (the final i=599 one counted already) at minimum.
    assert!(tree.generation() >= 800);
}

#[test]
fn knn_survives_tombstones_without_losing_neighbors() {
    let params = MvpParams::paper(2, 2, 4);
    // A line of points; delete the nearest ones and verify knn falls back
    // to the survivors (the over-fetch path).
    let items: Vec<Vec<f64>> = (0..40).map(|i| pt(f64::from(i), 0.0)).collect();
    let tree = ConcurrentMvpTree::with_items(items, Euclidean, params).expect("valid params");
    for id in 0..10 {
        assert!(tree.remove(id));
    }
    let got = tree.knn(&pt(0.0, 0.0), 3);
    let ids: Vec<usize> = got.iter().map(|n| n.id).collect();
    assert_eq!(ids, vec![10, 11, 12]);
}
