//! Property tests for the mvp-tree: oracle equivalence against linear
//! scan (the paper's correctness requirement), structural invariants, and
//! the efficiency relations the paper claims.

use proptest::prelude::*;
use vantage_core::prelude::*;
use vantage_core::MetricIndex;
use vantage_mvptree::{DynamicMvpTree, MvpParams, MvpTree, SecondVantage};

fn point_strategy(dim: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-10.0f64..10.0, dim)
}

fn dataset_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(point_strategy(3), 0..150)
}

fn sorted_ids(mut v: Vec<Neighbor>) -> Vec<usize> {
    v.sort_unstable_by_key(|n| n.id);
    v.into_iter().map(|n| n.id).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn range_matches_linear_scan(
        points in dataset_strategy(),
        query in point_strategy(3),
        radius in 0.0f64..20.0,
        m in 2usize..5,
        k in 1usize..20,
        p in 0usize..8,
        seed in 0u64..4,
    ) {
        let oracle = LinearScan::new(points.clone(), Euclidean);
        let tree =
            MvpTree::build(points, Euclidean, MvpParams::paper(m, k, p).seed(seed))
                .unwrap();
        prop_assert_eq!(
            sorted_ids(tree.range(&query, radius)),
            sorted_ids(oracle.range(&query, radius))
        );
    }

    #[test]
    fn knn_matches_brute_force(
        points in dataset_strategy(),
        query in point_strategy(3),
        knn_k in 0usize..20,
        m in 2usize..4,
        k in 1usize..20,
        p in 0usize..6,
        seed in 0u64..4,
    ) {
        let oracle = LinearScan::new(points.clone(), Euclidean);
        let tree =
            MvpTree::build(points, Euclidean, MvpParams::paper(m, k, p).seed(seed))
                .unwrap();
        let got = tree.knn(&query, knn_k);
        let want = oracle.knn(&query, knn_k);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g.distance - w.distance).abs() < 1e-12);
        }
    }

    #[test]
    fn invariants_hold_for_random_datasets(
        points in dataset_strategy(),
        m in 2usize..5,
        k in 1usize..20,
        p in 0usize..8,
        seed in 0u64..4,
        farthest in any::<bool>(),
    ) {
        let second = if farthest {
            SecondVantage::Farthest
        } else {
            SecondVantage::Random
        };
        let tree = MvpTree::build(
            points,
            Euclidean,
            MvpParams::paper(m, k, p).second(second).seed(seed),
        )
        .unwrap();
        tree.check_invariants().unwrap();
    }

    /// Far-neighbor queries (paper §2's variations) match the oracle
    /// exactly too.
    #[test]
    fn farthest_queries_match_oracle(
        points in dataset_strategy(),
        query in point_strategy(3),
        radius in 0.0f64..25.0,
        fk in 0usize..12,
        m in 2usize..4,
        k in 1usize..20,
        p in 0usize..6,
        seed in 0u64..3,
    ) {
        use vantage_core::farthest::FarthestIndex;
        let oracle = LinearScan::new(points.clone(), Euclidean);
        let tree =
            MvpTree::build(points, Euclidean, MvpParams::paper(m, k, p).seed(seed))
                .unwrap();
        prop_assert_eq!(
            sorted_ids(tree.range_beyond(&query, radius)),
            sorted_ids(oracle.range_beyond(&query, radius))
        );
        let got = tree.k_farthest(&query, fk);
        let want = oracle.k_farthest(&query, fk);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g.distance - w.distance).abs() < 1e-12);
        }
    }

    /// Range search never computes more distances than a linear scan:
    /// vantage points are evaluated once per visit and every leaf entry at
    /// most once.
    #[test]
    fn never_worse_than_linear_scan(
        points in proptest::collection::vec(point_strategy(2), 1..100),
        query in point_strategy(2),
        radius in 0.0f64..10.0,
    ) {
        let n = points.len() as u64;
        let metric = Counted::new(Euclidean);
        let probe = metric.clone();
        let tree =
            MvpTree::build(points, metric, MvpParams::paper(2, 8, 4).seed(2)).unwrap();
        probe.reset();
        tree.range(&query, radius);
        prop_assert!(probe.count() <= n);
    }

    /// Edit-distance (string) workloads behave identically.
    #[test]
    fn string_metric_range_matches_oracle(
        words in proptest::collection::vec("[a-c]{0,8}".prop_map(String::from), 0..60),
        query in "[a-c]{0,8}".prop_map(String::from),
        radius in 0u32..6,
    ) {
        let oracle = LinearScan::new(words.clone(), Levenshtein);
        let tree =
            MvpTree::build(words, Levenshtein, MvpParams::paper(2, 5, 3).seed(1))
                .unwrap();
        prop_assert_eq!(
            sorted_ids(tree.range(&query, f64::from(radius))),
            sorted_ids(oracle.range(&query, f64::from(radius)))
        );
    }

    /// The dynamic wrapper stays equivalent to a fresh linear scan under
    /// interleaved inserts and deletes.
    #[test]
    fn dynamic_tree_matches_oracle_under_churn(
        initial in proptest::collection::vec(point_strategy(2), 0..40),
        inserts in proptest::collection::vec(point_strategy(2), 0..40),
        delete_mask in proptest::collection::vec(any::<bool>(), 80),
        query in point_strategy(2),
        radius in 0.0f64..15.0,
    ) {
        let mut dynamic = DynamicMvpTree::with_items(
            initial.clone(),
            Euclidean,
            MvpParams::paper(2, 4, 2).seed(1),
        )
        .unwrap();
        let mut live: Vec<(usize, Vec<f64>)> =
            initial.into_iter().enumerate().collect();
        for v in inserts {
            let id = dynamic.insert(v.clone());
            live.push((id, v));
        }
        let mut idx = 0;
        live.retain(|(id, _)| {
            let kill = delete_mask.get(idx).copied().unwrap_or(false);
            idx += 1;
            if kill {
                assert!(dynamic.remove(*id));
                false
            } else {
                true
            }
        });
        let mut got: Vec<usize> =
            dynamic.range(&query, radius).into_iter().map(|n| n.id).collect();
        got.sort_unstable();
        let mut want: Vec<usize> = live
            .iter()
            .filter(|(_, v)| Euclidean.distance(&query, v) <= radius)
            .map(|(id, _)| *id)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}

/// Non-proptest regression: the mvp-tree outperforms the vp-tree on the
/// paper's own terms (fewer distance computations for range queries on
/// uniform vectors) on a small but non-trivial instance.
#[test]
fn mvp_beats_vp_on_distance_computations() {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use vantage_vptree::{VpTree, VpTreeParams};

    let mut rng = StdRng::seed_from_u64(42);
    let points: Vec<Vec<f64>> = (0..2000)
        .map(|_| (0..10).map(|_| rng.random_range(0.0..1.0)).collect())
        .collect();
    let queries: Vec<Vec<f64>> = (0..30)
        .map(|_| (0..10).map(|_| rng.random_range(0.0..1.0)).collect())
        .collect();
    let radius = 0.4;

    let vp_metric = Counted::new(Euclidean);
    let vp_probe = vp_metric.clone();
    let vp = VpTree::build(points.clone(), vp_metric, VpTreeParams::binary().seed(7)).unwrap();
    vp_probe.reset();
    for q in &queries {
        vp.range(q, radius);
    }
    let vp_count = vp_probe.count();

    let mvp_metric = Counted::new(Euclidean);
    let mvp_probe = mvp_metric.clone();
    let mvp = MvpTree::build(points, mvp_metric, MvpParams::paper(3, 80, 5).seed(7)).unwrap();
    mvp_probe.reset();
    for q in &queries {
        mvp.range(q, radius);
    }
    let mvp_count = mvp_probe.count();

    assert!(
        (mvp_count as f64) < 0.8 * vp_count as f64,
        "mvpt(3,80,5) used {mvp_count} vs vpt(2)'s {vp_count} — expected ≥20% savings"
    );
}
