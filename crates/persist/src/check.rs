//! Checksums used by the snapshot format: CRC-32 (IEEE) for corruption
//! detection and FNV-1a 64 as a cheap dataset fingerprint.
//!
//! Both are implemented here rather than pulled in as dependencies: the
//! workspace builds against vendored crates only (see `DESIGN.md`,
//! "Offline dependency policy"), and the two algorithms together are a
//! few dozen lines with well-known test vectors.

/// CRC-32 lookup table for the reflected IEEE 802.3 polynomial
/// (`0xEDB88320`), built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `data` — the checksum used by gzip, PNG and zip, so
/// snapshot sections can be cross-checked with standard tools.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(byte)) & 0xFF) as usize];
    }
    !crc
}

/// FNV-1a 64-bit hash of `data`. Used as the dataset digest in snapshot
/// headers: not cryptographic, but any accidental payload change flips it
/// with overwhelming probability, and it is stable across platforms.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in data {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Canonical check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn fnv1a64_known_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn single_bit_flip_changes_both() {
        let mut data = b"some snapshot payload".to_vec();
        let (c0, f0) = (crc32(&data), fnv1a64(&data));
        data[7] ^= 0x10;
        assert_ne!(crc32(&data), c0);
        assert_ne!(fnv1a64(&data), f0);
    }
}
