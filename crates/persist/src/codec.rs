//! Item and metric identification for typed snapshot loading.
//!
//! A snapshot file records *what* it indexes (the item encoding) and
//! *how* distances were computed (the metric identifier). Loading is
//! typed — `load_vp_tree::<String, Counted<Levenshtein>>(..)` — so these
//! traits let the loader check that the file's tags match the requested
//! types before decoding a single item, and let it reconstruct the metric
//! value (metrics in this workspace are stateless unit structs, or
//! [`Counted`] wrappers whose counters restart at zero).

use vantage_core::prelude::{Chebyshev, Counted, Euclidean, Levenshtein, Manhattan};
use vantage_core::{Result, VantageError};

use crate::layout::{self, ItemsLayout};
use crate::wire::Out;

/// A type that can be stored in (and restored from) a snapshot's items
/// section.
///
/// Version 2 stores items as one flat column: a cumulative offset fence
/// per item over a single shared data region (see [`crate::layout`]),
/// so the same bytes can be either materialized into owned values here
/// or sliced in place by the zero-copy loader.
pub trait ItemCodec: Sized {
    /// One-byte item-encoding tag stored in the snapshot header.
    const TAG: u8;
    /// Human-readable encoding name (for `inspect` and error messages).
    const NAME: &'static str;
    /// Encodes all items as one flat items payload. `base` is the
    /// payload's absolute file offset (the alignment origin).
    fn encode_section(items: &[Self], base: usize) -> Vec<u8>;
    /// Decodes a flat items payload into owned values, bounds-checked.
    ///
    /// # Errors
    ///
    /// [`VantageError::CorruptSnapshot`] on truncated or malformed
    /// payloads, or when the payload's count disagrees with `count`
    /// (the verified header field).
    fn decode_section(payload: &[u8], base: usize, count: u64) -> Result<Vec<Self>>;
}

/// Writes the shared payload head: alignment padding, count, offsets.
fn encode_fences<T>(items: &[T], base: usize, elem_len: impl Fn(&T) -> usize) -> Out {
    let mut out = Out::new();
    out.align8(base);
    out.u64(items.len() as u64);
    let mut acc = 0u64;
    out.u64(acc);
    for item in items {
        acc += elem_len(item) as u64;
        out.u64(acc);
    }
    out
}

impl ItemCodec for Vec<f64> {
    const TAG: u8 = 1;
    const NAME: &'static str = "f64-vector";

    fn encode_section(items: &[Self], base: usize) -> Vec<u8> {
        let mut out = encode_fences(items, base, Vec::len);
        for item in items {
            out.f64s(item);
        }
        out.0
    }

    fn decode_section(payload: &[u8], base: usize, count: u64) -> Result<Vec<Self>> {
        let lay = ItemsLayout::parse(payload, base, count, 8)?;
        let data = layout::f64s_in(payload, &lay.data);
        Ok(lay
            .offsets
            .windows(2)
            .map(|w| data[w[0] as usize..w[1] as usize].to_vec())
            .collect())
    }
}

impl ItemCodec for String {
    const TAG: u8 = 2;
    const NAME: &'static str = "utf8-string";

    fn encode_section(items: &[Self], base: usize) -> Vec<u8> {
        let mut out = encode_fences(items, base, String::len);
        for item in items {
            out.0.extend_from_slice(item.as_bytes());
        }
        out.0
    }

    fn decode_section(payload: &[u8], base: usize, count: u64) -> Result<Vec<Self>> {
        let lay = ItemsLayout::parse(payload, base, count, 1)?;
        let data = &payload[lay.data.clone()];
        lay.offsets
            .windows(2)
            .map(|w| {
                std::str::from_utf8(&data[w[0] as usize..w[1] as usize])
                    .map(str::to_string)
                    .map_err(|e| VantageError::corrupt(format!("string item: {e}")))
            })
            .collect()
    }
}

/// A metric that can be named in a snapshot header and reconstructed on
/// load.
///
/// Implemented for the stateless workspace metrics and for
/// [`Counted<M>`], which shares the inner metric's identifier (counting
/// is an observation wrapper, not a different distance function) and
/// reconstructs with fresh zeroed counters — exactly the state a
/// freshly built index's metric is in after its post-build probe reset.
pub trait MetricTag {
    /// Stable metric identifier stored in the snapshot header.
    const TAG: &'static str;
    /// Builds a value of the metric for a freshly loaded index.
    fn reconstruct() -> Self;
}

macro_rules! unit_metric_tag {
    ($ty:ty, $tag:literal) => {
        impl MetricTag for $ty {
            const TAG: &'static str = $tag;
            fn reconstruct() -> Self {
                <$ty>::default()
            }
        }
    };
}

unit_metric_tag!(Euclidean, "l2");
unit_metric_tag!(Manhattan, "l1");
unit_metric_tag!(Chebyshev, "linf");
unit_metric_tag!(Levenshtein, "edit");

impl<M: MetricTag> MetricTag for Counted<M> {
    const TAG: &'static str = M::TAG;
    fn reconstruct() -> Self {
        Counted::new(M::reconstruct())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counted_shares_the_inner_tag() {
        assert_eq!(<Counted<Euclidean> as MetricTag>::TAG, "l2");
        assert_eq!(<Counted<Levenshtein> as MetricTag>::TAG, "edit");
    }

    #[test]
    fn reconstructed_counted_starts_at_zero() {
        let m = <Counted<Euclidean> as MetricTag>::reconstruct();
        assert_eq!(m.count(), 0);
    }

    #[test]
    fn string_items_round_trip_at_any_base() {
        let items = vec!["héllo".to_string(), String::new(), "wörld".to_string()];
        for base in [0usize, 1, 3, 8, 13] {
            let payload = String::encode_section(&items, base);
            let back = String::decode_section(&payload, base, items.len() as u64).unwrap();
            assert_eq!(back, items, "base {base}");
        }
    }

    #[test]
    fn invalid_utf8_is_a_typed_error() {
        let items = vec!["ab".to_string()];
        let mut payload = String::encode_section(&items, 0);
        *payload.last_mut().unwrap() = 0xFF;
        let err = String::decode_section(&payload, 0, 1).unwrap_err();
        assert!(matches!(err, VantageError::CorruptSnapshot { .. }), "{err}");
    }

    #[test]
    fn vector_items_round_trip_at_any_base() {
        let items = vec![vec![1.5, -0.0, f64::MAX], vec![], vec![f64::MIN_POSITIVE]];
        for base in [0usize, 2, 8, 11] {
            let payload = Vec::<f64>::encode_section(&items, base);
            let back = Vec::<f64>::decode_section(&payload, base, items.len() as u64).unwrap();
            assert_eq!(back, items, "base {base}");
        }
    }

    #[test]
    fn count_disagreement_is_a_typed_error() {
        let payload = Vec::<f64>::encode_section(&[vec![1.0]], 0);
        let err = Vec::<f64>::decode_section(&payload, 0, 2).unwrap_err();
        assert!(matches!(err, VantageError::CorruptSnapshot { .. }), "{err}");
    }
}
