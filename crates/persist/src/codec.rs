//! Item and metric identification for typed snapshot loading.
//!
//! A snapshot file records *what* it indexes (the item encoding) and
//! *how* distances were computed (the metric identifier). Loading is
//! typed — `load_vp_tree::<String, Counted<Levenshtein>>(..)` — so these
//! traits let the loader check that the file's tags match the requested
//! types before decoding a single item, and let it reconstruct the metric
//! value (metrics in this workspace are stateless unit structs, or
//! [`Counted`] wrappers whose counters restart at zero).

use vantage_core::prelude::{Chebyshev, Counted, Euclidean, Levenshtein, Manhattan};
use vantage_core::Result;

use crate::wire::{Cursor, Out};

/// A type that can be stored in (and restored from) a snapshot's items
/// section.
pub trait ItemCodec: Sized {
    /// One-byte item-encoding tag stored in the snapshot header.
    const TAG: u8;
    /// Human-readable encoding name (for `inspect` and error messages).
    const NAME: &'static str;
    /// Appends this item's encoding to `out`.
    fn encode(&self, out: &mut Out);
    /// Decodes one item, bounds-checked.
    ///
    /// # Errors
    ///
    /// [`vantage_core::VantageError::CorruptSnapshot`] on truncated or
    /// malformed payloads.
    fn decode(cur: &mut Cursor<'_>) -> Result<Self>;
}

impl ItemCodec for Vec<f64> {
    const TAG: u8 = 1;
    const NAME: &'static str = "f64-vector";

    fn encode(&self, out: &mut Out) {
        out.f64_vec(self);
    }

    fn decode(cur: &mut Cursor<'_>) -> Result<Self> {
        cur.f64_vec("vector item")
    }
}

impl ItemCodec for String {
    const TAG: u8 = 2;
    const NAME: &'static str = "utf8-string";

    fn encode(&self, out: &mut Out) {
        out.usize(self.len());
        out.0.extend_from_slice(self.as_bytes());
    }

    fn decode(cur: &mut Cursor<'_>) -> Result<Self> {
        let n = cur.len(1, "string item")?;
        let bytes = cur.take(n, "string item")?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| vantage_core::VantageError::corrupt(format!("string item: {e}")))
    }
}

/// A metric that can be named in a snapshot header and reconstructed on
/// load.
///
/// Implemented for the stateless workspace metrics and for
/// [`Counted<M>`], which shares the inner metric's identifier (counting
/// is an observation wrapper, not a different distance function) and
/// reconstructs with fresh zeroed counters — exactly the state a
/// freshly built index's metric is in after its post-build probe reset.
pub trait MetricTag {
    /// Stable metric identifier stored in the snapshot header.
    const TAG: &'static str;
    /// Builds a value of the metric for a freshly loaded index.
    fn reconstruct() -> Self;
}

macro_rules! unit_metric_tag {
    ($ty:ty, $tag:literal) => {
        impl MetricTag for $ty {
            const TAG: &'static str = $tag;
            fn reconstruct() -> Self {
                <$ty>::default()
            }
        }
    };
}

unit_metric_tag!(Euclidean, "l2");
unit_metric_tag!(Manhattan, "l1");
unit_metric_tag!(Chebyshev, "linf");
unit_metric_tag!(Levenshtein, "edit");

impl<M: MetricTag> MetricTag for Counted<M> {
    const TAG: &'static str = M::TAG;
    fn reconstruct() -> Self {
        Counted::new(M::reconstruct())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counted_shares_the_inner_tag() {
        assert_eq!(<Counted<Euclidean> as MetricTag>::TAG, "l2");
        assert_eq!(<Counted<Levenshtein> as MetricTag>::TAG, "edit");
    }

    #[test]
    fn reconstructed_counted_starts_at_zero() {
        let m = <Counted<Euclidean> as MetricTag>::reconstruct();
        assert_eq!(m.count(), 0);
    }

    #[test]
    fn string_items_round_trip() {
        let mut out = Out::new();
        "héllo".to_string().encode(&mut out);
        String::new().encode(&mut out);
        let mut cur = Cursor::new(&out.0);
        assert_eq!(String::decode(&mut cur).unwrap(), "héllo");
        assert_eq!(String::decode(&mut cur).unwrap(), "");
        cur.finish("items").unwrap();
    }

    #[test]
    fn invalid_utf8_is_a_typed_error() {
        let mut out = Out::new();
        out.usize(2);
        out.0.extend_from_slice(&[0xFF, 0xFE]);
        let mut cur = Cursor::new(&out.0);
        assert!(String::decode(&mut cur).is_err());
    }

    #[test]
    fn vector_items_round_trip() {
        let mut out = Out::new();
        vec![1.5, -0.0, f64::MAX].encode(&mut out);
        let mut cur = Cursor::new(&out.0);
        let v = Vec::<f64>::decode(&mut cur).unwrap();
        assert_eq!(v, vec![1.5, -0.0, f64::MAX]);
    }
}
