//! The snapshot container format: header, section framing, checksums.
//!
//! ```text
//! ┌────────────────────────────── header ──────────────────────────────┐
//! │ magic "VNTGSNAP" (8) │ version u32 │ kind u8 │ item u8             │
//! │ metric id: len u16 + utf-8 bytes                                   │
//! │ item count u64 │ dataset digest u64 (FNV-1a of items payload)      │
//! │ header CRC-32 u32 (over every preceding header byte)               │
//! ├────────────────────────────── sections ────────────────────────────┤
//! │ 3 × [ id u8 │ payload len u64 │ payload │ payload CRC-32 u32 ]     │
//! │     in fixed order: params (1), items (2), structure (3)           │
//! └──────────────────────── exact EOF, no trailer ─────────────────────┘
//! ```
//!
//! All integers are little-endian; `f64`s are IEEE-754 bit patterns.
//! Every length is validated against the bytes actually present before
//! any allocation, every section carries its own CRC, and the header CRC
//! covers the metadata itself — so truncation, bit flips and fabricated
//! lengths all surface as typed [`VantageError`]s.
//!
//! Version 2 (the only version this build reads or writes) lays the
//! items and structure payloads out as flat, 8-byte-aligned arrays so a
//! memory map of the file can be served directly — see
//! [`crate::layout`]. Payload-internal alignment is relative to the
//! *file* start (each payload pads its own front up to the next 8-byte
//! file offset), which is why [`parse`] reports each payload's absolute
//! offset alongside its bytes. Version 1 stored pointer-rich per-node
//! records; it is no longer readable and reports as unsupported.

use vantage_core::{Result, VantageError};

use crate::check::{crc32, fnv1a64};
use crate::wire::{Cursor, Out};

/// Magic bytes opening every snapshot file.
pub const MAGIC: &[u8; 8] = b"VNTGSNAP";
/// Newest container version this build writes and reads.
pub const FORMAT_VERSION: u32 = 2;

/// Upper bound on the header span in bytes: the fixed fields plus the
/// largest possible metric identifier. Reading this many bytes (or the
/// whole file, if shorter) is always enough to [`parse_header`].
pub(crate) const HEADER_MAX: usize = HEADER_FIXED + u16::MAX as usize;

/// Header bytes outside the variable-length metric id: magic (8) +
/// version (4) + kind (1) + item (1) + metric length (2) + count (8) +
/// digest (8) + header CRC (4).
const HEADER_FIXED: usize = 36;

/// Bytes of section framing around each payload: id (1) + length (8)
/// before, CRC-32 (4) after.
pub(crate) const SECTION_OVERHEAD: usize = 13;

/// Which index structure a snapshot holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// A [`vantage_vptree::VpTree`].
    VpTree,
    /// A [`vantage_mvptree::MvpTree`].
    MvpTree,
    /// A [`vantage_core::LinearScan`].
    Linear,
}

impl IndexKind {
    /// The kind's one-byte wire tag.
    pub fn tag(self) -> u8 {
        match self {
            IndexKind::VpTree => 1,
            IndexKind::MvpTree => 2,
            IndexKind::Linear => 3,
        }
    }

    /// Human-readable kind name (CLI `stats`, error messages).
    pub fn name(self) -> &'static str {
        match self {
            IndexKind::VpTree => "vp-tree",
            IndexKind::MvpTree => "mvp-tree",
            IndexKind::Linear => "linear",
        }
    }

    fn from_tag(tag: u8) -> Result<Self> {
        match tag {
            1 => Ok(IndexKind::VpTree),
            2 => Ok(IndexKind::MvpTree),
            3 => Ok(IndexKind::Linear),
            other => Err(VantageError::corrupt(format!(
                "unknown index kind tag {other}"
            ))),
        }
    }
}

/// Parsed and CRC-verified snapshot header.
#[derive(Debug)]
pub(crate) struct Header {
    /// Container version the file was written with.
    pub version: u32,
    /// Index structure held by the snapshot.
    pub kind: IndexKind,
    /// Item-encoding tag ([`crate::ItemCodec::TAG`]).
    pub item_tag: u8,
    /// Metric identifier ([`crate::MetricTag::TAG`]).
    pub metric: String,
    /// Number of indexed items.
    pub count: u64,
    /// FNV-1a 64 digest of the items payload.
    pub digest: u64,
    /// Total header length in bytes (CRC included) — the file offset of
    /// the first section descriptor.
    pub len: usize,
}

/// Parsed snapshot header plus the three verified section payloads.
#[derive(Debug)]
pub(crate) struct Container<'a> {
    /// Container version the file was written with.
    pub version: u32,
    /// Index structure held by the snapshot.
    pub kind: IndexKind,
    /// Item-encoding tag ([`crate::ItemCodec::TAG`]).
    pub item_tag: u8,
    /// Metric identifier ([`crate::MetricTag::TAG`]).
    pub metric: String,
    /// Number of indexed items.
    pub count: u64,
    /// FNV-1a 64 digest of the items payload.
    pub digest: u64,
    /// Params section payload (id 1).
    pub params: &'a [u8],
    /// Items section payload (id 2).
    pub items: &'a [u8],
    /// Structure section payload (id 3).
    pub structure: &'a [u8],
    /// Absolute file offset of the items payload (alignment base).
    pub items_off: usize,
    /// Absolute file offset of the structure payload (alignment base).
    pub structure_off: usize,
}

/// Section ids in their fixed file order.
const SECTION_IDS: [(u8, &str); 3] = [(1, "params"), (2, "items"), (3, "structure")];

/// The header length a metric id of `metric_len` bytes produces.
fn header_len(metric_len: usize) -> usize {
    HEADER_FIXED + metric_len
}

/// Absolute file offset of the items payload for the given header and
/// params-payload lengths — what [`crate::trees`] passes the item
/// encoder as its alignment base.
pub(crate) fn items_payload_offset(metric_len: usize, params_len: usize) -> usize {
    header_len(metric_len) + SECTION_OVERHEAD + params_len + 9
}

/// Absolute file offset of the structure payload, given the items
/// payload's offset and length.
pub(crate) fn structure_payload_offset(items_off: usize, items_len: usize) -> usize {
    items_off + items_len + 4 + 9
}

/// Assembles a complete snapshot from the three section payloads.
pub(crate) fn assemble(
    kind: IndexKind,
    item_tag: u8,
    metric: &str,
    count: u64,
    params: &[u8],
    items: &[u8],
    structure: &[u8],
) -> Vec<u8> {
    let mut out = Out::new();
    out.0.extend_from_slice(MAGIC);
    out.u32(FORMAT_VERSION);
    out.u8(kind.tag());
    out.u8(item_tag);
    let metric_bytes = metric.as_bytes();
    debug_assert!(metric_bytes.len() <= usize::from(u16::MAX));
    out.u16(metric_bytes.len() as u16);
    out.0.extend_from_slice(metric_bytes);
    out.u64(count);
    out.u64(fnv1a64(items));
    let header_crc = crc32(&out.0);
    out.u32(header_crc);
    debug_assert_eq!(out.0.len(), header_len(metric_bytes.len()));
    for (id, payload) in SECTION_IDS
        .iter()
        .map(|(id, _)| *id)
        .zip([params, items, structure])
    {
        out.u8(id);
        out.usize(payload.len());
        out.0.extend_from_slice(payload);
        out.u32(crc32(payload));
    }
    out.0
}

/// Parses and CRC-verifies the header span of a snapshot. `bytes` may be
/// the whole file or any prefix of at least the header's length —
/// [`HEADER_MAX`] bytes always suffice — so callers can inspect a
/// multi-GB snapshot after one bounded read.
///
/// # Errors
///
/// * [`VantageError::UnsupportedSnapshot`] for any version other than
///   [`FORMAT_VERSION`] (recognized magic, so the file *is* a snapshot —
///   just not one this build reads; version 1's pointer-rich node
///   records were dropped with the flat layout);
/// * [`VantageError::CorruptSnapshot`] for everything else that does not
///   parse or verify.
pub(crate) fn parse_header(bytes: &[u8]) -> Result<Header> {
    let mut cur = Cursor::new(bytes);
    let magic = cur.take(MAGIC.len(), "magic")?;
    if magic != MAGIC {
        return Err(VantageError::corrupt(
            "missing VNTGSNAP magic: not a snapshot file",
        ));
    }
    let version = cur.u32("version")?;
    if version == 0 {
        return Err(VantageError::corrupt("version 0 is not a valid snapshot"));
    }
    if version != FORMAT_VERSION {
        return Err(VantageError::UnsupportedSnapshot {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let kind = IndexKind::from_tag(cur.u8("index kind")?)?;
    let item_tag = cur.u8("item tag")?;
    let metric_len = usize::from(cur.u16("metric id length")?);
    let metric_bytes = cur.take(metric_len, "metric id")?;
    let metric = std::str::from_utf8(metric_bytes)
        .map_err(|e| VantageError::corrupt(format!("metric id: {e}")))?
        .to_string();
    let count = cur.u64("item count")?;
    let digest = cur.u64("dataset digest")?;
    let actual = crc32(cur.consumed());
    let declared = cur.u32("header checksum")?;
    if declared != actual {
        return Err(VantageError::corrupt(format!(
            "header checksum mismatch: stored {declared:#010x}, computed {actual:#010x}"
        )));
    }
    Ok(Header {
        version,
        kind,
        item_tag,
        metric,
        count,
        digest,
        len: cur.position(),
    })
}

/// Parses and fully verifies a snapshot container: magic, version,
/// header CRC, section framing and per-section CRCs, dataset digest,
/// exact EOF.
///
/// # Errors
///
/// As [`parse_header`], plus [`VantageError::CorruptSnapshot`] for any
/// section-level damage.
pub(crate) fn parse(bytes: &[u8]) -> Result<Container<'_>> {
    let header = parse_header(bytes)?;
    let mut cur = Cursor::new(&bytes[header.len..]);

    let mut payloads: [&[u8]; 3] = [&[], &[], &[]];
    let mut offsets = [0usize; 3];
    for ((slot, off), (id, name)) in payloads.iter_mut().zip(offsets.iter_mut()).zip(SECTION_IDS) {
        let found = cur.u8("section id")?;
        if found != id {
            return Err(VantageError::corrupt(format!(
                "expected section {id} ({name}), found id {found}"
            )));
        }
        let len = cur.len(1, name)?;
        *off = header.len + cur.position();
        let payload = cur.take(len, name)?;
        let declared = cur.u32("section checksum")?;
        let actual = crc32(payload);
        if declared != actual {
            return Err(VantageError::corrupt(format!(
                "{name} section checksum mismatch: stored {declared:#010x}, computed {actual:#010x}"
            )));
        }
        *slot = payload;
    }
    cur.finish("snapshot")?;

    let [params, items, structure] = payloads;
    let items_digest = fnv1a64(items);
    if items_digest != header.digest {
        return Err(VantageError::corrupt(format!(
            "dataset digest mismatch: header says {:#018x}, items hash to {items_digest:#018x}",
            header.digest
        )));
    }
    debug_assert_eq!(
        offsets[1],
        items_payload_offset(header.metric.len(), params.len())
    );
    debug_assert_eq!(
        offsets[2],
        structure_payload_offset(offsets[1], items.len())
    );
    Ok(Container {
        version: header.version,
        kind: header.kind,
        item_tag: header.item_tag,
        metric: header.metric,
        count: header.count,
        digest: header.digest,
        params,
        items,
        structure,
        items_off: offsets[1],
        structure_off: offsets[2],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        assemble(IndexKind::VpTree, 1, "l2", 3, b"PARAMS", b"ITEMS", b"TREE")
    }

    #[test]
    fn assemble_parse_round_trip() {
        let bytes = sample();
        let c = parse(&bytes).unwrap();
        assert_eq!(c.version, FORMAT_VERSION);
        assert_eq!(c.kind, IndexKind::VpTree);
        assert_eq!(c.item_tag, 1);
        assert_eq!(c.metric, "l2");
        assert_eq!(c.count, 3);
        assert_eq!(c.params, b"PARAMS");
        assert_eq!(c.items, b"ITEMS");
        assert_eq!(c.structure, b"TREE");
        assert_eq!(c.digest, fnv1a64(b"ITEMS"));
        assert_eq!(&bytes[c.items_off..c.items_off + 5], b"ITEMS");
        assert_eq!(&bytes[c.structure_off..c.structure_off + 4], b"TREE");
    }

    #[test]
    fn header_parses_from_a_bounded_prefix() {
        let bytes = sample();
        let prefix = &bytes[..HEADER_MAX.min(bytes.len())];
        let h = parse_header(prefix).unwrap();
        assert_eq!(h.version, FORMAT_VERSION);
        assert_eq!(h.kind, IndexKind::VpTree);
        assert_eq!(h.metric, "l2");
        assert_eq!(h.count, 3);
        assert_eq!(h.len, HEADER_FIXED + 2);
        // A prefix short of the full header is a typed truncation error.
        assert!(parse_header(&bytes[..h.len - 1]).is_err());
    }

    #[test]
    fn wrong_magic_is_not_a_snapshot() {
        let mut bytes = sample();
        bytes[0] = b'X';
        let err = parse(&bytes).unwrap_err();
        assert!(err.to_string().contains("not a snapshot"), "{err}");
    }

    #[test]
    fn future_version_is_unsupported_not_corrupt() {
        let mut bytes = sample();
        // Version field sits right after the magic; bump it, then re-seal
        // the header CRC so only the version differs.
        bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        let header_end = bytes.len() - (b"PARAMSITEMSTREE".len() + 3 * 13) - 4;
        let crc = crc32(&bytes[..header_end]);
        bytes[header_end..header_end + 4].copy_from_slice(&crc.to_le_bytes());
        let err = parse(&bytes).unwrap_err();
        assert!(
            matches!(
                err,
                VantageError::UnsupportedSnapshot {
                    found,
                    supported: FORMAT_VERSION,
                } if found == FORMAT_VERSION + 1
            ),
            "{err}"
        );
    }

    #[test]
    fn dropped_v1_is_unsupported_not_corrupt() {
        let mut bytes = sample();
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        let header_end = bytes.len() - (b"PARAMSITEMSTREE".len() + 3 * 13) - 4;
        let crc = crc32(&bytes[..header_end]);
        bytes[header_end..header_end + 4].copy_from_slice(&crc.to_le_bytes());
        let err = parse(&bytes).unwrap_err();
        assert!(
            matches!(
                err,
                VantageError::UnsupportedSnapshot {
                    found: 1,
                    supported: FORMAT_VERSION,
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let good = sample();
        for byte in 0..good.len() {
            for bit in 0..8 {
                let mut bad = good.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    parse(&bad).is_err(),
                    "flip of byte {byte} bit {bit} went unnoticed"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let good = sample();
        for cut in 0..good.len() {
            assert!(parse(&good[..cut]).is_err(), "truncation at {cut} passed");
        }
    }

    #[test]
    fn trailing_garbage_is_detected() {
        let mut bytes = sample();
        bytes.push(0);
        assert!(parse(&bytes).is_err());
    }
}
