//! Byte-exact span parsing for the v2 flat payloads.
//!
//! Both loaders — the materializing `decode_*` path and the zero-copy
//! `open_*` path — run the **same** parser over a section payload. The
//! parser walks the payload once with the bounds-checked [`Cursor`],
//! verifies every declared count against the bytes actually present,
//! and returns plain byte [`Range`]s for each flat array. The decode
//! path copies those ranges into `Vec`s; the mmap path reinterprets
//! them in place. Either way, a payload that passes here has exactly
//! the shape the arena constructors expect — the structural invariants
//! (child ids in range, leaf tilings, cutoff monotonicity) are then
//! re-checked by the tree crates' `validate_arena` before any search
//! runs.
//!
//! ## Items payload (both item encodings)
//!
//! ```text
//! pad to 8 │ count u64 │ offsets u64 × (count+1) │ element data
//! ```
//!
//! Offsets are cumulative element counts (f64s for vectors, bytes for
//! strings): item `i` is `data[offsets[i] .. offsets[i+1]]`. The parser
//! checks `offsets[0] == 0`, that the sequence never decreases, and
//! that `offsets[count]` equals the data region's length exactly.
//!
//! ## Vp-tree structure payload
//!
//! ```text
//! pad to 8 │ root u32 │ nodes u32 │ internal u32 │ leaves u32
//! │ leaf items u32 │ meta u32 × nodes │ vantage u32 × internal
//! │ children u32 × internal·order │ leaf spans u32 × leaves·2
//! │ leaf items u32 × total │ pad to 8 │ cutoffs f64 × internal·(order−1)
//! ```
//!
//! ## Mvp-tree structure payload
//!
//! ```text
//! pad to 8 │ path total u64 │ root u32 │ nodes u32 │ internal u32
//! │ leaves u32 │ entries u32 │ meta u32 × nodes │ vp1, vp2 u32 × internal
//! │ children u32 × internal·m² │ leaf heads u32 × leaves·6
//! │ ids u32 × entries │ pad to 8 │ cutoffs1 f64 × internal·(m−1)
//! │ cutoffs2 f64 × internal·m·(m−1) │ d1, d2 f64 × entries
//! │ path f64 × path total
//! ```
//!
//! `root` is `u32::MAX` for an empty tree (node ids are capped at
//! 2³¹ − 1, so the sentinel is unambiguous). All padding is zeros and
//! is relative to the payload's absolute file offset (`base`), so every
//! `u64`/`f64` array in a mapped file is 8-byte aligned in memory.

use std::ops::Range;

use vantage_core::{Result, VantageError};

use crate::wire::Cursor;

fn corrupt(detail: impl Into<String>) -> VantageError {
    VantageError::corrupt(detail)
}

/// Multiplies array-shape factors, failing typed instead of wrapping.
fn shape(n: usize, stride: usize, what: &str) -> Result<usize> {
    n.checked_mul(stride)
        .ok_or_else(|| corrupt(format!("{what}: {n} × {stride} overflows")))
}

/// Consumes `n` `u32`s and returns their byte range within the payload.
fn u32_span(cur: &mut Cursor<'_>, n: usize, what: &str) -> Result<Range<usize>> {
    let need = shape(n, 4, what)?;
    let start = cur.position();
    cur.take(need, what)?;
    Ok(start..start + need)
}

/// Consumes `n` `f64`s and returns their byte range within the payload.
fn f64_span(cur: &mut Cursor<'_>, n: usize, what: &str) -> Result<Range<usize>> {
    let need = shape(n, 8, what)?;
    let start = cur.position();
    cur.take(need, what)?;
    Ok(start..start + need)
}

/// Copies a validated `u32` span out of a payload.
pub(crate) fn u32s_in(payload: &[u8], r: &Range<usize>) -> Vec<u32> {
    payload[r.clone()]
        .chunks_exact(4)
        .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        .collect()
}

/// Copies a validated `f64` span out of a payload.
pub(crate) fn f64s_in(payload: &[u8], r: &Range<usize>) -> Vec<f64> {
    payload[r.clone()]
        .chunks_exact(8)
        .map(|b| f64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
        .collect()
}

/// Validated spans of a v2 items payload.
#[derive(Debug)]
pub(crate) struct ItemsLayout {
    /// Number of items (equals the header count).
    pub count: usize,
    /// The `count + 1` cumulative offsets (element units), verified to
    /// start at 0 and never decrease.
    pub offsets: Vec<u64>,
    /// Byte range of the offsets array within the payload.
    pub offsets_bytes: Range<usize>,
    /// Byte range of the element data within the payload.
    pub data: Range<usize>,
}

impl ItemsLayout {
    /// Parses a v2 items payload. `base` is the payload's absolute file
    /// offset (the alignment origin), `expect` the header's item count
    /// and `elem` the bytes per data element (8 for `f64` vectors, 1
    /// for UTF-8 strings).
    pub(crate) fn parse(payload: &[u8], base: usize, expect: u64, elem: usize) -> Result<Self> {
        let mut cur = Cursor::new(payload);
        cur.align8(base, "items alignment")?;
        let declared = cur.u64("items count")?;
        if declared != expect {
            return Err(corrupt(format!(
                "items payload declares {declared} items, header says {expect}"
            )));
        }
        let count = usize::try_from(declared)
            .map_err(|_| corrupt(format!("item count {declared} exceeds address space")))?;
        let fences = count
            .checked_add(1)
            .ok_or_else(|| corrupt("item count overflows"))?;
        let offsets_start = cur.position();
        let offsets = cur.u64s(fences, "item offsets")?;
        let offsets_bytes = offsets_start..cur.position();
        if offsets[0] != 0 {
            return Err(corrupt(format!(
                "item offsets start at {}, expected 0",
                offsets[0]
            )));
        }
        if offsets.windows(2).any(|w| w[1] < w[0]) {
            return Err(corrupt("item offsets decrease"));
        }
        let total = usize::try_from(offsets[count])
            .map_err(|_| corrupt("item data length exceeds address space"))?;
        let data_len = shape(total, elem, "item data")?;
        let data_start = cur.position();
        cur.take(data_len, "item data")?;
        cur.finish("items payload")?;
        Ok(ItemsLayout {
            count,
            offsets,
            offsets_bytes,
            data: data_start..data_start + data_len,
        })
    }
}

/// Validated spans of a v2 vp-tree structure payload.
#[derive(Debug)]
pub(crate) struct VpLayout {
    /// Root node id, `u32::MAX` for an empty tree.
    pub root: u32,
    /// Per-node meta words (`nodes` u32s).
    pub meta: Range<usize>,
    /// Vantage-point ids (`internal` u32s).
    pub vantage: Range<usize>,
    /// Child-slot buffer (`internal × order` u32s).
    pub children: Range<usize>,
    /// Leaf `(start, len)` spans (`leaves × 2` u32s).
    pub leaf_spans: Range<usize>,
    /// Shared leaf bucket buffer (u32s).
    pub leaf_items: Range<usize>,
    /// Cutoff buffer (`internal × (order − 1)` f64s).
    pub cutoffs: Range<usize>,
}

impl VpLayout {
    /// Parses a v2 vp-tree structure payload laid out for fanout
    /// `order`.
    pub(crate) fn parse(payload: &[u8], base: usize, order: usize) -> Result<Self> {
        if order < 2 {
            return Err(corrupt(format!("vp-tree order {order} (minimum 2)")));
        }
        let mut cur = Cursor::new(payload);
        cur.align8(base, "structure alignment")?;
        let root = cur.u32("root")?;
        let nodes = cur.u32("node count")? as usize;
        let internal = cur.u32("internal count")? as usize;
        let leaves = cur.u32("leaf count")? as usize;
        let leaf_total = cur.u32("leaf item total")? as usize;
        if internal.checked_add(leaves) != Some(nodes) {
            return Err(corrupt(format!(
                "node classes do not tile: {internal} internal + {leaves} leaves ≠ {nodes} nodes"
            )));
        }
        let meta = u32_span(&mut cur, nodes, "meta words")?;
        let vantage = u32_span(&mut cur, internal, "vantage ids")?;
        let children = u32_span(&mut cur, shape(internal, order, "children")?, "children")?;
        let leaf_spans = u32_span(&mut cur, shape(leaves, 2, "leaf spans")?, "leaf spans")?;
        let leaf_items = u32_span(&mut cur, leaf_total, "leaf items")?;
        cur.align8(base, "cutoff alignment")?;
        let cutoffs = f64_span(&mut cur, shape(internal, order - 1, "cutoffs")?, "cutoffs")?;
        cur.finish("structure payload")?;
        Ok(VpLayout {
            root,
            meta,
            vantage,
            children,
            leaf_spans,
            leaf_items,
            cutoffs,
        })
    }
}

/// Validated spans of a v2 mvp-tree structure payload.
#[derive(Debug)]
pub(crate) struct MvpLayout {
    /// Root node id, `u32::MAX` for an empty tree.
    pub root: u32,
    /// Per-node meta words (`nodes` u32s).
    pub meta: Range<usize>,
    /// First vantage points (`internal` u32s).
    pub vp1: Range<usize>,
    /// Second vantage points (`internal` u32s).
    pub vp2: Range<usize>,
    /// Child-slot buffer (`internal × m²` u32s).
    pub children: Range<usize>,
    /// 6-word leaf heads (`leaves × 6` u32s).
    pub leaf_heads: Range<usize>,
    /// Shared leaf entry-id column (u32s).
    pub ids: Range<usize>,
    /// First-level cutoffs (`internal × (m − 1)` f64s).
    pub cutoffs1: Range<usize>,
    /// Second-level cutoffs (`internal × m × (m − 1)` f64s).
    pub cutoffs2: Range<usize>,
    /// Shared `D1` column (f64s).
    pub d1: Range<usize>,
    /// Shared `D2` column (f64s).
    pub d2: Range<usize>,
    /// Shared row-major PATH buffer (f64s).
    pub path: Range<usize>,
}

impl MvpLayout {
    /// Parses a v2 mvp-tree structure payload laid out for fanout `m`.
    pub(crate) fn parse(payload: &[u8], base: usize, m: usize) -> Result<Self> {
        if m < 2 {
            return Err(corrupt(format!("mvp-tree fanout m = {m} (minimum 2)")));
        }
        let mut cur = Cursor::new(payload);
        cur.align8(base, "structure alignment")?;
        let path_total = usize::try_from(cur.u64("PATH total")?)
            .map_err(|_| corrupt("PATH total exceeds address space"))?;
        let root = cur.u32("root")?;
        let nodes = cur.u32("node count")? as usize;
        let internal = cur.u32("internal count")? as usize;
        let leaves = cur.u32("leaf count")? as usize;
        let entries = cur.u32("entry total")? as usize;
        if internal.checked_add(leaves) != Some(nodes) {
            return Err(corrupt(format!(
                "node classes do not tile: {internal} internal + {leaves} leaves ≠ {nodes} nodes"
            )));
        }
        let meta = u32_span(&mut cur, nodes, "meta words")?;
        let vp1 = u32_span(&mut cur, internal, "first vantage ids")?;
        let vp2 = u32_span(&mut cur, internal, "second vantage ids")?;
        let m2 = shape(m, m, "m²")?;
        let children = u32_span(&mut cur, shape(internal, m2, "children")?, "children")?;
        let leaf_heads = u32_span(&mut cur, shape(leaves, 6, "leaf heads")?, "leaf heads")?;
        let ids = u32_span(&mut cur, entries, "entry ids")?;
        cur.align8(base, "cutoff alignment")?;
        let cutoffs1 = f64_span(&mut cur, shape(internal, m - 1, "cutoffs1")?, "cutoffs1")?;
        let rows = shape(m, m - 1, "cutoff rows")?;
        let cutoffs2 = f64_span(&mut cur, shape(internal, rows, "cutoffs2")?, "cutoffs2")?;
        let d1 = f64_span(&mut cur, entries, "D1 column")?;
        let d2 = f64_span(&mut cur, entries, "D2 column")?;
        let path = f64_span(&mut cur, path_total, "PATH buffer")?;
        cur.finish("structure payload")?;
        Ok(MvpLayout {
            root,
            meta,
            vp1,
            vp2,
            children,
            leaf_heads,
            ids,
            cutoffs1,
            cutoffs2,
            d1,
            d2,
            path,
        })
    }
}
