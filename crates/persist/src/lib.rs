//! # vantage-persist
//!
//! Versioned, checksummed on-disk snapshots for the workspace's index
//! structures — build once, query many times.
//!
//! Building a vp- or mvp-tree is the expensive step: `O(n log n)` metric
//! evaluations, each potentially costly (edit distance, image metrics).
//! The tree that comes out is a pure function of `(items, params, seed)`
//! and is immutable afterwards, which makes it an ideal persistence
//! target: a snapshot stores the items, the construction parameters and
//! the exact node arena, so a reload answers every query **bit-identically**
//! to the freshly built tree — same neighbors, same distance counts,
//! same pruning traces — without recomputing a single construction
//! distance.
//!
//! ## Format
//!
//! A snapshot is a single file (see [`format`] module docs for the exact
//! byte layout):
//!
//! * a header carrying magic bytes, a format version, the index kind,
//!   the item encoding, the metric identifier, the item count and an
//!   FNV-1a digest of the dataset payload — sealed by its own CRC-32;
//! * three CRC-32-checked sections: construction params, items, node
//!   structure.
//!
//! ## Integrity
//!
//! Loading validates everything **before** an index is returned: magic
//! and version, both checksum layers, every declared length against the
//! bytes actually present, and finally the full structural invariants of
//! the decoded tree (`from_parts`). Any failure — truncation, a single
//! flipped bit, a fabricated length, an unknown enum tag — yields a
//! typed [`VantageError`], never a panic and never an oversized
//! allocation. The fault-injection suite in `tests/` drives exactly
//! these cases.
//!
//! ```
//! use vantage_core::prelude::*;
//! use vantage_persist as persist;
//! use vantage_vptree::{VpTree, VpTreeParams};
//!
//! let points: Vec<Vec<f64>> = (0..100).map(|i| vec![f64::from(i)]).collect();
//! let tree = VpTree::build(points, Euclidean, VpTreeParams::binary().seed(7)).unwrap();
//!
//! let bytes = persist::encode_vp_tree(&tree);
//! let again: VpTree<Vec<f64>, Euclidean> = persist::decode_vp_tree(&bytes).unwrap();
//! assert_eq!(again.range(&vec![50.0], 1.5), tree.range(&vec![50.0], 1.5));
//!
//! let info = persist::inspect_bytes(&bytes).unwrap();
//! assert_eq!(info.kind, persist::IndexKind::VpTree);
//! assert_eq!(info.items, 100);
//! ```

// Unsafety is denied crate-wide and re-allowed in exactly one place:
// the `mem` module's mapping/cast primitives (same scoped policy as
// vantage-core's `simd.rs`). Everything else, including all parsing of
// untrusted bytes, is safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod check;
pub mod codec;
pub mod format;
pub mod mapped;
pub mod wire;

mod layout;
mod mem;
mod trees;

use std::path::Path;

use vantage_core::{LinearScan, Result, VantageError};
use vantage_mvptree::MvpTree;
use vantage_vptree::VpTree;

pub use codec::{ItemCodec, MetricTag};
pub use format::{IndexKind, FORMAT_VERSION, MAGIC};
pub use mapped::{
    open_mvp_tree, open_vp_tree, F64Vectors, FlatItems, MappedMvpTree, MappedVpTree, Utf8Strings,
};
pub use trees::{
    decode_linear_scan, decode_mvp_tree, decode_vp_tree, encode_linear_scan, encode_mvp_tree,
    encode_vp_tree,
};

/// Header metadata of a verified snapshot, as reported by [`inspect`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Container format version the file was written with.
    pub version: u32,
    /// Index structure held by the snapshot.
    pub kind: IndexKind,
    /// Item encoding name (e.g. `f64-vector`, `utf8-string`).
    pub item: String,
    /// Metric identifier (e.g. `l2`, `edit`).
    pub metric: String,
    /// Number of indexed items.
    pub items: u64,
    /// FNV-1a 64 digest of the dataset payload.
    pub digest: u64,
    /// Total snapshot size in bytes.
    pub bytes: u64,
}

/// Parses and integrity-checks a snapshot byte buffer without decoding
/// the index, returning its header metadata. All checksums and the
/// section framing are verified — an `inspect`ed snapshot is structurally
/// sound at the container level (the tree-level invariants are only
/// checked by the typed `decode_*` functions).
///
/// # Errors
///
/// The same typed errors as the `decode_*` functions' container stage.
pub fn inspect_bytes(bytes: &[u8]) -> Result<SnapshotInfo> {
    let c = format::parse(bytes)?;
    Ok(SnapshotInfo {
        version: c.version,
        kind: c.kind,
        item: trees::item_tag_name(c.item_tag),
        metric: c.metric,
        items: c.count,
        digest: c.digest,
        bytes: bytes.len() as u64,
    })
}

/// Header metadata of a snapshot file — **O(header), not O(file)**.
///
/// Reads only the bounded header span (a few dozen bytes plus the
/// metric id) and the file's length from its metadata, so inspecting a
/// multi-GB snapshot costs one small read. The header's own CRC-32 is
/// verified; the section payloads are *not* touched — full container
/// verification is [`inspect_bytes`]' or the `decode_*`/`open_*`
/// functions' job.
///
/// # Errors
///
/// [`VantageError::Io`] when the file cannot be opened or read;
/// [`VantageError::CorruptSnapshot`] on short files (a truncated
/// header), bad magic or a failed header CRC;
/// [`VantageError::UnsupportedSnapshot`] for other format versions.
pub fn inspect(path: impl AsRef<Path>) -> Result<SnapshotInfo> {
    use std::io::Read;
    let path = path.as_ref();
    let io_err = |e: std::io::Error| VantageError::io(path.display().to_string(), e.to_string());
    let file = std::fs::File::open(path).map_err(io_err)?;
    let total = file.metadata().map_err(io_err)?.len();
    let mut head = Vec::new();
    file.take(format::HEADER_MAX as u64)
        .read_to_end(&mut head)
        .map_err(io_err)?;
    let h = format::parse_header(&head)?;
    Ok(SnapshotInfo {
        version: h.version,
        kind: h.kind,
        item: trees::item_tag_name(h.item_tag),
        metric: h.metric,
        items: h.count,
        digest: h.digest,
        bytes: total,
    })
}

fn read_file(path: &Path) -> Result<Vec<u8>> {
    std::fs::read(path).map_err(|e| VantageError::io(path.display().to_string(), e.to_string()))
}

fn write_file(path: &Path, bytes: &[u8]) -> Result<()> {
    std::fs::write(path, bytes)
        .map_err(|e| VantageError::io(path.display().to_string(), e.to_string()))
}

/// Saves a vp-tree snapshot to `path`, returning the bytes written.
///
/// # Errors
///
/// [`VantageError::Io`] when the file cannot be written.
pub fn save_vp_tree<T: ItemCodec, M: MetricTag>(
    tree: &VpTree<T, M>,
    path: impl AsRef<Path>,
) -> Result<u64> {
    let bytes = encode_vp_tree(tree);
    write_file(path.as_ref(), &bytes)?;
    Ok(bytes.len() as u64)
}

/// Loads (and fully validates) a vp-tree snapshot from `path`.
///
/// # Errors
///
/// [`VantageError::Io`] when the file cannot be read, otherwise as
/// [`decode_vp_tree`].
pub fn load_vp_tree<T: ItemCodec, M: MetricTag>(path: impl AsRef<Path>) -> Result<VpTree<T, M>> {
    decode_vp_tree(&read_file(path.as_ref())?)
}

/// Saves an mvp-tree snapshot to `path`, returning the bytes written.
///
/// # Errors
///
/// [`VantageError::Io`] when the file cannot be written.
pub fn save_mvp_tree<T: ItemCodec, M: MetricTag>(
    tree: &MvpTree<T, M>,
    path: impl AsRef<Path>,
) -> Result<u64> {
    let bytes = encode_mvp_tree(tree);
    write_file(path.as_ref(), &bytes)?;
    Ok(bytes.len() as u64)
}

/// Loads (and fully validates) an mvp-tree snapshot from `path`.
///
/// # Errors
///
/// [`VantageError::Io`] when the file cannot be read, otherwise as
/// [`decode_mvp_tree`].
pub fn load_mvp_tree<T: ItemCodec, M: MetricTag>(path: impl AsRef<Path>) -> Result<MvpTree<T, M>> {
    decode_mvp_tree(&read_file(path.as_ref())?)
}

/// Saves a linear-scan snapshot to `path`, returning the bytes written.
///
/// # Errors
///
/// [`VantageError::Io`] when the file cannot be written.
pub fn save_linear_scan<T: ItemCodec, M: MetricTag>(
    scan: &LinearScan<T, M>,
    path: impl AsRef<Path>,
) -> Result<u64> {
    let bytes = encode_linear_scan(scan);
    write_file(path.as_ref(), &bytes)?;
    Ok(bytes.len() as u64)
}

/// Loads (and fully validates) a linear-scan snapshot from `path`.
///
/// # Errors
///
/// [`VantageError::Io`] when the file cannot be read, otherwise as
/// [`decode_linear_scan`].
pub fn load_linear_scan<T: ItemCodec, M: MetricTag>(
    path: impl AsRef<Path>,
) -> Result<LinearScan<T, M>> {
    decode_linear_scan(&read_file(path.as_ref())?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vantage_core::prelude::*;
    use vantage_vptree::VpTreeParams;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("vantage-persist-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn save_load_inspect_file_round_trip() {
        let points: Vec<Vec<f64>> = (0..80).map(|i| vec![f64::from(i), 0.5]).collect();
        let tree = VpTree::build(points, Euclidean, VpTreeParams::binary().seed(3)).unwrap();
        let path = temp_path("roundtrip.vsnap");
        let written = save_vp_tree(&tree, &path).unwrap();

        let info = inspect(&path).unwrap();
        assert_eq!(info.version, FORMAT_VERSION);
        assert_eq!(info.kind, IndexKind::VpTree);
        assert_eq!(info.item, "f64-vector");
        assert_eq!(info.metric, "l2");
        assert_eq!(info.items, 80);
        assert_eq!(info.bytes, written);

        let back: VpTree<Vec<f64>, Euclidean> = load_vp_tree(&path).unwrap();
        assert_eq!(back.to_parts(), tree.to_parts());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = load_vp_tree::<Vec<f64>, Euclidean>("/nonexistent/vantage.vsnap").unwrap_err();
        assert!(matches!(err, VantageError::Io { .. }), "{err}");
        let err = inspect("/nonexistent/vantage.vsnap").unwrap_err();
        assert!(matches!(err, VantageError::Io { .. }), "{err}");
    }

    #[test]
    fn non_snapshot_file_is_corrupt_not_panic() {
        let path = temp_path("garbage.vsnap");
        std::fs::write(&path, b"this is not a snapshot at all").unwrap();
        let err = inspect(&path).unwrap_err();
        assert!(matches!(err, VantageError::CorruptSnapshot { .. }), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
