//! Zero-copy snapshot serving: `open(2)` → answer queries, no
//! materialization.
//!
//! The `decode_*` loaders copy every section into owned `Vec`s and
//! rebuild an owned tree — `O(file)` allocation and copying before the
//! first query can run. The `open_*` loaders in this module map the
//! snapshot file instead ([`crate::mem`]), run the exact same
//! container, layout and structural validation **once**, and then keep
//! only byte ranges: a [`MappedVpTree`] / [`MappedMvpTree`] is the
//! storage plus a handful of `Range<usize>` spans. Each query builds a
//! borrowed [`VpTreeRef`] / [`MvpTreeRef`] directly over the mapped
//! bytes — the same kernels the owned trees run, so answers are
//! bit-identical to the `decode_*` path, but cold start is `O(header +
//! validation)` and the page cache, not the heap, holds the data.
//!
//! Item access is typed through [`FlatItems`]: [`F64Vectors`] serves
//! `[f64]` slices out of the mapped value buffer, [`Utf8Strings`]
//! serves `&str` out of the mapped text (validated as UTF-8 once at
//! open). Queries therefore take unsized borrows (`&[f64]`, `&str`) —
//! every workspace metric implements both the sized and unsized item
//! forms.

use std::marker::PhantomData;
use std::ops::Range;
use std::path::Path;

use vantage_core::{FlatF64s, FlatStrs, ItemStore, Result, VantageError};
use vantage_mvptree::{MvpArenaView, MvpParams, MvpTreeRef};
use vantage_vptree::{VpArenaView, VpTreeParams, VpTreeRef};

use crate::codec::{ItemCodec, MetricTag};
use crate::format::{parse, IndexKind};
use crate::layout::{ItemsLayout, MvpLayout, VpLayout};
use crate::mem::{self, Storage};
use crate::trees::{check_tags, decode_mvp_params, decode_vp_params, root_from_wire};

/// An item encoding that can be served in place from mapped snapshot
/// bytes.
///
/// This is the zero-copy counterpart of [`ItemCodec`]: same tags, same
/// payload layout, but instead of materializing owned values it builds
/// a borrowed [`ItemStore`] over the validated offset and data spans.
pub trait FlatItems {
    /// Unsized item form queries borrow (`[f64]`, `str`).
    type Item: ?Sized;
    /// The borrowed store built over mapped spans.
    type Store<'a>: ItemStore<Item = Self::Item> + Copy;
    /// Item-encoding tag — matches the [`ItemCodec`] twin.
    const TAG: u8;
    /// Encoding name for mismatch errors.
    const NAME: &'static str;
    /// Bytes per data element (8 for `f64`, 1 for UTF-8 bytes).
    const ELEM: usize;
    /// Open-time validation of the raw data region beyond what the
    /// layout parser checks (e.g. UTF-8 well-formedness).
    ///
    /// # Errors
    ///
    /// [`VantageError::CorruptSnapshot`] when the data region cannot
    /// back this encoding.
    fn check(data: &[u8], offsets: &[u64]) -> Result<()>;
    /// Builds the borrowed store over validated spans.
    fn store<'a>(offsets: &'a [u64], data: &'a [u8]) -> Self::Store<'a>;
}

/// Marker: snapshot items are `f64` vectors, served as `&[f64]`.
#[derive(Debug)]
pub enum F64Vectors {}

impl FlatItems for F64Vectors {
    type Item = [f64];
    type Store<'a> = FlatF64s<'a>;
    const TAG: u8 = <Vec<f64> as ItemCodec>::TAG;
    const NAME: &'static str = <Vec<f64> as ItemCodec>::NAME;
    const ELEM: usize = 8;

    fn check(_data: &[u8], _offsets: &[u64]) -> Result<()> {
        // Every aligned 8-byte span is a valid f64; the layout parser
        // already verified sizes and fences.
        Ok(())
    }

    fn store<'a>(offsets: &'a [u64], data: &'a [u8]) -> FlatF64s<'a> {
        FlatF64s::new(offsets, mem::f64s(data))
    }
}

/// Marker: snapshot items are UTF-8 strings, served as `&str`.
#[derive(Debug)]
pub enum Utf8Strings {}

impl FlatItems for Utf8Strings {
    type Item = str;
    type Store<'a> = FlatStrs<'a>;
    const TAG: u8 = <String as ItemCodec>::TAG;
    const NAME: &'static str = <String as ItemCodec>::NAME;
    const ELEM: usize = 1;

    fn check(data: &[u8], offsets: &[u64]) -> Result<()> {
        let text = std::str::from_utf8(data)
            .map_err(|e| VantageError::corrupt(format!("string items: {e}")))?;
        // Fences must land on character boundaries or per-item slicing
        // would split a code point (offsets are already bounds-checked
        // against the data length by the layout parser).
        for &off in offsets {
            if !text.is_char_boundary(off as usize) {
                return Err(VantageError::corrupt(format!(
                    "item offset {off} splits a UTF-8 code point"
                )));
            }
        }
        Ok(())
    }

    fn store<'a>(offsets: &'a [u64], data: &'a [u8]) -> FlatStrs<'a> {
        FlatStrs::new(offsets, mem::str_validated(data))
    }
}

/// Shifts a payload-relative span to an absolute file span.
fn rebase(r: &Range<usize>, off: usize) -> Range<usize> {
    r.start + off..r.end + off
}

/// Open-time item plumbing shared by both trees: container parse, tag
/// checks, item layout and encoding validation. Returns the decoded
/// params bytes plus absolute item spans; the caller parses its own
/// structure payload inside the same borrow of `bytes`.
struct ItemSpans {
    count: usize,
    offsets: Range<usize>,
    data: Range<usize>,
}

fn check_items<'a, K: FlatItems>(
    bytes: &'a [u8],
    kind: IndexKind,
    metric_tag: &'static str,
) -> Result<(crate::format::Container<'a>, ItemSpans)> {
    let c = parse(bytes)?;
    check_tags(&c, kind, K::TAG, K::NAME, metric_tag)?;
    let ilay = ItemsLayout::parse(c.items, c.items_off, c.count, K::ELEM)?;
    K::check(&c.items[ilay.data.clone()], &ilay.offsets)?;
    let spans = ItemSpans {
        count: ilay.count,
        offsets: rebase(&ilay.offsets_bytes, c.items_off),
        data: rebase(&ilay.data, c.items_off),
    };
    Ok((c, spans))
}

/// A vp-tree served directly out of a mapped snapshot file.
///
/// Owns the storage and the validated spans; [`view`](Self::view)
/// assembles a borrowed [`VpTreeRef`] per query at pointer-arithmetic
/// cost. Validation (container checksums, layout bounds, full
/// structural invariants) ran once inside [`open_vp_tree`] — views are
/// built unchecked afterwards.
#[derive(Debug)]
pub struct MappedVpTree<K: FlatItems, M> {
    storage: Storage,
    params: VpTreeParams,
    root: Option<u32>,
    metric: M,
    count: usize,
    item_offsets: Range<usize>,
    item_data: Range<usize>,
    lay: VpLayout,
    _items: PhantomData<K>,
}

impl<K: FlatItems, M> MappedVpTree<K, M> {
    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the snapshot indexes no items.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Construction parameters recorded in the snapshot.
    pub fn params(&self) -> &VpTreeParams {
        &self.params
    }

    /// The reconstructed metric (shared by every view).
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// Whether the backing storage is an actual `mmap` (vs the owned
    /// read fallback on platforms or files that refuse mapping).
    pub fn is_mapped(&self) -> bool {
        self.storage.is_mapped()
    }

    /// A borrowed tree over the mapped bytes, ready to answer any
    /// query form bit-identically to the materialized tree.
    pub fn view(&self) -> VpTreeRef<'_, K::Store<'_>, M> {
        let b = self.storage.bytes();
        let arena = VpArenaView::from_raw_parts(
            self.params.order,
            mem::u32s(&b[self.lay.meta.clone()]),
            mem::u32s(&b[self.lay.vantage.clone()]),
            mem::u32s(&b[self.lay.children.clone()]),
            mem::f64s(&b[self.lay.cutoffs.clone()]),
            mem::u32s(&b[self.lay.leaf_spans.clone()]),
            mem::u32s(&b[self.lay.leaf_items.clone()]),
        );
        let store = K::store(
            mem::u64s(&b[self.item_offsets.clone()]),
            &b[self.item_data.clone()],
        );
        VpTreeRef::new(arena, self.root, store, &self.metric)
    }
}

/// Opens a vp-tree snapshot for zero-copy serving.
///
/// Runs the full verification pipeline once — container checksums,
/// typed tag checks, layout bounds, item encoding checks and the tree
/// crates' complete `validate_arena` — then returns a handle that
/// builds borrowed views without touching the bulk of the file again.
///
/// # Errors
///
/// The same typed errors as [`crate::decode_vp_tree`] plus
/// [`VantageError::Io`] for open/metadata failures and
/// [`VantageError::InvalidParameter`] on big-endian hosts.
pub fn open_vp_tree<K: FlatItems, M: MetricTag>(
    path: impl AsRef<Path>,
) -> Result<MappedVpTree<K, M>> {
    mem::check_little_endian()?;
    let storage = Storage::open(path.as_ref())?;
    let (params, root, lay, spans) = {
        let bytes = storage.bytes();
        let (c, spans) = check_items::<K>(bytes, IndexKind::VpTree, M::TAG)?;
        let params = decode_vp_params(c.params)?;
        let slay = VpLayout::parse(c.structure, c.structure_off, params.order)?;
        let lay = VpLayout {
            root: slay.root,
            meta: rebase(&slay.meta, c.structure_off),
            vantage: rebase(&slay.vantage, c.structure_off),
            children: rebase(&slay.children, c.structure_off),
            leaf_spans: rebase(&slay.leaf_spans, c.structure_off),
            leaf_items: rebase(&slay.leaf_items, c.structure_off),
            cutoffs: rebase(&slay.cutoffs, c.structure_off),
        };
        (params, root_from_wire(slay.root), lay, spans)
    };
    let tree = MappedVpTree {
        storage,
        params,
        root,
        metric: M::reconstruct(),
        count: spans.count,
        item_offsets: spans.offsets,
        item_data: spans.data,
        lay,
        _items: PhantomData,
    };
    {
        let view = tree.view();
        vantage_vptree::validate_arena(view.arena(), root, tree.count, &tree.params)?;
    }
    Ok(tree)
}

/// An mvp-tree served directly out of a mapped snapshot file; the
/// multi-vantage twin of [`MappedVpTree`].
#[derive(Debug)]
pub struct MappedMvpTree<K: FlatItems, M> {
    storage: Storage,
    params: MvpParams,
    root: Option<u32>,
    metric: M,
    count: usize,
    item_offsets: Range<usize>,
    item_data: Range<usize>,
    lay: MvpLayout,
    _items: PhantomData<K>,
}

impl<K: FlatItems, M> MappedMvpTree<K, M> {
    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the snapshot indexes no items.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Construction parameters recorded in the snapshot.
    pub fn params(&self) -> &MvpParams {
        &self.params
    }

    /// The reconstructed metric (shared by every view).
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// Whether the backing storage is an actual `mmap`.
    pub fn is_mapped(&self) -> bool {
        self.storage.is_mapped()
    }

    /// A borrowed tree over the mapped bytes.
    pub fn view(&self) -> MvpTreeRef<'_, K::Store<'_>, M> {
        let b = self.storage.bytes();
        let arena = MvpArenaView::from_raw_parts(
            self.params.m,
            mem::u32s(&b[self.lay.meta.clone()]),
            mem::u32s(&b[self.lay.vp1.clone()]),
            mem::u32s(&b[self.lay.vp2.clone()]),
            mem::u32s(&b[self.lay.children.clone()]),
            mem::f64s(&b[self.lay.cutoffs1.clone()]),
            mem::f64s(&b[self.lay.cutoffs2.clone()]),
            mem::u32s(&b[self.lay.leaf_heads.clone()]),
            mem::u32s(&b[self.lay.ids.clone()]),
            mem::f64s(&b[self.lay.d1.clone()]),
            mem::f64s(&b[self.lay.d2.clone()]),
            mem::f64s(&b[self.lay.path.clone()]),
        );
        let store = K::store(
            mem::u64s(&b[self.item_offsets.clone()]),
            &b[self.item_data.clone()],
        );
        MvpTreeRef::new(arena, self.root, store, &self.metric, self.params.p)
    }
}

/// Opens an mvp-tree snapshot for zero-copy serving; see
/// [`open_vp_tree`] for the verification pipeline and error contract.
///
/// # Errors
///
/// As [`open_vp_tree`], against [`crate::decode_mvp_tree`]'s checks.
pub fn open_mvp_tree<K: FlatItems, M: MetricTag>(
    path: impl AsRef<Path>,
) -> Result<MappedMvpTree<K, M>> {
    mem::check_little_endian()?;
    let storage = Storage::open(path.as_ref())?;
    let (params, root, lay, spans) = {
        let bytes = storage.bytes();
        let (c, spans) = check_items::<K>(bytes, IndexKind::MvpTree, M::TAG)?;
        let params = decode_mvp_params(c.params)?;
        let slay = MvpLayout::parse(c.structure, c.structure_off, params.m)?;
        let lay = MvpLayout {
            root: slay.root,
            meta: rebase(&slay.meta, c.structure_off),
            vp1: rebase(&slay.vp1, c.structure_off),
            vp2: rebase(&slay.vp2, c.structure_off),
            children: rebase(&slay.children, c.structure_off),
            leaf_heads: rebase(&slay.leaf_heads, c.structure_off),
            ids: rebase(&slay.ids, c.structure_off),
            cutoffs1: rebase(&slay.cutoffs1, c.structure_off),
            cutoffs2: rebase(&slay.cutoffs2, c.structure_off),
            d1: rebase(&slay.d1, c.structure_off),
            d2: rebase(&slay.d2, c.structure_off),
            path: rebase(&slay.path, c.structure_off),
        };
        (params, root_from_wire(slay.root), lay, spans)
    };
    let tree = MappedMvpTree {
        storage,
        params,
        root,
        metric: M::reconstruct(),
        count: spans.count,
        item_offsets: spans.offsets,
        item_data: spans.data,
        lay,
        _items: PhantomData,
    };
    {
        let view = tree.view();
        vantage_mvptree::validate_arena(view.arena(), root, tree.count, &tree.params)?;
    }
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vantage_core::prelude::*;
    use vantage_mvptree::MvpTree;
    use vantage_vptree::VpTree;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("vantage-mapped-{}-{name}", std::process::id()))
    }

    fn points(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| vec![f64::from(i as u32 % 23), f64::from(i as u32 % 7), 0.25])
            .collect()
    }

    #[test]
    fn mapped_vp_tree_answers_bit_identically() {
        let tree = VpTree::build(
            points(300),
            Euclidean,
            vantage_vptree::VpTreeParams::with_order(3)
                .leaf_capacity(4)
                .seed(11),
        )
        .unwrap();
        let path = temp_path("vp.vsnap");
        crate::save_vp_tree(&tree, &path).unwrap();

        let mapped = open_vp_tree::<F64Vectors, Euclidean>(&path).unwrap();
        assert_eq!(mapped.len(), 300);
        let view = mapped.view();
        for q in [vec![3.0, 2.0, 0.25], vec![20.0, 6.0, 0.0]] {
            assert_eq!(view.range(q.as_slice(), 4.0), tree.range(&q, 4.0));
            assert_eq!(view.knn(q.as_slice(), 9), tree.knn(&q, 9));
            assert_eq!(
                view.range_beyond(q.as_slice(), 15.0),
                tree.range_beyond(&q, 15.0)
            );
            assert_eq!(view.k_farthest(q.as_slice(), 5), tree.k_farthest(&q, 5));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_mvp_tree_answers_bit_identically_on_strings() {
        let words: Vec<String> = [
            "carrot", "carol", "", "härlig", "caring", "carrots", "barrel",
        ]
        .iter()
        .cycle()
        .take(140)
        .enumerate()
        .map(|(i, w)| format!("{w}{}", i % 13))
        .collect();
        let tree = MvpTree::build(
            words.clone(),
            Levenshtein,
            vantage_mvptree::MvpParams::paper(2, 5, 3).seed(9),
        )
        .unwrap();
        let path = temp_path("mvp.vsnap");
        crate::save_mvp_tree(&tree, &path).unwrap();

        let mapped = open_mvp_tree::<Utf8Strings, Levenshtein>(&path).unwrap();
        let view = mapped.view();
        for q in ["carrot7", "härlig", ""] {
            let owned = q.to_string();
            assert_eq!(view.range(q, 3.0), tree.range(&owned, 3.0));
            assert_eq!(view.knn(q, 8), tree.knn(&owned, 8));
            assert_eq!(view.k_farthest(q, 4), tree.k_farthest(&owned, 4));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_tree_opens_and_answers_empty() {
        let tree = VpTree::build(
            Vec::<Vec<f64>>::new(),
            Euclidean,
            vantage_vptree::VpTreeParams::binary(),
        )
        .unwrap();
        let path = temp_path("empty.vsnap");
        crate::save_vp_tree(&tree, &path).unwrap();
        let mapped = open_vp_tree::<F64Vectors, Euclidean>(&path).unwrap();
        assert!(mapped.is_empty());
        assert!(mapped.view().knn([0.0].as_slice(), 3).is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_checks_tags_like_decode() {
        let tree = VpTree::build(
            points(40),
            Euclidean,
            vantage_vptree::VpTreeParams::binary().seed(1),
        )
        .unwrap();
        let path = temp_path("tags.vsnap");
        crate::save_vp_tree(&tree, &path).unwrap();
        let err = open_mvp_tree::<F64Vectors, Euclidean>(&path).unwrap_err();
        assert!(
            matches!(err, VantageError::SnapshotMismatch { .. }),
            "{err}"
        );
        let err = open_vp_tree::<Utf8Strings, Levenshtein>(&path).unwrap_err();
        assert!(
            matches!(err, VantageError::SnapshotMismatch { .. }),
            "{err}"
        );
        let err = open_vp_tree::<F64Vectors, Manhattan>(&path).unwrap_err();
        assert!(
            matches!(err, VantageError::SnapshotMismatch { .. }),
            "{err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn counted_probe_counts_mapped_distances() {
        let tree = VpTree::build(
            points(100),
            Counted::new(Euclidean),
            vantage_vptree::VpTreeParams::binary().seed(4),
        )
        .unwrap();
        let path = temp_path("counted.vsnap");
        crate::save_vp_tree(&tree, &path).unwrap();
        let mapped = open_vp_tree::<F64Vectors, Counted<Euclidean>>(&path).unwrap();
        // validate_arena runs metric-free, but the open-time count may
        // stay zero only until the first query touches the metric.
        let before = mapped.metric().count();
        mapped.view().knn([1.0, 1.0, 0.25].as_slice(), 5);
        assert!(mapped.metric().count() > before);
        std::fs::remove_file(&path).ok();
    }
}
