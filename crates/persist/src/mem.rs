//! The one `unsafe` corner of the persistence stack: read-only file
//! mappings and in-place reinterpretation of validated snapshot spans.
//!
//! Everything outside this module stays `#![deny(unsafe_code)]`; the
//! scoped allow below mirrors the workspace's `simd.rs` policy — all
//! unsafety lives behind a handful of small functions whose contracts
//! are enforced at runtime where possible (alignment, length) and by
//! the open-time validation pipeline where not (UTF-8).
//!
//! ## Safety argument
//!
//! * **Mapping lifetime** — a [`Mapping`] owns its `mmap(2)` region and
//!   unmaps in `Drop`; every byte slice handed out borrows `&self`, so
//!   the borrow checker pins the region for as long as any view exists.
//! * **Read-only, private** — regions are mapped `PROT_READ` +
//!   `MAP_PRIVATE`: nothing in this process can write through the
//!   mapping, and other processes' writes to the file are not required
//!   to be visible. Snapshot files are write-once by contract (the
//!   writer creates them in full before serving ever opens them); a
//!   process that truncates a snapshot while it is mapped can still
//!   induce `SIGBUS` on access — documented in `DESIGN.md`, and the
//!   reason atomic rename-into-place is the only supported way to
//!   replace a live snapshot.
//! * **Alignment** — the v2 format pads every `u64`/`f64` array to an
//!   8-byte boundary *relative to the file start*, and both backing
//!   stores are 8-aligned (mappings are page-aligned; the owned
//!   fallback buffer is a `Vec<u64>`), so the cast functions' runtime
//!   alignment assertions can only fire on a logic bug, never on a
//!   hostile file.
//! * **Endianness** — spans are reinterpreted, not decoded, so the
//!   zero-copy path requires a little-endian host; [`check_little_endian`]
//!   turns a big-endian host into a typed error before any cast runs
//!   (the copying `decode_*` loaders remain fully portable).

#![allow(unsafe_code)]

use std::path::Path;

use vantage_core::{Result, VantageError};

/// Raw `mmap(2)`/`munmap(2)` bindings — only what a read-only private
/// file mapping needs, so no libc crate dependency.
#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

/// An owned read-only private mapping of a whole file.
#[cfg(unix)]
#[derive(Debug)]
pub(crate) struct Mapping {
    ptr: std::ptr::NonNull<u8>,
    len: usize,
}

// SAFETY: the region is immutable for its whole lifetime (PROT_READ |
// MAP_PRIVATE, never remapped), so shared references from any thread
// observe the same frozen bytes.
#[cfg(unix)]
unsafe impl Send for Mapping {}
#[cfg(unix)]
unsafe impl Sync for Mapping {}

#[cfg(unix)]
impl Mapping {
    /// Maps `len` bytes of `file` read-only, or `None` when the kernel
    /// declines (callers fall back to reading the file into memory).
    fn map(file: &std::fs::File, len: usize) -> Option<Mapping> {
        use std::os::unix::io::AsRawFd;
        // SAFETY: a fresh anonymous address is requested (addr = null),
        // the fd is open for reading and outlives the call, and the
        // result is checked before use.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::map_failed() {
            return None;
        }
        std::ptr::NonNull::new(ptr.cast::<u8>()).map(|ptr| Mapping { ptr, len })
    }

    fn bytes(&self) -> &[u8] {
        // SAFETY: ptr/len describe a live mapping owned by self; the
        // returned borrow keeps self (and so the mapping) alive.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

#[cfg(unix)]
impl Drop for Mapping {
    fn drop(&mut self) {
        // SAFETY: exactly the region mmap returned; after this the
        // NonNull is never dereferenced again (self is being dropped).
        unsafe {
            sys::munmap(self.ptr.as_ptr().cast(), self.len);
        }
    }
}

/// Backing bytes of an open snapshot: a file mapping when the platform
/// grants one, otherwise an owned 8-aligned buffer with identical
/// semantics (so every caller above this line is storage-agnostic).
#[derive(Debug)]
pub(crate) enum Storage {
    /// `mmap(2)`-backed — the zero-copy path.
    #[cfg(unix)]
    Mapped(Mapping),
    /// Owned fallback: file contents in a `Vec<u64>` (for 8-byte
    /// alignment) plus the real byte length.
    Owned(Vec<u64>, usize),
}

impl Storage {
    /// Opens `path`, preferring a read-only mapping and falling back to
    /// an in-memory copy (empty files, exotic filesystems, non-unix).
    pub(crate) fn open(path: &Path) -> Result<Storage> {
        let io_err =
            |e: std::io::Error| VantageError::io(path.display().to_string(), e.to_string());
        let file = std::fs::File::open(path).map_err(io_err)?;
        let len = usize::try_from(file.metadata().map_err(io_err)?.len()).map_err(|_| {
            VantageError::io(path.display().to_string(), "file exceeds address space")
        })?;
        #[cfg(unix)]
        if len > 0 {
            if let Some(m) = Mapping::map(&file, len) {
                return Ok(Storage::Mapped(m));
            }
        }
        Storage::read_owned(file, len, path)
    }

    fn read_owned(mut file: std::fs::File, len: usize, path: &Path) -> Result<Storage> {
        use std::io::Read;
        let mut buf = Vec::with_capacity(len.min(1 << 30));
        file.read_to_end(&mut buf)
            .map_err(|e| VantageError::io(path.display().to_string(), e.to_string()))?;
        let mut words = vec![0u64; buf.len().div_ceil(8)];
        for (word, chunk) in words.iter_mut().zip(buf.chunks(8)) {
            let mut b = [0u8; 8];
            b[..chunk.len()].copy_from_slice(chunk);
            *word = u64::from_ne_bytes(b);
        }
        Ok(Storage::Owned(words, buf.len()))
    }

    /// The snapshot bytes, whatever the backing store.
    pub(crate) fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            Storage::Mapped(m) => m.bytes(),
            // SAFETY: a u64 buffer is always valid to view as bytes
            // (alignment 8 ≥ 1, no padding, no invalid bit patterns);
            // len never exceeds words.len() × 8 by construction.
            Storage::Owned(words, len) => unsafe {
                std::slice::from_raw_parts(words.as_ptr().cast::<u8>(), *len)
            },
        }
    }

    /// Whether this storage is an actual file mapping (vs the owned
    /// read fallback) — surfaced by serve as the `layout=` label.
    pub(crate) fn is_mapped(&self) -> bool {
        match self {
            #[cfg(unix)]
            Storage::Mapped(_) => true,
            Storage::Owned(..) => false,
        }
    }
}

/// Fails typed on big-endian hosts, where in-place reinterpretation of
/// the little-endian wire format would read garbage.
pub(crate) fn check_little_endian() -> Result<()> {
    if cfg!(target_endian = "little") {
        Ok(())
    } else {
        Err(VantageError::invalid_parameter(
            "host endianness",
            "zero-copy snapshot mapping requires a little-endian host; \
             use the materializing load_*/decode_* loaders instead",
        ))
    }
}

macro_rules! cast_fn {
    ($name:ident, $ty:ty, $width:literal) => {
        /// Reinterprets a validated span in place. The layout parser
        /// guarantees size and alignment; the assertions make a logic
        /// bug loud instead of undefined.
        pub(crate) fn $name(bytes: &[u8]) -> &[$ty] {
            assert!(
                bytes.len() % $width == 0 && bytes.as_ptr() as usize % $width == 0,
                concat!(
                    "snapshot span is not a whole aligned ",
                    stringify!($ty),
                    " array"
                ),
            );
            // SAFETY: length and alignment asserted above; the target
            // types accept every bit pattern; the borrow ties the
            // result to the backing storage.
            unsafe {
                std::slice::from_raw_parts(bytes.as_ptr().cast::<$ty>(), bytes.len() / $width)
            }
        }
    };
}

cast_fn!(u32s, u32, 4);
cast_fn!(u64s, u64, 8);
cast_fn!(f64s, f64, 8);

/// Views snapshot text without re-scanning it.
///
/// # Contract
///
/// `bytes` must be the exact data region that passed whole-buffer UTF-8
/// validation at open time (`FlatItems::check`); snapshot storage is
/// immutable afterwards, so the validation cannot go stale.
pub(crate) fn str_validated(bytes: &[u8]) -> &str {
    debug_assert!(std::str::from_utf8(bytes).is_ok());
    // SAFETY: validated at open over immutable storage; see contract.
    unsafe { std::str::from_utf8_unchecked(bytes) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_fallback_round_trips_any_length() {
        for len in [0usize, 1, 7, 8, 9, 4096, 4097] {
            let path =
                std::env::temp_dir().join(format!("vantage-mem-{}-{len}.bin", std::process::id()));
            let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            std::fs::write(&path, &data).unwrap();
            let file = std::fs::File::open(&path).unwrap();
            let owned = Storage::read_owned(file, len, &path).unwrap();
            assert_eq!(owned.bytes(), &data[..]);
            assert!(!owned.is_mapped());
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn mapped_storage_matches_the_file() {
        let path = std::env::temp_dir().join(format!("vantage-mem-map-{}.bin", std::process::id()));
        let data: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect();
        std::fs::write(&path, &data).unwrap();
        let storage = Storage::open(&path).unwrap();
        assert_eq!(storage.bytes(), &data[..]);
        if cfg!(unix) {
            assert!(storage.is_mapped());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn casts_reinterpret_little_endian_spans() {
        let words: Vec<u64> = vec![0x0102_0304_0506_0708, u64::MAX, 0];
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        // Route through an 8-aligned owned buffer like real storage.
        let mut aligned = [0u64; 3];
        for (w, chunk) in aligned.iter_mut().zip(bytes.chunks(8)) {
            *w = u64::from_ne_bytes(chunk.try_into().unwrap());
        }
        let view =
            unsafe { std::slice::from_raw_parts(aligned.as_ptr().cast::<u8>(), bytes.len()) };
        if cfg!(target_endian = "little") {
            assert_eq!(u64s(view), &words[..]);
            assert_eq!(u32s(&view[..8]), &[0x0506_0708, 0x0102_0304]);
        }
    }
}
