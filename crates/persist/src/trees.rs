//! Per-index encoding and decoding: params and structure payloads for
//! the vp-tree, mvp-tree and linear scan, plus the typed
//! `encode_*`/`decode_*` entry points over the container format.
//!
//! Decoding never trusts the payload: the shared [`crate::layout`]
//! parser bounds-checks every declared count against the bytes actually
//! present (a fabricated count cannot trigger a large allocation), and
//! the final `from_arena` validation re-checks every structural
//! invariant before a tree is handed back. The structure payloads are
//! the arenas' flat arrays written verbatim, so encoding is a handful
//! of `memcpy`-shaped appends and decoding is the reverse — no per-node
//! record walking on either side.

use vantage_core::parallel::Threads;
use vantage_core::select::VantageSelector;
use vantage_core::{LinearScan, Result, VantageError};
use vantage_mvptree::params::{MvpParams, SecondVantage};
use vantage_mvptree::{MvpArena, MvpTree};
use vantage_vptree::{VpArena, VpTree, VpTreeParams};

use crate::codec::{ItemCodec, MetricTag};
use crate::format::{
    assemble, items_payload_offset, parse, structure_payload_offset, Container, IndexKind,
};
use crate::layout::{self, MvpLayout, VpLayout};
use crate::wire::{Cursor, Out};

/// Human-readable name for an item-encoding tag (known or not).
pub(crate) fn item_tag_name(tag: u8) -> String {
    match tag {
        t if t == <Vec<f64> as ItemCodec>::TAG => <Vec<f64> as ItemCodec>::NAME.to_string(),
        t if t == <String as ItemCodec>::TAG => <String as ItemCodec>::NAME.to_string(),
        other => format!("unknown item tag {other}"),
    }
}

/// Checks a parsed container against the expected kind/item/metric tags.
pub(crate) fn check_tags(
    c: &Container<'_>,
    expect: IndexKind,
    item_tag: u8,
    item_name: &'static str,
    metric_tag: &'static str,
) -> Result<()> {
    if c.kind != expect {
        return Err(VantageError::mismatch(
            "index kind",
            c.kind.name(),
            expect.name(),
        ));
    }
    if c.item_tag != item_tag {
        return Err(VantageError::mismatch(
            "item type",
            item_tag_name(c.item_tag),
            item_name,
        ));
    }
    if c.metric != metric_tag {
        return Err(VantageError::mismatch("metric", &c.metric, metric_tag));
    }
    Ok(())
}

fn check_typed<T: ItemCodec, M: MetricTag>(c: &Container<'_>, expect: IndexKind) -> Result<()> {
    check_tags(c, expect, T::TAG, T::NAME, M::TAG)
}

/// `root` wire form: node ids stay below 2³¹, so `u32::MAX` is a free
/// sentinel for the empty tree.
pub(crate) fn root_to_wire(root: Option<u32>) -> u32 {
    root.unwrap_or(u32::MAX)
}

/// Inverse of [`root_to_wire`].
pub(crate) fn root_from_wire(raw: u32) -> Option<u32> {
    (raw != u32::MAX).then_some(raw)
}

// ---------------------------------------------------------------- shared

fn put_selector(out: &mut Out, sel: VantageSelector) {
    match sel {
        VantageSelector::Random => out.u8(0),
        VantageSelector::FirstItem => out.u8(1),
        VantageSelector::SampledSpread { candidates, sample } => {
            out.u8(2);
            out.usize(candidates);
            out.usize(sample);
        }
    }
}

fn get_selector(cur: &mut Cursor<'_>) -> Result<VantageSelector> {
    match cur.u8("selector tag")? {
        0 => Ok(VantageSelector::Random),
        1 => Ok(VantageSelector::FirstItem),
        2 => Ok(VantageSelector::SampledSpread {
            candidates: cur.usize_scalar("selector candidates")?,
            sample: cur.usize_scalar("selector sample")?,
        }),
        tag => Err(VantageError::corrupt(format!("unknown selector tag {tag}"))),
    }
}

fn put_threads(out: &mut Out, threads: Threads) {
    match threads {
        Threads::Auto => out.u8(0),
        Threads::Fixed(n) => {
            out.u8(1);
            out.usize(n);
        }
    }
}

fn get_threads(cur: &mut Cursor<'_>) -> Result<Threads> {
    match cur.u8("threads tag")? {
        0 => Ok(Threads::Auto),
        1 => Ok(Threads::Fixed(cur.usize_scalar("threads count")?)),
        tag => Err(VantageError::corrupt(format!("unknown threads tag {tag}"))),
    }
}

// --------------------------------------------------------------- vp-tree

fn encode_vp_params(params: &VpTreeParams) -> Vec<u8> {
    let mut out = Out::new();
    out.usize(params.order);
    out.usize(params.leaf_capacity);
    put_selector(&mut out, params.selector);
    out.u64(params.seed);
    put_threads(&mut out, params.threads);
    out.0
}

pub(crate) fn decode_vp_params(payload: &[u8]) -> Result<VpTreeParams> {
    let mut cur = Cursor::new(payload);
    let params = VpTreeParams {
        order: cur.usize_scalar("order")?,
        leaf_capacity: cur.usize_scalar("leaf capacity")?,
        selector: get_selector(&mut cur)?,
        seed: cur.u64("seed")?,
        threads: get_threads(&mut cur)?,
    };
    cur.finish("params section")?;
    Ok(params)
}

fn encode_vp_structure<T, M>(tree: &VpTree<T, M>, base: usize) -> Vec<u8> {
    let a = tree.arena();
    let mut out = Out::new();
    out.align8(base);
    out.u32(root_to_wire(tree.root()));
    out.u32(a.len() as u32);
    out.u32(a.internal_count() as u32);
    out.u32(a.leaf_count() as u32);
    out.u32(a.leaf_items().len() as u32);
    out.u32s(a.meta());
    out.u32s(a.vantage());
    out.u32s(a.children());
    out.u32s(a.leaf_spans());
    out.u32s(a.leaf_items());
    out.align8(base);
    out.f64s(a.cutoffs());
    out.0
}

fn decode_vp_structure(
    payload: &[u8],
    base: usize,
    order: usize,
) -> Result<(Option<u32>, VpArena)> {
    let lay = VpLayout::parse(payload, base, order)?;
    let arena = VpArena::from_raw_arrays(
        order as u32,
        layout::u32s_in(payload, &lay.meta),
        layout::u32s_in(payload, &lay.vantage),
        layout::u32s_in(payload, &lay.children),
        layout::f64s_in(payload, &lay.cutoffs),
        layout::u32s_in(payload, &lay.leaf_spans),
        layout::u32s_in(payload, &lay.leaf_items),
    );
    Ok((root_from_wire(lay.root), arena))
}

/// Encodes a vp-tree into a complete snapshot byte buffer.
pub fn encode_vp_tree<T: ItemCodec, M: MetricTag>(tree: &VpTree<T, M>) -> Vec<u8> {
    let params = encode_vp_params(tree.params());
    let items_off = items_payload_offset(M::TAG.len(), params.len());
    let items = T::encode_section(tree.items(), items_off);
    let structure_off = structure_payload_offset(items_off, items.len());
    let structure = encode_vp_structure(tree, structure_off);
    assemble(
        IndexKind::VpTree,
        T::TAG,
        M::TAG,
        tree.items().len() as u64,
        &params,
        &items,
        &structure,
    )
}

/// Decodes (and fully validates) a vp-tree snapshot.
///
/// # Errors
///
/// Typed [`VantageError`]s for version/kind/item/metric mismatches and
/// any form of corruption; never panics on malformed input.
pub fn decode_vp_tree<T: ItemCodec, M: MetricTag>(bytes: &[u8]) -> Result<VpTree<T, M>> {
    let c = parse(bytes)?;
    check_typed::<T, M>(&c, IndexKind::VpTree)?;
    let params = decode_vp_params(c.params)?;
    let items = T::decode_section(c.items, c.items_off, c.count)?;
    let (root, arena) = decode_vp_structure(c.structure, c.structure_off, params.order)?;
    VpTree::from_arena(items, M::reconstruct(), params, root, arena)
}

// -------------------------------------------------------------- mvp-tree

fn encode_mvp_params(params: &MvpParams) -> Vec<u8> {
    let mut out = Out::new();
    out.usize(params.m);
    out.usize(params.k);
    out.usize(params.p);
    put_selector(&mut out, params.selector);
    out.u8(match params.second {
        SecondVantage::Farthest => 0,
        SecondVantage::Random => 1,
    });
    out.u64(params.seed);
    put_threads(&mut out, params.threads);
    out.0
}

pub(crate) fn decode_mvp_params(payload: &[u8]) -> Result<MvpParams> {
    let mut cur = Cursor::new(payload);
    let params = MvpParams {
        m: cur.usize_scalar("m")?,
        k: cur.usize_scalar("k")?,
        p: cur.usize_scalar("p")?,
        selector: get_selector(&mut cur)?,
        second: match cur.u8("second-vantage tag")? {
            0 => SecondVantage::Farthest,
            1 => SecondVantage::Random,
            tag => {
                return Err(VantageError::corrupt(format!(
                    "unknown second-vantage tag {tag}"
                )))
            }
        },
        seed: cur.u64("seed")?,
        threads: get_threads(&mut cur)?,
    };
    cur.finish("params section")?;
    Ok(params)
}

fn encode_mvp_structure<T, M>(tree: &MvpTree<T, M>, base: usize) -> Vec<u8> {
    let a = tree.arena();
    let mut out = Out::new();
    out.align8(base);
    out.u64(a.path().len() as u64);
    out.u32(root_to_wire(tree.root()));
    out.u32(a.len() as u32);
    out.u32(a.internal_count() as u32);
    out.u32(a.leaf_count() as u32);
    out.u32(a.ids().len() as u32);
    out.u32s(a.meta());
    out.u32s(a.vp1());
    out.u32s(a.vp2());
    out.u32s(a.children());
    out.u32s(a.leaf_heads());
    out.u32s(a.ids());
    out.align8(base);
    out.f64s(a.cutoffs1());
    out.f64s(a.cutoffs2());
    out.f64s(a.d1());
    out.f64s(a.d2());
    out.f64s(a.path());
    out.0
}

fn decode_mvp_structure(payload: &[u8], base: usize, m: usize) -> Result<(Option<u32>, MvpArena)> {
    let lay = MvpLayout::parse(payload, base, m)?;
    let arena = MvpArena::from_raw_arrays(
        m as u32,
        layout::u32s_in(payload, &lay.meta),
        layout::u32s_in(payload, &lay.vp1),
        layout::u32s_in(payload, &lay.vp2),
        layout::u32s_in(payload, &lay.children),
        layout::f64s_in(payload, &lay.cutoffs1),
        layout::f64s_in(payload, &lay.cutoffs2),
        layout::u32s_in(payload, &lay.leaf_heads),
        layout::u32s_in(payload, &lay.ids),
        layout::f64s_in(payload, &lay.d1),
        layout::f64s_in(payload, &lay.d2),
        layout::f64s_in(payload, &lay.path),
    );
    Ok((root_from_wire(lay.root), arena))
}

/// Encodes an mvp-tree into a complete snapshot byte buffer.
pub fn encode_mvp_tree<T: ItemCodec, M: MetricTag>(tree: &MvpTree<T, M>) -> Vec<u8> {
    let params = encode_mvp_params(tree.params());
    let items_off = items_payload_offset(M::TAG.len(), params.len());
    let items = T::encode_section(tree.items(), items_off);
    let structure_off = structure_payload_offset(items_off, items.len());
    let structure = encode_mvp_structure(tree, structure_off);
    assemble(
        IndexKind::MvpTree,
        T::TAG,
        M::TAG,
        tree.items().len() as u64,
        &params,
        &items,
        &structure,
    )
}

/// Decodes (and fully validates) an mvp-tree snapshot.
///
/// # Errors
///
/// Typed [`VantageError`]s for version/kind/item/metric mismatches and
/// any form of corruption; never panics on malformed input.
pub fn decode_mvp_tree<T: ItemCodec, M: MetricTag>(bytes: &[u8]) -> Result<MvpTree<T, M>> {
    let c = parse(bytes)?;
    check_typed::<T, M>(&c, IndexKind::MvpTree)?;
    let params = decode_mvp_params(c.params)?;
    let items = T::decode_section(c.items, c.items_off, c.count)?;
    let (root, arena) = decode_mvp_structure(c.structure, c.structure_off, params.m)?;
    MvpTree::from_arena(items, M::reconstruct(), params, root, arena)
}

// ---------------------------------------------------------- linear scan

/// Encodes a linear scan into a complete snapshot byte buffer (the
/// params and structure sections are empty — a scan is just its items).
pub fn encode_linear_scan<T: ItemCodec, M: MetricTag>(scan: &LinearScan<T, M>) -> Vec<u8> {
    let items_off = items_payload_offset(M::TAG.len(), 0);
    let items = T::encode_section(scan.items(), items_off);
    assemble(
        IndexKind::Linear,
        T::TAG,
        M::TAG,
        scan.items().len() as u64,
        &[],
        &items,
        &[],
    )
}

/// Decodes (and fully validates) a linear-scan snapshot.
///
/// # Errors
///
/// Typed [`VantageError`]s for version/kind/item/metric mismatches and
/// any form of corruption; never panics on malformed input.
pub fn decode_linear_scan<T: ItemCodec, M: MetricTag>(bytes: &[u8]) -> Result<LinearScan<T, M>> {
    let c = parse(bytes)?;
    check_typed::<T, M>(&c, IndexKind::Linear)?;
    if !c.params.is_empty() {
        return Err(VantageError::corrupt(
            "linear-scan snapshot carries a non-empty params section",
        ));
    }
    if !c.structure.is_empty() {
        return Err(VantageError::corrupt(
            "linear-scan snapshot carries a non-empty structure section",
        ));
    }
    let items = T::decode_section(c.items, c.items_off, c.count)?;
    Ok(LinearScan::new(items, M::reconstruct()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vantage_core::prelude::*;

    fn points(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| vec![f64::from(i as u32 % 17), f64::from(i as u32 % 5)])
            .collect()
    }

    #[test]
    fn vp_tree_snapshot_round_trips() {
        let tree = VpTree::build(
            points(150),
            Euclidean,
            vantage_vptree::VpTreeParams::with_order(3)
                .leaf_capacity(4)
                .seed(5),
        )
        .unwrap();
        let bytes = encode_vp_tree(&tree);
        let back: VpTree<Vec<f64>, Euclidean> = decode_vp_tree(&bytes).unwrap();
        assert_eq!(back.to_parts(), tree.to_parts());
        assert_eq!(back.items(), tree.items());
        let q = vec![3.0, 2.0];
        assert_eq!(back.range(&q, 2.5), tree.range(&q, 2.5));
    }

    #[test]
    fn mvp_tree_snapshot_round_trips() {
        let tree =
            MvpTree::build(points(200), Euclidean, MvpParams::paper(3, 6, 4).seed(2)).unwrap();
        let bytes = encode_mvp_tree(&tree);
        let back: MvpTree<Vec<f64>, Euclidean> = decode_mvp_tree(&bytes).unwrap();
        assert_eq!(back.to_parts(), tree.to_parts());
        assert_eq!(back.items(), tree.items());
        let q = vec![8.0, 1.0];
        assert_eq!(back.knn(&q, 6), tree.knn(&q, 6));
    }

    #[test]
    fn linear_scan_snapshot_round_trips() {
        let scan = LinearScan::new(
            vec!["carrot".to_string(), "carol".to_string(), "".to_string()],
            Levenshtein,
        );
        let bytes = encode_linear_scan(&scan);
        let back: LinearScan<String, Levenshtein> = decode_linear_scan(&bytes).unwrap();
        assert_eq!(back.items(), scan.items());
        let hits = back.range(&"carrots".to_string(), 2.0);
        assert_eq!(hits, scan.range(&"carrots".to_string(), 2.0));
    }

    #[test]
    fn kind_mismatch_is_typed() {
        let tree = VpTree::build(
            points(30),
            Euclidean,
            vantage_vptree::VpTreeParams::binary(),
        )
        .unwrap();
        let bytes = encode_vp_tree(&tree);
        let err = decode_mvp_tree::<Vec<f64>, Euclidean>(&bytes).unwrap_err();
        assert!(
            matches!(
                err,
                VantageError::SnapshotMismatch {
                    field: "index kind",
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn metric_mismatch_is_typed() {
        let tree = VpTree::build(
            points(30),
            Euclidean,
            vantage_vptree::VpTreeParams::binary(),
        )
        .unwrap();
        let bytes = encode_vp_tree(&tree);
        let err = decode_vp_tree::<Vec<f64>, Manhattan>(&bytes).unwrap_err();
        assert!(
            matches!(
                err,
                VantageError::SnapshotMismatch {
                    field: "metric",
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn item_type_mismatch_is_typed() {
        let scan = LinearScan::new(points(10), Euclidean);
        let bytes = encode_linear_scan(&scan);
        let err = decode_linear_scan::<String, Levenshtein>(&bytes).unwrap_err();
        assert!(
            matches!(
                err,
                VantageError::SnapshotMismatch {
                    field: "item type",
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn counted_wrapper_is_snapshot_transparent() {
        // A tree built with Counted<L2> and one built with plain L2 have
        // the same metric tag; loading either as Counted starts counting
        // from zero.
        let tree = VpTree::build(
            points(60),
            Counted::new(Euclidean),
            vantage_vptree::VpTreeParams::binary().seed(1),
        )
        .unwrap();
        let bytes = encode_vp_tree(&tree);
        let back: VpTree<Vec<f64>, Counted<Euclidean>> = decode_vp_tree(&bytes).unwrap();
        assert_eq!(back.metric().count(), 0);
        let plain: VpTree<Vec<f64>, Euclidean> = decode_vp_tree(&bytes).unwrap();
        assert_eq!(plain.to_parts(), back.to_parts());
    }
}
