//! Per-index encoding and decoding: params and structure payloads for
//! the vp-tree, mvp-tree and linear scan, plus the typed
//! `encode_*`/`decode_*` entry points over the container format.
//!
//! Decoding never trusts the payload: all reads are bounds-checked, node
//! vectors grow only as bytes are actually consumed (a fabricated count
//! cannot trigger a large allocation), and the final
//! `from_parts` validation re-checks every structural invariant before a
//! tree is handed back.

use vantage_core::parallel::Threads;
use vantage_core::select::VantageSelector;
use vantage_core::{LinearScan, Result, VantageError};
use vantage_mvptree::params::{MvpParams, SecondVantage};
use vantage_mvptree::{MvpTree, MvpTreeParts, RawMvpLeafEntries, RawMvpNode};
use vantage_vptree::{RawVpNode, VpTree, VpTreeParams, VpTreeParts};

use crate::codec::{ItemCodec, MetricTag};
use crate::format::{assemble, parse, Container, IndexKind};
use crate::wire::{Cursor, Out};

/// Human-readable name for an item-encoding tag (known or not).
pub(crate) fn item_tag_name(tag: u8) -> String {
    match tag {
        t if t == <Vec<f64> as ItemCodec>::TAG => <Vec<f64> as ItemCodec>::NAME.to_string(),
        t if t == <String as ItemCodec>::TAG => <String as ItemCodec>::NAME.to_string(),
        other => format!("unknown item tag {other}"),
    }
}

fn check_typed<T: ItemCodec, M: MetricTag>(c: &Container<'_>, expect: IndexKind) -> Result<()> {
    if c.kind != expect {
        return Err(VantageError::mismatch(
            "index kind",
            c.kind.name(),
            expect.name(),
        ));
    }
    if c.item_tag != T::TAG {
        return Err(VantageError::mismatch(
            "item type",
            item_tag_name(c.item_tag),
            T::NAME,
        ));
    }
    if c.metric != M::TAG {
        return Err(VantageError::mismatch("metric", &c.metric, M::TAG));
    }
    Ok(())
}

fn encode_items<T: ItemCodec>(items: &[T]) -> Vec<u8> {
    let mut out = Out::new();
    for item in items {
        item.encode(&mut out);
    }
    out.0
}

fn decode_items<T: ItemCodec>(payload: &[u8], count: u64) -> Result<Vec<T>> {
    let count = usize::try_from(count)
        .map_err(|_| VantageError::corrupt(format!("item count {count} exceeds address space")))?;
    let mut cur = Cursor::new(payload);
    let mut items = Vec::new();
    for _ in 0..count {
        items.push(T::decode(&mut cur)?);
    }
    cur.finish("items section")?;
    Ok(items)
}

// ---------------------------------------------------------------- shared

fn put_selector(out: &mut Out, sel: VantageSelector) {
    match sel {
        VantageSelector::Random => out.u8(0),
        VantageSelector::FirstItem => out.u8(1),
        VantageSelector::SampledSpread { candidates, sample } => {
            out.u8(2);
            out.usize(candidates);
            out.usize(sample);
        }
    }
}

fn get_selector(cur: &mut Cursor<'_>) -> Result<VantageSelector> {
    match cur.u8("selector tag")? {
        0 => Ok(VantageSelector::Random),
        1 => Ok(VantageSelector::FirstItem),
        2 => Ok(VantageSelector::SampledSpread {
            candidates: cur.usize_scalar("selector candidates")?,
            sample: cur.usize_scalar("selector sample")?,
        }),
        tag => Err(VantageError::corrupt(format!("unknown selector tag {tag}"))),
    }
}

fn put_threads(out: &mut Out, threads: Threads) {
    match threads {
        Threads::Auto => out.u8(0),
        Threads::Fixed(n) => {
            out.u8(1);
            out.usize(n);
        }
    }
}

fn get_threads(cur: &mut Cursor<'_>) -> Result<Threads> {
    match cur.u8("threads tag")? {
        0 => Ok(Threads::Auto),
        1 => Ok(Threads::Fixed(cur.usize_scalar("threads count")?)),
        tag => Err(VantageError::corrupt(format!("unknown threads tag {tag}"))),
    }
}

// --------------------------------------------------------------- vp-tree

fn encode_vp_params(params: &VpTreeParams) -> Vec<u8> {
    let mut out = Out::new();
    out.usize(params.order);
    out.usize(params.leaf_capacity);
    put_selector(&mut out, params.selector);
    out.u64(params.seed);
    put_threads(&mut out, params.threads);
    out.0
}

fn decode_vp_params(payload: &[u8]) -> Result<VpTreeParams> {
    let mut cur = Cursor::new(payload);
    let params = VpTreeParams {
        order: cur.usize_scalar("order")?,
        leaf_capacity: cur.usize_scalar("leaf capacity")?,
        selector: get_selector(&mut cur)?,
        seed: cur.u64("seed")?,
        threads: get_threads(&mut cur)?,
    };
    cur.finish("params section")?;
    Ok(params)
}

fn encode_vp_structure(root: Option<u32>, nodes: &[RawVpNode]) -> Vec<u8> {
    let mut out = Out::new();
    out.opt_u32(root);
    out.usize(nodes.len());
    for node in nodes {
        match node {
            RawVpNode::Internal {
                vantage,
                cutoffs,
                children,
            } => {
                out.u8(0);
                out.u32(*vantage);
                out.f64_vec(cutoffs);
                out.usize(children.len());
                for &child in children {
                    out.opt_u32(child);
                }
            }
            RawVpNode::Leaf { items } => {
                out.u8(1);
                out.u32_vec(items);
            }
        }
    }
    out.0
}

fn decode_vp_structure(payload: &[u8]) -> Result<(Option<u32>, Vec<RawVpNode>)> {
    let mut cur = Cursor::new(payload);
    let root = cur.opt_u32("root")?;
    let count = cur.u64("node count")?;
    let mut nodes = Vec::new();
    for _ in 0..count {
        let node = match cur.u8("node tag")? {
            0 => {
                let vantage = cur.u32("vantage id")?;
                let cutoffs = cur.f64_vec("cutoffs")?;
                let n = cur.len(1, "children")?;
                let children = (0..n)
                    .map(|_| cur.opt_u32("child id"))
                    .collect::<Result<Vec<_>>>()?;
                RawVpNode::Internal {
                    vantage,
                    cutoffs,
                    children,
                }
            }
            1 => RawVpNode::Leaf {
                items: cur.u32_vec("leaf items")?,
            },
            tag => return Err(VantageError::corrupt(format!("unknown node tag {tag}"))),
        };
        nodes.push(node);
    }
    cur.finish("structure section")?;
    Ok((root, nodes))
}

/// Encodes a vp-tree into a complete snapshot byte buffer.
pub fn encode_vp_tree<T: ItemCodec, M: MetricTag>(tree: &VpTree<T, M>) -> Vec<u8> {
    let parts = tree.to_parts();
    assemble(
        IndexKind::VpTree,
        T::TAG,
        M::TAG,
        tree.items().len() as u64,
        &encode_vp_params(&parts.params),
        &encode_items(tree.items()),
        &encode_vp_structure(parts.root, &parts.nodes),
    )
}

/// Decodes (and fully validates) a vp-tree snapshot.
///
/// # Errors
///
/// Typed [`VantageError`]s for version/kind/item/metric mismatches and
/// any form of corruption; never panics on malformed input.
pub fn decode_vp_tree<T: ItemCodec, M: MetricTag>(bytes: &[u8]) -> Result<VpTree<T, M>> {
    let c = parse(bytes)?;
    check_typed::<T, M>(&c, IndexKind::VpTree)?;
    let params = decode_vp_params(c.params)?;
    let items = decode_items::<T>(c.items, c.count)?;
    let (root, nodes) = decode_vp_structure(c.structure)?;
    VpTree::from_parts(
        items,
        M::reconstruct(),
        VpTreeParts {
            params,
            root,
            nodes,
        },
    )
}

// -------------------------------------------------------------- mvp-tree

fn encode_mvp_params(params: &MvpParams) -> Vec<u8> {
    let mut out = Out::new();
    out.usize(params.m);
    out.usize(params.k);
    out.usize(params.p);
    put_selector(&mut out, params.selector);
    out.u8(match params.second {
        SecondVantage::Farthest => 0,
        SecondVantage::Random => 1,
    });
    out.u64(params.seed);
    put_threads(&mut out, params.threads);
    out.0
}

fn decode_mvp_params(payload: &[u8]) -> Result<MvpParams> {
    let mut cur = Cursor::new(payload);
    let params = MvpParams {
        m: cur.usize_scalar("m")?,
        k: cur.usize_scalar("k")?,
        p: cur.usize_scalar("p")?,
        selector: get_selector(&mut cur)?,
        second: match cur.u8("second-vantage tag")? {
            0 => SecondVantage::Farthest,
            1 => SecondVantage::Random,
            tag => {
                return Err(VantageError::corrupt(format!(
                    "unknown second-vantage tag {tag}"
                )))
            }
        },
        seed: cur.u64("seed")?,
        threads: get_threads(&mut cur)?,
    };
    cur.finish("params section")?;
    Ok(params)
}

fn encode_mvp_structure(root: Option<u32>, nodes: &[RawMvpNode]) -> Vec<u8> {
    let mut out = Out::new();
    out.opt_u32(root);
    out.usize(nodes.len());
    for node in nodes {
        match node {
            RawMvpNode::Internal {
                vp1,
                vp2,
                cutoffs1,
                cutoffs2,
                children,
            } => {
                out.u8(0);
                out.u32(*vp1);
                out.u32(*vp2);
                out.f64_vec(cutoffs1);
                out.usize(cutoffs2.len());
                for c in cutoffs2 {
                    out.f64_vec(c);
                }
                out.usize(children.len());
                for &child in children {
                    out.opt_u32(child);
                }
            }
            RawMvpNode::Leaf { vp1, vp2, entries } => {
                out.u8(1);
                out.u32(*vp1);
                out.opt_u32(*vp2);
                out.u32_vec(&entries.ids);
                out.f64_vec(&entries.d1);
                out.f64_vec(&entries.d2);
                out.usize(entries.path_len);
                out.f64_vec(&entries.path);
            }
        }
    }
    out.0
}

fn decode_mvp_structure(payload: &[u8]) -> Result<(Option<u32>, Vec<RawMvpNode>)> {
    let mut cur = Cursor::new(payload);
    let root = cur.opt_u32("root")?;
    let count = cur.u64("node count")?;
    let mut nodes = Vec::new();
    for _ in 0..count {
        let node = match cur.u8("node tag")? {
            0 => {
                let vp1 = cur.u32("vp1")?;
                let vp2 = cur.u32("vp2")?;
                let cutoffs1 = cur.f64_vec("cutoffs1")?;
                let n = cur.len(8, "cutoffs2")?;
                let cutoffs2 = (0..n)
                    .map(|_| cur.f64_vec("cutoffs2 row"))
                    .collect::<Result<Vec<_>>>()?;
                let n = cur.len(1, "children")?;
                let children = (0..n)
                    .map(|_| cur.opt_u32("child id"))
                    .collect::<Result<Vec<_>>>()?;
                RawMvpNode::Internal {
                    vp1,
                    vp2,
                    cutoffs1,
                    cutoffs2,
                    children,
                }
            }
            1 => RawMvpNode::Leaf {
                vp1: cur.u32("leaf vp1")?,
                vp2: cur.opt_u32("leaf vp2")?,
                entries: RawMvpLeafEntries {
                    ids: cur.u32_vec("leaf ids")?,
                    d1: cur.f64_vec("leaf D1")?,
                    d2: cur.f64_vec("leaf D2")?,
                    path_len: cur.usize_scalar("leaf PATH length")?,
                    path: cur.f64_vec("leaf PATH buffer")?,
                },
            },
            tag => return Err(VantageError::corrupt(format!("unknown node tag {tag}"))),
        };
        nodes.push(node);
    }
    cur.finish("structure section")?;
    Ok((root, nodes))
}

/// Encodes an mvp-tree into a complete snapshot byte buffer.
pub fn encode_mvp_tree<T: ItemCodec, M: MetricTag>(tree: &MvpTree<T, M>) -> Vec<u8> {
    let parts = tree.to_parts();
    assemble(
        IndexKind::MvpTree,
        T::TAG,
        M::TAG,
        tree.items().len() as u64,
        &encode_mvp_params(&parts.params),
        &encode_items(tree.items()),
        &encode_mvp_structure(parts.root, &parts.nodes),
    )
}

/// Decodes (and fully validates) an mvp-tree snapshot.
///
/// # Errors
///
/// Typed [`VantageError`]s for version/kind/item/metric mismatches and
/// any form of corruption; never panics on malformed input.
pub fn decode_mvp_tree<T: ItemCodec, M: MetricTag>(bytes: &[u8]) -> Result<MvpTree<T, M>> {
    let c = parse(bytes)?;
    check_typed::<T, M>(&c, IndexKind::MvpTree)?;
    let params = decode_mvp_params(c.params)?;
    let items = decode_items::<T>(c.items, c.count)?;
    let (root, nodes) = decode_mvp_structure(c.structure)?;
    MvpTree::from_parts(
        items,
        M::reconstruct(),
        MvpTreeParts {
            params,
            root,
            nodes,
        },
    )
}

// ---------------------------------------------------------- linear scan

/// Encodes a linear scan into a complete snapshot byte buffer (the
/// params and structure sections are empty — a scan is just its items).
pub fn encode_linear_scan<T: ItemCodec, M: MetricTag>(scan: &LinearScan<T, M>) -> Vec<u8> {
    assemble(
        IndexKind::Linear,
        T::TAG,
        M::TAG,
        scan.items().len() as u64,
        &[],
        &encode_items(scan.items()),
        &[],
    )
}

/// Decodes (and fully validates) a linear-scan snapshot.
///
/// # Errors
///
/// Typed [`VantageError`]s for version/kind/item/metric mismatches and
/// any form of corruption; never panics on malformed input.
pub fn decode_linear_scan<T: ItemCodec, M: MetricTag>(bytes: &[u8]) -> Result<LinearScan<T, M>> {
    let c = parse(bytes)?;
    check_typed::<T, M>(&c, IndexKind::Linear)?;
    if !c.params.is_empty() {
        return Err(VantageError::corrupt(
            "linear-scan snapshot carries a non-empty params section",
        ));
    }
    if !c.structure.is_empty() {
        return Err(VantageError::corrupt(
            "linear-scan snapshot carries a non-empty structure section",
        ));
    }
    let items = decode_items::<T>(c.items, c.count)?;
    Ok(LinearScan::new(items, M::reconstruct()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vantage_core::prelude::*;

    fn points(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| vec![f64::from(i as u32 % 17), f64::from(i as u32 % 5)])
            .collect()
    }

    #[test]
    fn vp_tree_snapshot_round_trips() {
        let tree = VpTree::build(
            points(150),
            Euclidean,
            vantage_vptree::VpTreeParams::with_order(3)
                .leaf_capacity(4)
                .seed(5),
        )
        .unwrap();
        let bytes = encode_vp_tree(&tree);
        let back: VpTree<Vec<f64>, Euclidean> = decode_vp_tree(&bytes).unwrap();
        assert_eq!(back.to_parts(), tree.to_parts());
        assert_eq!(back.items(), tree.items());
        let q = vec![3.0, 2.0];
        assert_eq!(back.range(&q, 2.5), tree.range(&q, 2.5));
    }

    #[test]
    fn mvp_tree_snapshot_round_trips() {
        let tree =
            MvpTree::build(points(200), Euclidean, MvpParams::paper(3, 6, 4).seed(2)).unwrap();
        let bytes = encode_mvp_tree(&tree);
        let back: MvpTree<Vec<f64>, Euclidean> = decode_mvp_tree(&bytes).unwrap();
        assert_eq!(back.to_parts(), tree.to_parts());
        assert_eq!(back.items(), tree.items());
        let q = vec![8.0, 1.0];
        assert_eq!(back.knn(&q, 6), tree.knn(&q, 6));
    }

    #[test]
    fn linear_scan_snapshot_round_trips() {
        let scan = LinearScan::new(
            vec!["carrot".to_string(), "carol".to_string(), "".to_string()],
            Levenshtein,
        );
        let bytes = encode_linear_scan(&scan);
        let back: LinearScan<String, Levenshtein> = decode_linear_scan(&bytes).unwrap();
        assert_eq!(back.items(), scan.items());
        let hits = back.range(&"carrots".to_string(), 2.0);
        assert_eq!(hits, scan.range(&"carrots".to_string(), 2.0));
    }

    #[test]
    fn kind_mismatch_is_typed() {
        let tree = VpTree::build(
            points(30),
            Euclidean,
            vantage_vptree::VpTreeParams::binary(),
        )
        .unwrap();
        let bytes = encode_vp_tree(&tree);
        let err = decode_mvp_tree::<Vec<f64>, Euclidean>(&bytes).unwrap_err();
        assert!(
            matches!(
                err,
                VantageError::SnapshotMismatch {
                    field: "index kind",
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn metric_mismatch_is_typed() {
        let tree = VpTree::build(
            points(30),
            Euclidean,
            vantage_vptree::VpTreeParams::binary(),
        )
        .unwrap();
        let bytes = encode_vp_tree(&tree);
        let err = decode_vp_tree::<Vec<f64>, Manhattan>(&bytes).unwrap_err();
        assert!(
            matches!(
                err,
                VantageError::SnapshotMismatch {
                    field: "metric",
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn item_type_mismatch_is_typed() {
        let scan = LinearScan::new(points(10), Euclidean);
        let bytes = encode_linear_scan(&scan);
        let err = decode_linear_scan::<String, Levenshtein>(&bytes).unwrap_err();
        assert!(
            matches!(
                err,
                VantageError::SnapshotMismatch {
                    field: "item type",
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn counted_wrapper_is_snapshot_transparent() {
        // A tree built with Counted<L2> and one built with plain L2 have
        // the same metric tag; loading either as Counted starts counting
        // from zero.
        let tree = VpTree::build(
            points(60),
            Counted::new(Euclidean),
            vantage_vptree::VpTreeParams::binary().seed(1),
        )
        .unwrap();
        let bytes = encode_vp_tree(&tree);
        let back: VpTree<Vec<f64>, Counted<Euclidean>> = decode_vp_tree(&bytes).unwrap();
        assert_eq!(back.metric().count(), 0);
        let plain: VpTree<Vec<f64>, Euclidean> = decode_vp_tree(&bytes).unwrap();
        assert_eq!(plain.to_parts(), back.to_parts());
    }
}
