//! Low-level wire encoding: little-endian primitives behind a
//! bounds-checked reader.
//!
//! Every read validates against the remaining input **before** touching
//! or allocating anything, so a snapshot that declares a 2⁶⁰-element
//! array fails with a typed error instead of an allocation attempt. This
//! is the layer the fault-injection suite leans on: no input, however
//! mangled, may cause a panic or an unbounded allocation.

use vantage_core::{Result, VantageError};

fn corrupt(detail: impl Into<String>) -> VantageError {
    VantageError::corrupt(detail)
}

/// A bounds-checked little-endian reader over a byte slice.
#[derive(Debug)]
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Starts reading at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current read offset from the start of the buffer.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// The bytes consumed so far (used to checksum a prefix).
    pub fn consumed(&self) -> &'a [u8] {
        &self.buf[..self.pos]
    }

    /// Takes the next `n` bytes.
    ///
    /// # Errors
    ///
    /// [`VantageError::CorruptSnapshot`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if n > self.remaining() {
            return Err(corrupt(format!(
                "truncated while reading {what}: need {n} bytes, {} left",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self, what: &str) -> Result<u16> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &str) -> Result<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a little-endian IEEE-754 `f64`.
    pub fn f64(&mut self, what: &str) -> Result<f64> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Reads a `u64` element count and validates it against the bytes
    /// actually remaining (`count × elem_size ≤ remaining`), returning it
    /// as a `usize`. This is the guard that makes oversized declared
    /// lengths a typed error rather than an allocation bomb.
    pub fn len(&mut self, elem_size: usize, what: &str) -> Result<usize> {
        let raw = self.u64(what)?;
        let n = usize::try_from(raw).map_err(|_| {
            corrupt(format!(
                "{what}: declared count {raw} exceeds address space"
            ))
        })?;
        let need = n
            .checked_mul(elem_size)
            .ok_or_else(|| corrupt(format!("{what}: declared count {n} overflows")))?;
        if need > self.remaining() {
            return Err(corrupt(format!(
                "{what}: declared count {n} needs {need} bytes, {} left",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Reads a `u64`-length-prefixed vector of `f64`s.
    pub fn f64_vec(&mut self, what: &str) -> Result<Vec<f64>> {
        let n = self.len(8, what)?;
        (0..n).map(|_| self.f64(what)).collect()
    }

    /// Reads a `u64`-length-prefixed vector of `u32`s.
    pub fn u32_vec(&mut self, what: &str) -> Result<Vec<u32>> {
        let n = self.len(4, what)?;
        (0..n).map(|_| self.u32(what)).collect()
    }

    /// Reads an `Option<u32>` (one tag byte, then the value when present).
    pub fn opt_u32(&mut self, what: &str) -> Result<Option<u32>> {
        match self.u8(what)? {
            0 => Ok(None),
            1 => Ok(Some(self.u32(what)?)),
            tag => Err(corrupt(format!("{what}: invalid option tag {tag}"))),
        }
    }

    /// Skips zero padding up to the next 8-byte boundary of the
    /// **absolute** position `base + position()`. `base` is the
    /// payload's offset from the start of the snapshot file, so the
    /// boundary is relative to the file — the alignment a memory map of
    /// the whole file actually provides. Non-zero pad bytes are a typed
    /// corruption error (padding is covered by the section CRC, so this
    /// only fires on hand-forged input).
    pub fn align8(&mut self, base: usize, what: &str) -> Result<()> {
        let misalign = (base + self.pos) % 8;
        if misalign == 0 {
            return Ok(());
        }
        let pad = self.take(8 - misalign, what)?;
        if pad.iter().any(|&b| b != 0) {
            return Err(corrupt(format!("{what}: non-zero alignment padding")));
        }
        Ok(())
    }

    /// Reads exactly `n` little-endian `u32`s (no length prefix — the
    /// count comes from an already-validated header field).
    pub fn u32s(&mut self, n: usize, what: &str) -> Result<Vec<u32>> {
        let need = n
            .checked_mul(4)
            .ok_or_else(|| corrupt(format!("{what}: count {n} overflows")))?;
        let bytes = self.take(need, what)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .collect())
    }

    /// Reads exactly `n` little-endian `u64`s (no length prefix).
    pub fn u64s(&mut self, n: usize, what: &str) -> Result<Vec<u64>> {
        let need = n
            .checked_mul(8)
            .ok_or_else(|| corrupt(format!("{what}: count {n} overflows")))?;
        let bytes = self.take(need, what)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|b| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
            .collect())
    }

    /// Reads exactly `n` little-endian `f64`s (no length prefix).
    pub fn f64s(&mut self, n: usize, what: &str) -> Result<Vec<f64>> {
        Ok(self
            .u64s(n, what)?
            .into_iter()
            .map(f64::from_bits)
            .collect())
    }

    /// Reads a `u64` meant to be used as a `usize` (no element-size
    /// multiplier — for scalar parameters like tree order).
    pub fn usize_scalar(&mut self, what: &str) -> Result<usize> {
        let raw = self.u64(what)?;
        usize::try_from(raw)
            .map_err(|_| corrupt(format!("{what}: value {raw} exceeds address space")))
    }

    /// Asserts that the input is fully consumed.
    ///
    /// # Errors
    ///
    /// [`VantageError::CorruptSnapshot`] naming `what` when bytes remain.
    pub fn finish(&self, what: &str) -> Result<()> {
        if self.remaining() != 0 {
            return Err(corrupt(format!(
                "{what}: {} trailing bytes after the last field",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Little-endian writer counterpart of [`Cursor`]; appends to a `Vec`.
#[derive(Debug, Default)]
pub struct Out(pub Vec<u8>);

impl Out {
    /// An empty output buffer.
    pub fn new() -> Self {
        Out(Vec::new())
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.0.push(v);
    }

    /// Appends a `u16`.
    pub fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends a `u64`-length-prefixed `f64` vector.
    pub fn f64_vec(&mut self, v: &[f64]) {
        self.usize(v.len());
        for &x in v {
            self.f64(x);
        }
    }

    /// Appends a `u64`-length-prefixed `u32` vector.
    pub fn u32_vec(&mut self, v: &[u32]) {
        self.usize(v.len());
        for &x in v {
            self.u32(x);
        }
    }

    /// Appends zero bytes until `base + len()` is 8-byte aligned — the
    /// writer counterpart of [`Cursor::align8`]. `base` is the absolute
    /// file offset this buffer will be written at.
    pub fn align8(&mut self, base: usize) {
        // `is_multiple_of` would need Rust 1.87; the workspace MSRV is 1.75.
        #[allow(clippy::manual_is_multiple_of)]
        while (base + self.0.len()) % 8 != 0 {
            self.0.push(0);
        }
    }

    /// Appends raw `u32`s with no length prefix.
    pub fn u32s(&mut self, v: &[u32]) {
        for &x in v {
            self.u32(x);
        }
    }

    /// Appends raw `f64`s with no length prefix.
    pub fn f64s(&mut self, v: &[f64]) {
        for &x in v {
            self.f64(x);
        }
    }

    /// Appends an `Option<u32>` (tag byte + value).
    pub fn opt_u32(&mut self, v: Option<u32>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u32(x);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut out = Out::new();
        out.u8(7);
        out.u16(300);
        out.u32(70_000);
        out.u64(1 << 40);
        out.f64(-2.5);
        out.opt_u32(None);
        out.opt_u32(Some(9));
        out.f64_vec(&[1.0, f64::INFINITY]);
        out.u32_vec(&[3, 4, 5]);
        let mut cur = Cursor::new(&out.0);
        assert_eq!(cur.u8("a").unwrap(), 7);
        assert_eq!(cur.u16("b").unwrap(), 300);
        assert_eq!(cur.u32("c").unwrap(), 70_000);
        assert_eq!(cur.u64("d").unwrap(), 1 << 40);
        assert_eq!(cur.f64("e").unwrap(), -2.5);
        assert_eq!(cur.opt_u32("f").unwrap(), None);
        assert_eq!(cur.opt_u32("g").unwrap(), Some(9));
        assert_eq!(cur.f64_vec("h").unwrap(), vec![1.0, f64::INFINITY]);
        assert_eq!(cur.u32_vec("i").unwrap(), vec![3, 4, 5]);
        cur.finish("test").unwrap();
    }

    #[test]
    fn truncated_reads_error() {
        let mut cur = Cursor::new(&[1, 2]);
        let err = cur.u32("field").unwrap_err();
        assert!(err.to_string().contains("field"), "{err}");
    }

    #[test]
    fn oversized_declared_length_errors_without_allocating() {
        // Declares u64::MAX elements with 8 bytes of actual payload.
        let mut out = Out::new();
        out.u64(u64::MAX);
        out.f64(0.0);
        let mut cur = Cursor::new(&out.0);
        assert!(cur.f64_vec("bomb").is_err());
    }

    #[test]
    fn invalid_option_tag_errors() {
        let mut cur = Cursor::new(&[2, 0, 0, 0, 0]);
        assert!(cur.opt_u32("opt").is_err());
    }

    #[test]
    fn trailing_bytes_detected() {
        let cur = Cursor::new(&[0]);
        assert!(cur.finish("section").is_err());
    }

    #[test]
    fn alignment_padding_round_trips_at_any_base() {
        for base in 0..16usize {
            let mut out = Out::new();
            out.u8(1); // odd prefix so padding is usually needed
            out.align8(base);
            out.f64s(&[1.5, -2.5]);
            out.u32s(&[7, 8, 9]);
            out.align8(base);
            out.f64s(&[0.25]);
            assert_eq!((base + out.0.len()) % 8, 0);
            let mut cur = Cursor::new(&out.0);
            assert_eq!(cur.u8("p").unwrap(), 1);
            cur.align8(base, "pad").unwrap();
            assert_eq!(cur.f64s(2, "f").unwrap(), vec![1.5, -2.5]);
            assert_eq!(cur.u32s(3, "u").unwrap(), vec![7, 8, 9]);
            cur.align8(base, "pad2").unwrap();
            assert_eq!(cur.f64s(1, "g").unwrap(), vec![0.25]);
            cur.finish("aligned").unwrap();
        }
    }

    #[test]
    fn nonzero_alignment_padding_is_corrupt() {
        let mut out = Out::new();
        out.u8(1);
        out.align8(0);
        out.f64(9.0);
        // Stomp a pad byte.
        out.0[3] = 0xAA;
        let mut cur = Cursor::new(&out.0);
        cur.u8("p").unwrap();
        assert!(cur.align8(0, "pad").is_err());
    }

    #[test]
    fn exact_count_reads_bound_check() {
        let mut cur = Cursor::new(&[0u8; 12]);
        assert!(cur.u32s(4, "u").is_err());
        assert_eq!(cur.u32s(3, "u").unwrap(), vec![0, 0, 0]);
        let mut cur = Cursor::new(&[0u8; 8]);
        assert!(cur.f64s(2, "f").is_err());
        assert!(cur.u64s(usize::MAX / 4, "bomb").is_err());
    }
}
