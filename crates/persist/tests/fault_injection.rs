//! Corruption fault injection against the typed decode path.
//!
//! Every case feeds damaged bytes to the full `decode_*` pipeline
//! (container parse → section checksums → structural `from_parts`
//! validation) and demands a **typed** [`VantageError`] — never a panic,
//! never an oversized allocation, never a silently wrong tree. Damage
//! classes: truncation at every prefix length, a flipped bit in every
//! byte, wrong declared version / metric / item type / index kind,
//! fabricated section lengths, trailing garbage and arbitrary fuzz.

use proptest::prelude::*;
use vantage_core::prelude::*;
use vantage_mvptree::{MvpParams, MvpTree};
use vantage_persist as persist;
use vantage_vptree::{VpTree, VpTreeParams};

/// A small vp-tree-over-words snapshot (edit metric).
fn word_snapshot() -> Vec<u8> {
    let words = vantage_datasets::random_words(60, 4, 10, 8);
    let tree = VpTree::build(
        words,
        Levenshtein,
        VpTreeParams::with_order(3).leaf_capacity(4).seed(1),
    )
    .unwrap();
    persist::encode_vp_tree(&tree)
}

/// A small mvp-tree-over-vectors snapshot (l2 metric).
fn vector_snapshot() -> Vec<u8> {
    let points = vantage_datasets::uniform_vectors(80, 4, 9);
    let tree = MvpTree::build(points, Euclidean, MvpParams::paper(3, 8, 3).seed(2)).unwrap();
    persist::encode_mvp_tree(&tree)
}

/// The decode under attack must fail with one of the snapshot error
/// variants; reaching this function at all already proves "no panic".
fn assert_typed(err: VantageError, context: &str) {
    assert!(
        matches!(
            err,
            VantageError::CorruptSnapshot { .. }
                | VantageError::UnsupportedSnapshot { .. }
                | VantageError::SnapshotMismatch { .. }
                | VantageError::InvalidParameter { .. }
        ),
        "{context}: unexpected error variant: {err}"
    );
}

#[test]
fn every_truncation_is_a_typed_error() {
    let good = word_snapshot();
    for len in 0..good.len() {
        let err = persist::decode_vp_tree::<String, Levenshtein>(&good[..len])
            .expect_err("truncated snapshot decoded");
        assert_typed(err, &format!("truncated to {len} bytes"));
        let err = persist::inspect_bytes(&good[..len]).expect_err("truncated snapshot inspected");
        assert_typed(err, &format!("inspect truncated to {len} bytes"));
    }
}

#[test]
fn every_single_bit_flip_is_a_typed_error() {
    // Both checksum layers cover every byte, so no flip may survive.
    let good = vector_snapshot();
    for byte in 0..good.len() {
        for bit in 0..8 {
            let mut bad = good.clone();
            bad[byte] ^= 1 << bit;
            let err = persist::decode_mvp_tree::<Vec<f64>, Euclidean>(&bad)
                .expect_err("bit-flipped snapshot decoded");
            assert_typed(err, &format!("flip byte {byte} bit {bit}"));
        }
    }
}

/// Byte offsets of the fixed-width header fields for an `l2` /
/// `f64-vector` snapshot (see the `format` module docs): magic 0..8,
/// version 8..12, kind 12, item tag 13, metric `u16` length 14..16 plus
/// 2 bytes of `"l2"`, count 18..26, digest 26..34, header CRC 34..38.
const L2_HEADER_CRC_OFFSET: usize = 34;

/// Rewrites a header field and re-seals the header CRC so only the
/// *semantic* check under test can fire.
fn patch_header(bytes: &mut [u8], offset: usize, field: &[u8]) {
    bytes[offset..offset + field.len()].copy_from_slice(field);
    let crc = persist::check::crc32(&bytes[..L2_HEADER_CRC_OFFSET]);
    bytes[L2_HEADER_CRC_OFFSET..L2_HEADER_CRC_OFFSET + 4].copy_from_slice(&crc.to_le_bytes());
}

#[test]
fn future_format_version_is_unsupported_not_corrupt() {
    let mut bytes = vector_snapshot();
    patch_header(&mut bytes, 8, &(persist::FORMAT_VERSION + 7).to_le_bytes());
    let err = persist::decode_mvp_tree::<Vec<f64>, Euclidean>(&bytes).unwrap_err();
    assert!(
        matches!(
            err,
            VantageError::UnsupportedSnapshot {
                found,
                supported,
            } if found == persist::FORMAT_VERSION + 7 && supported == persist::FORMAT_VERSION
        ),
        "{err}"
    );
}

#[test]
fn wrong_index_kind_is_a_mismatch() {
    let bytes = vector_snapshot(); // an mvp-tree
    let err = persist::decode_vp_tree::<Vec<f64>, Euclidean>(&bytes).unwrap_err();
    assert!(
        matches!(err, VantageError::SnapshotMismatch { field, .. } if field == "index kind"),
        "{err}"
    );
}

#[test]
fn wrong_metric_is_a_mismatch() {
    let bytes = vector_snapshot(); // built under l2
    let err = persist::decode_mvp_tree::<Vec<f64>, Manhattan>(&bytes).unwrap_err();
    assert!(
        matches!(err, VantageError::SnapshotMismatch { field, .. } if field == "metric"),
        "{err}"
    );
}

#[test]
fn wrong_item_type_is_a_mismatch() {
    let bytes = word_snapshot(); // utf8-string items
    let err = persist::decode_vp_tree::<Vec<f64>, Levenshtein>(&bytes).unwrap_err();
    assert!(
        matches!(err, VantageError::SnapshotMismatch { field, .. } if field == "item type"),
        "{err}"
    );
}

#[test]
fn unknown_metric_in_header_is_typed() {
    let mut bytes = vector_snapshot();
    // "l2" → "l9": still two bytes, so the layout is untouched.
    patch_header(&mut bytes, 16, b"l9");
    let err = persist::decode_mvp_tree::<Vec<f64>, Euclidean>(&bytes).unwrap_err();
    assert_typed(err, "unknown metric identifier");
}

/// Fabricates a huge declared length for each section in turn. The
/// length fields are outside both CRC layers' *semantic* reach (the
/// parser must bounds-check them itself), and a hostile value must fail
/// fast instead of allocating gigabytes.
#[test]
fn fabricated_section_lengths_fail_without_allocating() {
    let good = vector_snapshot();
    // Walk the section framing: [id u8][len u64][payload][crc u32].
    let mut section_starts = Vec::new();
    let mut pos = 38; // end of the l2 header (incl. its CRC)
    while pos < good.len() {
        section_starts.push(pos);
        let len = u64::from_le_bytes(good[pos + 1..pos + 9].try_into().unwrap()) as usize;
        pos += 1 + 8 + len + 4;
    }
    assert_eq!(section_starts.len(), 3, "params, items, structure");
    for &start in &section_starts {
        for fake in [u64::MAX, u64::MAX / 2, good.len() as u64 + 1] {
            let mut bad = good.clone();
            bad[start + 1..start + 9].copy_from_slice(&fake.to_le_bytes());
            let before = std::time::Instant::now();
            let err = persist::decode_mvp_tree::<Vec<f64>, Euclidean>(&bad)
                .expect_err("fabricated length decoded");
            assert_typed(err, &format!("section at {start} with length {fake}"));
            assert!(
                before.elapsed() < std::time::Duration::from_secs(5),
                "fabricated length stalled the decoder"
            );
        }
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut bytes = word_snapshot();
    bytes.extend_from_slice(b"\0\0\0\0extra");
    let err = persist::decode_vp_tree::<String, Levenshtein>(&bytes).unwrap_err();
    assert_typed(err, "trailing garbage");
}

#[test]
fn empty_input_is_a_typed_error() {
    assert_typed(persist::inspect_bytes(&[]).unwrap_err(), "empty input");
    assert_typed(
        persist::decode_vp_tree::<Vec<f64>, Euclidean>(&[]).unwrap_err(),
        "empty input",
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary bytes never panic any entry point.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = persist::inspect_bytes(&bytes);
        let _ = persist::decode_vp_tree::<Vec<f64>, Euclidean>(&bytes);
        let _ = persist::decode_mvp_tree::<Vec<f64>, Euclidean>(&bytes);
        let _ = persist::decode_linear_scan::<String, Levenshtein>(&bytes);
    }

    /// Random splices of a valid snapshot (overwrite a random window
    /// with random bytes) either decode to the original tree or fail
    /// with a typed error — no panic, no silent half-corruption.
    #[test]
    fn spliced_snapshots_never_panic(
        offset in 0usize..1000,
        splice in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let good = word_snapshot();
        let mut bad = good.clone();
        let start = offset % bad.len();
        let end = (start + splice.len()).min(bad.len());
        bad[start..end].copy_from_slice(&splice[..end - start]);
        match persist::decode_vp_tree::<String, Levenshtein>(&bad) {
            // Splicing identical bytes back in is a legal no-op.
            Ok(_) => prop_assert_eq!(bad, good, "corrupted snapshot decoded"),
            Err(err) => assert_typed(err, "spliced snapshot"),
        }
    }
}
