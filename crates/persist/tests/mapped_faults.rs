//! Fault injection and differential checks for the zero-copy `open_*`
//! path.
//!
//! The mmap loaders validate snapshots *in place*: every integrity
//! decision is made against the raw mapping before a single borrowed
//! slice is handed out. This suite drives the same damage classes as
//! the in-memory `fault_injection` suite — truncation at every prefix
//! length, flipped bits, forged headers, arbitrary garbage — through
//! real files and demands the same **typed** [`VantageError`]s, never a
//! panic, never an out-of-bounds read. A property test then pins the
//! tentpole contract: a borrowed (mapped) tree answers every query
//! family **bit-identically** to the materialized tree it was saved
//! from, across metric families.

use proptest::prelude::*;
use vantage_core::prelude::*;
use vantage_mvptree::{MvpParams, MvpTree};
use vantage_persist as persist;
use vantage_persist::{F64Vectors, Utf8Strings};
use vantage_vptree::{VpTree, VpTreeParams};

/// Writes `bytes` to a unique temp file, runs `f` on the path, removes
/// the file. Fault sweeps go through here so damaged bytes hit the real
/// `open(2)` → mmap → validate pipeline, not an in-memory shortcut.
fn with_file<R>(name: &str, bytes: &[u8], f: impl FnOnce(&std::path::Path) -> R) -> R {
    let path = std::env::temp_dir().join(format!(
        "vantage-mapped-faults-{}-{name}",
        std::process::id()
    ));
    std::fs::write(&path, bytes).unwrap();
    let out = f(&path);
    std::fs::remove_file(&path).ok();
    out
}

fn word_snapshot() -> Vec<u8> {
    let words = vantage_datasets::random_words(60, 4, 10, 8);
    let tree = VpTree::build(
        words,
        Levenshtein,
        VpTreeParams::with_order(3).leaf_capacity(4).seed(1),
    )
    .unwrap();
    persist::encode_vp_tree(&tree)
}

fn vector_snapshot() -> Vec<u8> {
    let points = vantage_datasets::uniform_vectors(80, 4, 9);
    let tree = MvpTree::build(points, Euclidean, MvpParams::paper(3, 8, 3).seed(2)).unwrap();
    persist::encode_mvp_tree(&tree)
}

fn assert_typed(err: VantageError, context: &str) {
    assert!(
        matches!(
            err,
            VantageError::CorruptSnapshot { .. }
                | VantageError::UnsupportedSnapshot { .. }
                | VantageError::SnapshotMismatch { .. }
                | VantageError::InvalidParameter { .. }
        ),
        "{context}: unexpected error variant: {err}"
    );
}

#[test]
fn every_truncated_file_is_a_typed_error() {
    let good = word_snapshot();
    for len in 0..good.len() {
        let err = with_file("trunc-vp", &good[..len], |p| {
            persist::open_vp_tree::<Utf8Strings, Levenshtein>(p).map(|_| ())
        })
        .expect_err("truncated snapshot opened");
        assert_typed(err, &format!("open of file truncated to {len} bytes"));
    }
}

#[test]
fn every_single_bit_flip_in_a_file_is_a_typed_error() {
    // One flip per byte (the bit position rotates) — the in-memory
    // suite already walks all eight bits, this pins that the mapped
    // verifier covers the same span through a real file.
    let good = vector_snapshot();
    for byte in 0..good.len() {
        let mut bad = good.clone();
        bad[byte] ^= 1 << (byte % 8);
        let err = with_file("flip-mvp", &bad, |p| {
            persist::open_mvp_tree::<F64Vectors, Euclidean>(p).map(|_| ())
        })
        .expect_err("bit-flipped snapshot opened");
        assert_typed(err, &format!("flip byte {byte} bit {}", byte % 8));
    }
}

#[test]
fn forged_future_version_is_unsupported_not_corrupt() {
    let mut bytes = vector_snapshot();
    // Header layout for an `l2` snapshot: version at 8..12, header CRC
    // at 34..38 (see the `format` module docs). Re-seal the CRC so only
    // the version check can fire.
    bytes[8..12].copy_from_slice(&(persist::FORMAT_VERSION + 7).to_le_bytes());
    let crc = persist::check::crc32(&bytes[..34]);
    bytes[34..38].copy_from_slice(&crc.to_le_bytes());
    let err = with_file("forged-version", &bytes, |p| {
        persist::open_mvp_tree::<F64Vectors, Euclidean>(p).map(|_| ())
    })
    .unwrap_err();
    assert!(
        matches!(err, VantageError::UnsupportedSnapshot { found, .. }
            if found == persist::FORMAT_VERSION + 7),
        "{err}"
    );
}

#[test]
fn wrong_kind_metric_and_item_are_mismatches() {
    let vectors = vector_snapshot(); // mvp-tree, f64-vector, l2
    let err = with_file("kind", &vectors, |p| {
        persist::open_vp_tree::<F64Vectors, Euclidean>(p).map(|_| ())
    })
    .unwrap_err();
    assert!(
        matches!(
            err,
            VantageError::SnapshotMismatch {
                field: "index kind",
                ..
            }
        ),
        "{err}"
    );
    let err = with_file("metric", &vectors, |p| {
        persist::open_mvp_tree::<F64Vectors, Manhattan>(p).map(|_| ())
    })
    .unwrap_err();
    assert!(
        matches!(
            err,
            VantageError::SnapshotMismatch {
                field: "metric",
                ..
            }
        ),
        "{err}"
    );
    let words = word_snapshot(); // vp-tree, utf8-string, edit
    let err = with_file("item", &words, |p| {
        persist::open_vp_tree::<F64Vectors, Levenshtein>(p).map(|_| ())
    })
    .unwrap_err();
    assert!(
        matches!(
            err,
            VantageError::SnapshotMismatch {
                field: "item type",
                ..
            }
        ),
        "{err}"
    );
}

#[test]
fn missing_file_is_an_io_error() {
    let err = persist::open_vp_tree::<F64Vectors, Euclidean>("/nonexistent/x.vsnap").unwrap_err();
    assert!(matches!(err, VantageError::Io { .. }), "{err}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary file contents never panic the mapped loaders.
    #[test]
    fn arbitrary_files_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        with_file("fuzz", &bytes, |p| {
            let _ = persist::open_vp_tree::<F64Vectors, Euclidean>(p);
            let _ = persist::open_mvp_tree::<F64Vectors, Euclidean>(p);
            let _ = persist::open_vp_tree::<Utf8Strings, Levenshtein>(p);
            let _ = persist::open_mvp_tree::<Utf8Strings, Levenshtein>(p);
        });
    }

    /// Random splices of a valid file either open to a tree that still
    /// answers, or fail typed — mirroring the in-memory splice property.
    #[test]
    fn spliced_files_never_panic(
        offset in 0usize..100_000,
        splice in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let good = word_snapshot();
        let mut bad = good.clone();
        let start = offset % bad.len();
        let end = (start + splice.len()).min(bad.len());
        bad[start..end].copy_from_slice(&splice[..end - start]);
        let unchanged = bad == good;
        with_file("splice", &bad, |p| {
            match persist::open_vp_tree::<Utf8Strings, Levenshtein>(p) {
                Ok(_) => prop_assert!(unchanged, "corrupted snapshot opened"),
                Err(err) => assert_typed(err, "spliced file"),
            }
            Ok(())
        })?;
    }
}

// ---------------------------------------------------------------------
// Differential property: borrowed (mapped) vs materialized bit-identity
// across metric families and query kinds.
// ---------------------------------------------------------------------

/// Runs all four query families against both the materialized tree and
/// the mapped view and demands identical `(id, distance)` lists —
/// same floats to the last bit, same tie-breaks, same order.
macro_rules! assert_vector_identity {
    ($tree:expr, $view:expr, $query:expr) => {{
        let q: &Vec<f64> = $query;
        prop_assert_eq!($tree.range(q, 1.5), $view.range(q.as_slice(), 1.5));
        prop_assert_eq!($tree.knn(q, 7), $view.knn(q.as_slice(), 7));
        prop_assert_eq!(
            $tree.range_beyond(q, 0.8),
            $view.range_beyond(q.as_slice(), 0.8)
        );
        prop_assert_eq!($tree.k_farthest(q, 5), $view.k_farthest(q.as_slice(), 5));
    }};
}

fn vp_identity_for<M>(metric: M, n: usize, seed: u64) -> std::result::Result<(), TestCaseError>
where
    M: Metric<Vec<f64>>
        + BoundedMetric<Vec<f64>>
        + Metric<[f64]>
        + BoundedMetric<[f64]>
        + persist::MetricTag
        + Clone
        + Sync,
{
    let points = vantage_datasets::uniform_vectors(n, 4, seed);
    let queries = vantage_datasets::uniform_vectors(3, 4, seed + 1);
    let tree = VpTree::build(
        points,
        metric,
        VpTreeParams::with_order(2 + (seed % 3) as usize)
            .leaf_capacity(3)
            .seed(seed),
    )
    .unwrap();
    let bytes = persist::encode_vp_tree(&tree);
    with_file("ident-vp", &bytes, |p| {
        let mapped = persist::open_vp_tree::<F64Vectors, M>(p).unwrap();
        let view = mapped.view();
        for q in &queries {
            assert_vector_identity!(tree, view, q);
        }
        Ok(())
    })
}

fn mvp_identity_for<M>(metric: M, n: usize, seed: u64) -> std::result::Result<(), TestCaseError>
where
    M: Metric<Vec<f64>>
        + BoundedMetric<Vec<f64>>
        + Metric<[f64]>
        + BoundedMetric<[f64]>
        + persist::MetricTag
        + Clone
        + Sync,
{
    let points = vantage_datasets::uniform_vectors(n, 4, seed);
    let queries = vantage_datasets::uniform_vectors(3, 4, seed + 1);
    let tree = MvpTree::build(points, metric, MvpParams::paper(2, 5, 3).seed(seed)).unwrap();
    let bytes = persist::encode_mvp_tree(&tree);
    with_file("ident-mvp", &bytes, |p| {
        let mapped = persist::open_mvp_tree::<F64Vectors, M>(p).unwrap();
        let view = mapped.view();
        for q in &queries {
            assert_vector_identity!(tree, view, q);
        }
        Ok(())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Borrowed-vs-materialized bit-identity over every vector metric
    /// family, for both tree structures.
    #[test]
    fn mapped_vector_trees_are_bit_identical(n in 20usize..120, seed in 0u64..1000) {
        vp_identity_for(Euclidean, n, seed)?;
        vp_identity_for(Manhattan, n, seed)?;
        vp_identity_for(Chebyshev, n, seed)?;
        mvp_identity_for(Euclidean, n, seed)?;
        mvp_identity_for(Manhattan, n, seed)?;
        mvp_identity_for(Chebyshev, n, seed)?;
    }

    /// Borrowed-vs-materialized bit-identity on the discrete metric
    /// (edit distance over words), for both tree structures.
    #[test]
    fn mapped_word_trees_are_bit_identical(n in 20usize..100, seed in 0u64..1000) {
        let words = vantage_datasets::random_words(n, 2, 9, seed);
        let queries = vantage_datasets::random_words(3, 2, 9, seed + 1);

        let vp = VpTree::build(
            words.clone(),
            Levenshtein,
            VpTreeParams::with_order(3).leaf_capacity(4).seed(seed),
        )
        .unwrap();
        let bytes = persist::encode_vp_tree(&vp);
        with_file("ident-vp-words", &bytes, |p| {
            let mapped = persist::open_vp_tree::<Utf8Strings, Levenshtein>(p).unwrap();
            let view = mapped.view();
            for q in &queries {
                prop_assert_eq!(vp.range(q, 3.0), view.range(q.as_str(), 3.0));
                prop_assert_eq!(vp.knn(q, 6), view.knn(q.as_str(), 6));
                prop_assert_eq!(vp.range_beyond(q, 5.0), view.range_beyond(q.as_str(), 5.0));
                prop_assert_eq!(vp.k_farthest(q, 4), view.k_farthest(q.as_str(), 4));
            }
            Ok(())
        })?;

        let mvp = MvpTree::build(words, Levenshtein, MvpParams::paper(2, 5, 3).seed(seed)).unwrap();
        let bytes = persist::encode_mvp_tree(&mvp);
        with_file("ident-mvp-words", &bytes, |p| {
            let mapped = persist::open_mvp_tree::<Utf8Strings, Levenshtein>(p).unwrap();
            let view = mapped.view();
            for q in &queries {
                prop_assert_eq!(mvp.range(q, 3.0), view.range(q.as_str(), 3.0));
                prop_assert_eq!(mvp.knn(q, 6), view.knn(q.as_str(), 6));
                prop_assert_eq!(mvp.range_beyond(q, 5.0), view.range_beyond(q.as_str(), 5.0));
                prop_assert_eq!(mvp.k_farthest(q, 4), view.k_farthest(q.as_str(), 4));
            }
            Ok(())
        })?;
    }
}
