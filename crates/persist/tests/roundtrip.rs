//! Build → save → load round trips.
//!
//! The contract under test: a reloaded index answers a seeded query
//! sweep **bit-identically** to the freshly built one — same neighbors
//! in the same order for `range`, `knn` and `k_farthest`, and the same
//! `Counted` distance-computation tally for every single query. The
//! sweep runs over the paper's two item flavors (clustered Euclidean
//! vectors and edit-distance words) and all three snapshot-able
//! structures.

use proptest::prelude::*;
use vantage_core::farthest::FarthestIndex;
use vantage_core::prelude::*;
use vantage_core::MetricIndex;
use vantage_datasets::ClusteredConfig;
use vantage_mvptree::{MvpParams, MvpTree};
use vantage_persist as persist;
use vantage_vptree::{VpTree, VpTreeParams};

fn clustered(clusters: usize, cluster_size: usize, seed: u64) -> Vec<Vec<f64>> {
    vantage_datasets::clustered_vectors(&ClusteredConfig {
        clusters,
        cluster_size,
        dim: 6,
        epsilon: 0.15,
        seed,
    })
    .unwrap()
}

/// One query's full answer sheet: every result list plus the `Counted`
/// tally each phase consumed.
#[derive(Debug, PartialEq)]
struct Answers {
    range: Vec<Neighbor>,
    range_cost: u64,
    knn: Vec<Neighbor>,
    knn_cost: u64,
    farthest: Vec<Neighbor>,
    farthest_cost: u64,
}

/// Runs the seeded sweep against one index, reading the cost of each
/// query off the shared `Counted` probe.
fn sweep<T, M, I>(index: &I, probe: &Counted<M>, queries: &[T], radius: f64) -> Vec<Answers>
where
    I: MetricIndex<T> + FarthestIndex<T>,
{
    probe.reset();
    queries
        .iter()
        .map(|q| {
            let mut range = index.range(q, radius);
            range.sort_unstable();
            let range_cost = probe.take();
            let knn = index.knn(q, 5);
            let knn_cost = probe.take();
            let farthest = index.k_farthest(q, 3);
            let farthest_cost = probe.take();
            Answers {
                range,
                range_cost,
                knn,
                knn_cost,
                farthest,
                farthest_cost,
            }
        })
        .collect()
}

#[test]
fn vp_tree_round_trips_on_clustered_vectors() {
    let items = clustered(8, 40, 11);
    let queries = vantage_datasets::uniform_vectors(12, 6, 99);
    let tree = VpTree::build(
        items,
        Counted::new(Euclidean),
        VpTreeParams::binary().seed(3),
    )
    .unwrap();
    let fresh = sweep(&tree, tree.metric(), &queries, 0.4);

    let bytes = persist::encode_vp_tree(&tree);
    let loaded: VpTree<Vec<f64>, Counted<Euclidean>> = persist::decode_vp_tree(&bytes).unwrap();
    assert_eq!(loaded.to_parts(), tree.to_parts(), "node layout changed");
    assert_eq!(
        loaded.metric().take(),
        0,
        "a load must perform no metric evaluations"
    );
    let again = sweep(&loaded, loaded.metric(), &queries, 0.4);
    assert_eq!(fresh, again);
}

#[test]
fn mvp_tree_round_trips_on_clustered_vectors() {
    let items = clustered(10, 35, 5);
    let queries = vantage_datasets::uniform_vectors(12, 6, 77);
    let tree = MvpTree::build(
        items,
        Counted::new(Euclidean),
        MvpParams::paper(3, 20, 5).seed(9),
    )
    .unwrap();
    let fresh = sweep(&tree, tree.metric(), &queries, 0.4);

    let bytes = persist::encode_mvp_tree(&tree);
    let loaded: MvpTree<Vec<f64>, Counted<Euclidean>> = persist::decode_mvp_tree(&bytes).unwrap();
    assert_eq!(loaded.to_parts(), tree.to_parts(), "node layout changed");
    let again = sweep(&loaded, loaded.metric(), &queries, 0.4);
    assert_eq!(fresh, again);
}

#[test]
fn mvp_tree_round_trips_on_words() {
    let words = vantage_datasets::random_words(300, 4, 12, 21);
    let queries = vantage_datasets::random_words(10, 4, 12, 98);
    let tree = MvpTree::build(
        words,
        Counted::new(Levenshtein),
        MvpParams::paper(2, 12, 3).seed(1),
    )
    .unwrap();
    let fresh = sweep(&tree, tree.metric(), &queries, 4.0);

    let bytes = persist::encode_mvp_tree(&tree);
    let loaded: MvpTree<String, Counted<Levenshtein>> = persist::decode_mvp_tree(&bytes).unwrap();
    let again = sweep(&loaded, loaded.metric(), &queries, 4.0);
    assert_eq!(fresh, again);
}

#[test]
fn vp_tree_round_trips_on_words_through_a_file() {
    let words = vantage_datasets::random_words(250, 4, 12, 33);
    let queries = vantage_datasets::random_words(8, 4, 12, 44);
    let tree = VpTree::build(
        words,
        Counted::new(Levenshtein),
        VpTreeParams::with_order(3).leaf_capacity(6).seed(2),
    )
    .unwrap();
    let fresh = sweep(&tree, tree.metric(), &queries, 3.0);

    let mut path = std::env::temp_dir();
    path.push(format!("vantage-roundtrip-{}.vsnap", std::process::id()));
    let written = persist::save_vp_tree(&tree, &path).unwrap();
    assert_eq!(persist::inspect(&path).unwrap().bytes, written);
    let loaded: VpTree<String, Counted<Levenshtein>> = persist::load_vp_tree(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let again = sweep(&loaded, loaded.metric(), &queries, 3.0);
    assert_eq!(fresh, again);
}

#[test]
fn linear_scan_round_trips_on_both_item_flavors() {
    let vectors = clustered(5, 30, 17);
    let vqueries = vantage_datasets::uniform_vectors(6, 6, 55);
    let scan = LinearScan::new(vectors, Counted::new(Euclidean));
    let fresh = sweep(&scan, scan.metric(), &vqueries, 0.5);
    let loaded: LinearScan<Vec<f64>, Counted<Euclidean>> =
        persist::decode_linear_scan(&persist::encode_linear_scan(&scan)).unwrap();
    assert_eq!(fresh, sweep(&loaded, loaded.metric(), &vqueries, 0.5));

    let words = vantage_datasets::random_words(120, 4, 12, 3);
    let wqueries = vantage_datasets::random_words(6, 4, 12, 66);
    let scan = LinearScan::new(words, Counted::new(Levenshtein));
    let fresh = sweep(&scan, scan.metric(), &wqueries, 3.0);
    let loaded: LinearScan<String, Counted<Levenshtein>> =
        persist::decode_linear_scan(&persist::encode_linear_scan(&scan)).unwrap();
    assert_eq!(fresh, sweep(&loaded, loaded.metric(), &wqueries, 3.0));
}

#[test]
fn empty_and_single_item_indexes_round_trip() {
    let empty = VpTree::build(Vec::<Vec<f64>>::new(), Euclidean, VpTreeParams::binary()).unwrap();
    let loaded: VpTree<Vec<f64>, Euclidean> =
        persist::decode_vp_tree(&persist::encode_vp_tree(&empty)).unwrap();
    assert!(loaded.range(&vec![0.0], 10.0).is_empty());

    let one = MvpTree::build(vec![vec![1.0, 2.0]], Euclidean, MvpParams::default()).unwrap();
    let loaded: MvpTree<Vec<f64>, Euclidean> =
        persist::decode_mvp_tree(&persist::encode_mvp_tree(&one)).unwrap();
    assert_eq!(loaded.knn(&vec![0.0, 0.0], 1).len(), 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random datasets, orders and leaf capacities: every tree that
    /// builds must survive the encode/decode round trip with identical
    /// answers and identical per-query costs.
    #[test]
    fn random_vp_trees_round_trip(
        n in 1usize..120,
        order in 2usize..4,
        leaf in 1usize..9,
        seed in 0u64..1000,
    ) {
        let items = vantage_datasets::uniform_vectors(n, 4, seed);
        let queries = vantage_datasets::uniform_vectors(4, 4, seed ^ 0xABCD);
        let tree = VpTree::build(
            items,
            Counted::new(Euclidean),
            VpTreeParams::with_order(order).leaf_capacity(leaf).seed(seed),
        )
        .unwrap();
        let fresh = sweep(&tree, tree.metric(), &queries, 0.3);
        let loaded: VpTree<Vec<f64>, Counted<Euclidean>> =
            persist::decode_vp_tree(&persist::encode_vp_tree(&tree)).unwrap();
        prop_assert_eq!(fresh, sweep(&loaded, loaded.metric(), &queries, 0.3));
    }

    #[test]
    fn random_mvp_trees_round_trip(
        n in 1usize..120,
        m in 2usize..4,
        k in 4usize..16,
        p in 1usize..5,
        seed in 0u64..1000,
    ) {
        let items = vantage_datasets::uniform_vectors(n, 4, seed);
        let queries = vantage_datasets::uniform_vectors(4, 4, seed ^ 0x1234);
        let tree = MvpTree::build(
            items,
            Counted::new(Euclidean),
            MvpParams::paper(m, k, p).seed(seed),
        )
        .unwrap();
        let fresh = sweep(&tree, tree.metric(), &queries, 0.3);
        let loaded: MvpTree<Vec<f64>, Counted<Euclidean>> =
            persist::decode_mvp_tree(&persist::encode_mvp_tree(&tree)).unwrap();
        prop_assert_eq!(fresh, sweep(&loaded, loaded.metric(), &queries, 0.3));
    }
}
