//! Sharded atomic counters.
//!
//! A single `AtomicU64` is already lock-free, but under heavy concurrent
//! traffic every increment bounces the same cache line between cores.
//! [`ShardedCounter`] spreads increments over [`SHARDS`] cache-line-padded
//! slots keyed by a cheap per-thread id, so writers on different cores
//! usually touch different lines; reads sum the shards (counts are
//! eventually consistent between shards but each shard is exact, so the
//! sum observed after all writers finish is exact).

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of counter shards. Power of two so the thread id maps with a
/// mask.
pub const SHARDS: usize = 16;

/// One cache line per shard: 64-byte alignment keeps two shards from
/// sharing a line (the padding is the point, not the alignment of the
/// atomic itself).
#[derive(Debug, Default)]
#[repr(align(64))]
struct PaddedU64(AtomicU64);

static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// A cheap, stable per-thread shard index in `0..SHARDS`.
#[inline]
fn shard_index() -> usize {
    THREAD_SLOT.with(|slot| {
        let mut s = slot.get();
        if s == usize::MAX {
            s = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            slot.set(s);
        }
        s & (SHARDS - 1)
    })
}

/// A monotonically increasing counter sharded across cache lines.
#[derive(Debug, Default)]
pub struct ShardedCounter {
    shards: [PaddedU64; SHARDS],
}

impl ShardedCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        ShardedCounter::default()
    }

    /// Adds `n` to the calling thread's shard. Lock-free.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one. Lock-free.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Sums all shards. Exact once concurrent writers have finished;
    /// a consistent lower bound while they are still running.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn sequential_counting_is_exact() {
        let c = ShardedCounter::new();
        for _ in 0..100 {
            c.incr();
        }
        c.add(11);
        assert_eq!(c.get(), 111);
    }

    #[test]
    fn concurrent_counting_is_exact() {
        let c = ShardedCounter::new();
        thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..10_000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }
}
