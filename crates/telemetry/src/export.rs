//! Snapshot exporters: JSON (lossless, round-trips) and Prometheus text.
//!
//! Both exporters are pure functions of a [`RegistrySnapshot`] — they
//! never touch live atomics, so an export is internally consistent even
//! while traffic continues.
//!
//! * **JSON** ([`to_json`] / [`from_json`]) is the lossless interchange
//!   format: sparse histogram buckets and all summary fields survive a
//!   round-trip bit-for-bit, so snapshots can be dumped by a serving
//!   process, merged offline, and re-rendered (`vantage stats --metrics`).
//! * **Prometheus** ([`to_prometheus`]) renders the text exposition
//!   format: per `{index, op}` counters, latency/distance **histograms**
//!   (cumulative `_bucket{le=…}` series over the occupied log-linear
//!   buckets, closed by `le="+Inf"`, plus `_sum`/`_count`), and recall
//!   summaries. Only occupied buckets are emitted, so the exposition
//!   stays proportional to the data actually observed.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::histogram::HistogramSnapshot;
use crate::json::Json;
use crate::registry::{OpKind, RECALL_SCALE};
use crate::snapshot::{GaugeSnapshot, IndexSnapshot, OpSnapshot, RegistrySnapshot};

/// Format version stamped into JSON exports.
pub const FORMAT_VERSION: u64 = 1;

/// Formats an integer with thousands separators (`1234567` → `1,234,567`).
pub fn thousands(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, c) in digits.chars().enumerate() {
        // `is_multiple_of` would need Rust 1.87; the workspace MSRV is 1.75.
        #[allow(clippy::manual_is_multiple_of)]
        if i > 0 && (digits.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    out
}

fn histogram_to_json(h: &HistogramSnapshot) -> Json {
    let mut obj = BTreeMap::new();
    obj.insert("count".into(), Json::Num(h.count as f64));
    obj.insert("sum".into(), Json::Num(h.sum as f64));
    obj.insert("min".into(), Json::Num(h.min as f64));
    obj.insert("max".into(), Json::Num(h.max as f64));
    obj.insert(
        "buckets".into(),
        Json::Arr(
            h.buckets
                .iter()
                .map(|&(i, c)| Json::Arr(vec![Json::Num(f64::from(i)), Json::Num(c as f64)]))
                .collect(),
        ),
    );
    Json::Obj(obj)
}

fn histogram_from_json(v: &Json) -> Result<HistogramSnapshot, String> {
    let field = |name: &str| {
        v.get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("histogram missing `{name}`"))
    };
    let mut buckets = Vec::new();
    for pair in v
        .get("buckets")
        .and_then(Json::as_array)
        .ok_or("histogram missing `buckets`")?
    {
        let pair = pair
            .as_array()
            .ok_or("bucket entry must be [index, count]")?;
        let (index, count) = match pair {
            [i, c] => (
                i.as_u64().ok_or("bucket index must be an integer")?,
                c.as_u64().ok_or("bucket count must be an integer")?,
            ),
            _ => return Err("bucket entry must be [index, count]".into()),
        };
        buckets.push((
            u32::try_from(index).map_err(|_| "bucket index overflow")?,
            count,
        ));
    }
    Ok(HistogramSnapshot {
        count: field("count")?,
        sum: field("sum")?,
        min: field("min")?,
        max: field("max")?,
        buckets,
    })
}

/// Serializes a snapshot to pretty-printed JSON.
pub fn to_json(snapshot: &RegistrySnapshot) -> String {
    snapshot_to_json(snapshot).render_pretty()
}

/// Serializes a snapshot to compact single-line JSON — the form the
/// serving wire protocol's `STATS` command replies with (one reply, one
/// line).
pub fn to_json_compact(snapshot: &RegistrySnapshot) -> String {
    snapshot_to_json(snapshot).render()
}

fn snapshot_to_json(snapshot: &RegistrySnapshot) -> Json {
    let indexes: Vec<Json> = snapshot
        .indexes
        .iter()
        .map(|index| {
            let ops: Vec<Json> = index
                .ops
                .iter()
                .map(|op| {
                    let mut obj = BTreeMap::new();
                    obj.insert("op".into(), Json::Str(op.kind.name().into()));
                    obj.insert("count".into(), Json::Num(op.ops as f64));
                    obj.insert("latency_ns".into(), histogram_to_json(&op.latency_ns));
                    obj.insert("distances".into(), histogram_to_json(&op.distances));
                    obj.insert("abandoned".into(), Json::Num(op.abandoned as f64));
                    obj.insert("abandoned_work".into(), Json::Num(op.abandoned_work));
                    // Budget fields are written only when budgeted
                    // queries actually ran, so exports that predate
                    // budgeted search stay byte-identical.
                    if op.budget_exhausted > 0 {
                        obj.insert(
                            "budget_exhausted".into(),
                            Json::Num(op.budget_exhausted as f64),
                        );
                    }
                    if op.estimated_recall_bp.count > 0 {
                        obj.insert(
                            "estimated_recall_bp".into(),
                            histogram_to_json(&op.estimated_recall_bp),
                        );
                    }
                    Json::Obj(obj)
                })
                .collect();
            let mut obj = BTreeMap::new();
            obj.insert("label".into(), Json::Str(index.label.clone()));
            obj.insert("ops".into(), Json::Arr(ops));
            Json::Obj(obj)
        })
        .collect();
    let mut root = BTreeMap::new();
    root.insert("version".into(), Json::Num(FORMAT_VERSION as f64));
    root.insert("indexes".into(), Json::Arr(indexes));
    // Written only when present, so gauge-free snapshots (all exports
    // before the serving layer existed) stay byte-identical.
    if !snapshot.gauges.is_empty() {
        let gauges: Vec<Json> = snapshot
            .gauges
            .iter()
            .map(|g| {
                let mut obj = BTreeMap::new();
                obj.insert("name".into(), Json::Str(g.name.clone()));
                obj.insert("value".into(), Json::Num(g.value as f64));
                Json::Obj(obj)
            })
            .collect();
        root.insert("gauges".into(), Json::Arr(gauges));
    }
    Json::Obj(root)
}

/// Parses a snapshot back from [`to_json`] output.
///
/// # Errors
///
/// Returns a description of the first structural problem (unknown
/// version, missing field, malformed histogram).
pub fn from_json(text: &str) -> Result<RegistrySnapshot, String> {
    let root = Json::parse(text)?;
    let version = root
        .get("version")
        .and_then(Json::as_u64)
        .ok_or("missing `version`")?;
    if version != FORMAT_VERSION {
        return Err(format!("unsupported snapshot version {version}"));
    }
    let mut indexes = Vec::new();
    for index in root
        .get("indexes")
        .and_then(Json::as_array)
        .ok_or("missing `indexes`")?
    {
        let label = index
            .get("label")
            .and_then(Json::as_str)
            .ok_or("index missing `label`")?
            .to_string();
        let mut ops = Vec::new();
        for op in index
            .get("ops")
            .and_then(Json::as_array)
            .ok_or("index missing `ops`")?
        {
            let kind_name = op
                .get("op")
                .and_then(Json::as_str)
                .ok_or("op missing `op`")?;
            let kind =
                OpKind::parse(kind_name).ok_or_else(|| format!("unknown op kind `{kind_name}`"))?;
            ops.push(OpSnapshot {
                kind,
                ops: op
                    .get("count")
                    .and_then(Json::as_u64)
                    .ok_or("op missing `count`")?,
                latency_ns: histogram_from_json(
                    op.get("latency_ns").ok_or("op missing `latency_ns`")?,
                )?,
                distances: histogram_from_json(
                    op.get("distances").ok_or("op missing `distances`")?,
                )?,
                abandoned: op
                    .get("abandoned")
                    .and_then(Json::as_u64)
                    .ok_or("op missing `abandoned`")?,
                abandoned_work: op
                    .get("abandoned_work")
                    .and_then(Json::as_f64)
                    .ok_or("op missing `abandoned_work`")?,
                // Absent in exports that predate budgeted search.
                budget_exhausted: op
                    .get("budget_exhausted")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
                estimated_recall_bp: match op.get("estimated_recall_bp") {
                    Some(h) => histogram_from_json(h)?,
                    None => HistogramSnapshot::default(),
                },
            });
        }
        indexes.push(IndexSnapshot { label, ops });
    }
    let mut gauges = Vec::new();
    if let Some(entries) = root.get("gauges").and_then(Json::as_array) {
        for gauge in entries {
            let name = gauge
                .get("name")
                .and_then(Json::as_str)
                .ok_or("gauge missing `name`")?
                .to_string();
            let value = gauge
                .get("value")
                .and_then(Json::as_f64)
                .ok_or("gauge missing `value`")? as i64;
            gauges.push(GaugeSnapshot { name, value });
        }
    }
    Ok(RegistrySnapshot { indexes, gauges })
}

const QUANTILES: [(f64, &str); 3] = [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")];

/// Writes one histogram time series: cumulative `_bucket` samples at
/// the inclusive upper edge of every *occupied* log-linear bucket,
/// the mandatory `le="+Inf"` closing bucket, then `_sum` and `_count`.
fn write_prometheus_histogram(out: &mut String, metric: &str, labels: &str, h: &HistogramSnapshot) {
    let mut cumulative = 0u64;
    for &(index, count) in &h.buckets {
        cumulative += count;
        let _ = writeln!(
            out,
            "{metric}_bucket{{{labels},le=\"{}\"}} {cumulative}",
            crate::histogram::bucket_upper(index as usize)
        );
    }
    let _ = writeln!(out, "{metric}_bucket{{{labels},le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{metric}_sum{{{labels}}} {}", h.sum);
    let _ = writeln!(out, "{metric}_count{{{labels}}} {}", h.count);
}

/// Renders the snapshot in the Prometheus text exposition format.
///
/// Conformance notes: every metric carries `# HELP`/`# TYPE` lines
/// (help text with backslash/newline escaping), label values escape
/// `\`, `"` and newlines, histogram `_bucket` counts are cumulative
/// and closed by `le="+Inf"`, and the exposition ends with a trailing
/// newline — the shape the `prometheus_golden` test pins.
pub fn to_prometheus(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    let type_line = |out: &mut String, name: &str, kind: &str, help: &str| {
        let _ = writeln!(out, "# HELP {name} {}", escape_help(help));
        let _ = writeln!(out, "# TYPE {name} {kind}");
    };

    type_line(
        &mut out,
        "vantage_ops_total",
        "counter",
        "Completed index operations.",
    );
    for index in &snapshot.indexes {
        for op in &index.ops {
            let _ = writeln!(
                out,
                "vantage_ops_total{{index=\"{}\",op=\"{}\"}} {}",
                escape_label(&index.label),
                op.kind.name(),
                op.ops
            );
        }
    }

    for (metric, unit_help, pick) in [
        (
            "vantage_op_latency_ns",
            "Wall-clock latency per operation, nanoseconds.",
            (|op: &OpSnapshot| &op.latency_ns) as fn(&OpSnapshot) -> &HistogramSnapshot,
        ),
        (
            "vantage_op_distances",
            "Metric distance computations per operation.",
            |op: &OpSnapshot| &op.distances,
        ),
    ] {
        type_line(&mut out, metric, "histogram", unit_help);
        for index in &snapshot.indexes {
            for op in &index.ops {
                let labels = format!(
                    "index=\"{}\",op=\"{}\"",
                    escape_label(&index.label),
                    op.kind.name()
                );
                write_prometheus_histogram(&mut out, metric, &labels, pick(op));
            }
        }
    }

    if !snapshot.gauges.is_empty() {
        type_line(
            &mut out,
            "vantage_gauge",
            "gauge",
            "Instantaneous serving-state readings (generation, in-flight queries).",
        );
        for gauge in &snapshot.gauges {
            let _ = writeln!(
                out,
                "vantage_gauge{{name=\"{}\"}} {}",
                escape_label(&gauge.name),
                gauge.value
            );
        }
    }

    type_line(
        &mut out,
        "vantage_abandoned_total",
        "counter",
        "Distance evaluations abandoned early by the bounded kernels.",
    );
    for index in &snapshot.indexes {
        for op in &index.ops {
            let _ = writeln!(
                out,
                "vantage_abandoned_total{{index=\"{}\",op=\"{}\"}} {}",
                escape_label(&index.label),
                op.kind.name(),
                op.abandoned
            );
        }
    }

    // Budget telemetry appears only once budgeted queries have run, so
    // scrapes of budget-free deployments look exactly like before.
    let budgeted: Vec<(&IndexSnapshot, &OpSnapshot)> = snapshot
        .indexes
        .iter()
        .flat_map(|index| index.ops.iter().map(move |op| (index, op)))
        .filter(|(_, op)| op.estimated_recall_bp.count > 0 || op.budget_exhausted > 0)
        .collect();
    if !budgeted.is_empty() {
        type_line(
            &mut out,
            "vantage_budget_exhausted_total",
            "counter",
            "Budgeted queries whose distance-computation budget ran out.",
        );
        for (index, op) in &budgeted {
            let _ = writeln!(
                out,
                "vantage_budget_exhausted_total{{index=\"{}\",op=\"{}\"}} {}",
                escape_label(&index.label),
                op.kind.name(),
                op.budget_exhausted
            );
        }
        type_line(
            &mut out,
            "vantage_estimated_recall",
            "summary",
            "Self-reported recall estimates of budgeted queries, as fractions.",
        );
        for (index, op) in &budgeted {
            let h = &op.estimated_recall_bp;
            let labels = format!(
                "index=\"{}\",op=\"{}\"",
                escape_label(&index.label),
                op.kind.name()
            );
            for (q, q_label) in QUANTILES {
                if let Some(v) = h.percentile(q) {
                    let _ = writeln!(
                        out,
                        "vantage_estimated_recall{{{labels},quantile=\"{q_label}\"}} {}",
                        v as f64 / RECALL_SCALE
                    );
                }
            }
            let _ = writeln!(
                out,
                "vantage_estimated_recall_sum{{{labels}}} {}",
                h.sum as f64 / RECALL_SCALE
            );
            let _ = writeln!(
                out,
                "vantage_estimated_recall_count{{{labels}}} {}",
                h.count
            );
        }
    }
    out
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{CostDelta, MetricsRegistry};
    use std::time::Duration;

    fn sample() -> RegistrySnapshot {
        let registry = MetricsRegistry::new();
        let mvp = registry.index("mvp");
        for i in 0..50u64 {
            mvp.record(
                OpKind::Range,
                Duration::from_micros(80 + 3 * i),
                CostDelta {
                    computations: 120 + i,
                    abandoned: i % 2,
                    abandoned_work: 0.25,
                },
            );
        }
        mvp.record(
            OpKind::Build,
            Duration::from_millis(12),
            CostDelta {
                computations: 40_000,
                ..CostDelta::default()
            },
        );
        registry.index("vp").record(
            OpKind::Knn,
            Duration::from_micros(500),
            CostDelta::default(),
        );
        registry.snapshot()
    }

    #[test]
    fn json_round_trips_exactly() {
        let snapshot = sample();
        let text = to_json(&snapshot);
        let parsed = from_json(&text).unwrap();
        assert_eq!(parsed, snapshot);
        // And a second generation is byte-stable.
        assert_eq!(to_json(&parsed), text);
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(from_json("{}").is_err());
        assert!(from_json("{\"version\": 99, \"indexes\": []}").is_err());
        assert!(from_json("not json").is_err());
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let empty = RegistrySnapshot::default();
        assert_eq!(from_json(&to_json(&empty)).unwrap(), empty);
    }

    #[test]
    fn prometheus_has_counters_and_histograms() {
        let text = to_prometheus(&sample());
        assert!(text.contains("# TYPE vantage_ops_total counter"), "{text}");
        assert!(
            text.contains("vantage_ops_total{index=\"mvp\",op=\"range\"} 50"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE vantage_op_latency_ns histogram"),
            "{text}"
        );
        assert!(
            text.contains(
                "vantage_op_latency_ns_bucket{index=\"mvp\",op=\"range\",le=\"+Inf\"} 50"
            ),
            "{text}"
        );
        assert!(
            text.contains("vantage_op_distances_count{index=\"vp\",op=\"knn\"} 1"),
            "{text}"
        );
        assert!(text.contains("vantage_abandoned_total"), "{text}");
        assert!(text.ends_with('\n'), "missing trailing newline");
    }

    #[test]
    fn prometheus_buckets_are_cumulative_and_closed() {
        let text = to_prometheus(&sample());
        // The 50 range latencies spread over several log-linear buckets;
        // the emitted bucket counts must be non-decreasing and the +Inf
        // bucket must equal _count.
        let mut last = 0u64;
        let mut saw_inf = false;
        for line in text.lines() {
            let Some(rest) =
                line.strip_prefix("vantage_op_latency_ns_bucket{index=\"mvp\",op=\"range\",le=\"")
            else {
                continue;
            };
            let (le, count) = rest.split_once("\"} ").unwrap();
            let count: u64 = count.parse().unwrap();
            assert!(count >= last, "bucket counts must be cumulative: {line}");
            last = count;
            if le == "+Inf" {
                saw_inf = true;
                assert_eq!(count, 50, "+Inf bucket must equal _count");
            }
        }
        assert!(saw_inf, "missing le=\"+Inf\" bucket:\n{text}");
    }

    #[test]
    fn budget_fields_round_trip_and_stay_absent_without_traffic() {
        // A budget-free snapshot must serialize without the new keys, so
        // exports from before budgeted search re-render byte-identically.
        let plain = to_json(&sample());
        assert!(!plain.contains("budget_exhausted"), "{plain}");
        assert!(!plain.contains("estimated_recall_bp"), "{plain}");

        let registry = MetricsRegistry::new();
        let metrics = registry.index("vp");
        for (exhausted, recall) in [(true, 0.4), (false, 1.0), (true, 0.9)] {
            metrics.record_budgeted(
                OpKind::Knn,
                Duration::from_micros(25),
                CostDelta {
                    computations: 50,
                    ..CostDelta::default()
                },
                exhausted,
                recall,
            );
        }
        let snapshot = registry.snapshot();
        let text = to_json(&snapshot);
        assert!(text.contains("budget_exhausted"), "{text}");
        let parsed = from_json(&text).unwrap();
        assert_eq!(parsed, snapshot);
        assert_eq!(to_json(&parsed), text);

        let prom = to_prometheus(&snapshot);
        assert!(
            prom.contains("vantage_budget_exhausted_total{index=\"vp\",op=\"knn\"} 2"),
            "{prom}"
        );
        assert!(
            prom.contains("vantage_estimated_recall_count{index=\"vp\",op=\"knn\"} 3"),
            "{prom}"
        );
        // And budget-free scrapes carry no budget metrics at all.
        assert!(!to_prometheus(&sample()).contains("vantage_estimated_recall"));
    }

    #[test]
    fn prometheus_escapes_labels() {
        let registry = MetricsRegistry::new();
        registry.index("odd\"label\\x\nnl").record(
            OpKind::Range,
            Duration::from_nanos(1),
            CostDelta::default(),
        );
        let text = to_prometheus(&registry.snapshot());
        assert!(text.contains("index=\"odd\\\"label\\\\x\\nnl\""), "{text}");
        // A raw newline inside a label value would split the sample line.
        for line in text.lines() {
            assert!(
                !line.starts_with("nl\""),
                "label newline leaked into the exposition: {line}"
            );
        }
    }

    #[test]
    fn gauges_round_trip_and_render() {
        let registry = MetricsRegistry::new();
        registry.gauge("serve/generation").set(3);
        registry.gauge("serve/in_flight").set(12);
        registry
            .index("mvp")
            .record(OpKind::Knn, Duration::from_micros(10), CostDelta::default());
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.gauge("serve/generation"), Some(3));

        let text = to_json(&snapshot);
        let parsed = from_json(&text).unwrap();
        assert_eq!(parsed, snapshot);
        assert_eq!(to_json(&parsed), text);
        // The compact form is one line and parses back identically.
        let compact = to_json_compact(&snapshot);
        assert!(!compact.contains('\n'), "{compact}");
        assert_eq!(from_json(&compact).unwrap(), snapshot);

        let prom = to_prometheus(&snapshot);
        assert!(
            prom.contains("vantage_gauge{name=\"serve/in_flight\"} 12"),
            "{prom}"
        );
    }

    #[test]
    fn thousands_separators() {
        assert_eq!(thousands(0), "0");
        assert_eq!(thousands(999), "999");
        assert_eq!(thousands(1_000), "1,000");
        assert_eq!(thousands(1_234_567), "1,234,567");
    }
}
