//! Performance-regression gate.
//!
//! CI runs a quick-scale benchmark, extracts a flat `metric name → value`
//! map, and compares it against a committed baseline with
//! [`compare`]. A fresh value more than `tolerance` *above* its baseline
//! is a regression (all gated metrics are costs: median latency, median
//! distance count — lower is better). Missing metrics fail too, so a
//! silently dropped benchmark cannot pass the gate.
//!
//! Distance-computation metrics are deterministic, so they get a strict
//! tolerance; wall-clock metrics are noisy on shared runners, so callers
//! pass a looser `wall_tolerance` for metric names ending in `_ns`.

use std::collections::BTreeMap;

/// The outcome of one metric's baseline comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricCheck {
    /// Metric name (e.g. `"mvp/range/distances_p50"`).
    pub name: String,
    /// Committed baseline value.
    pub baseline: f64,
    /// Freshly measured value, `None` when the fresh run did not report
    /// the metric at all.
    pub fresh: Option<f64>,
    /// Fractional change from baseline (`0.15` = 15% worse); `0.0` when
    /// the baseline is zero and the fresh value is too.
    pub change: f64,
    /// Tolerance this metric was checked against.
    pub tolerance: f64,
    /// Whether the metric regressed (or went missing).
    pub failed: bool,
}

/// A full gate comparison: every baseline metric, checked.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// Per-metric outcomes, in baseline (sorted-name) order.
    pub checks: Vec<MetricCheck>,
}

impl GateReport {
    /// Whether any metric regressed or went missing.
    pub fn failed(&self) -> bool {
        self.checks.iter().any(|c| c.failed)
    }

    /// The failing checks only.
    pub fn failures(&self) -> Vec<&MetricCheck> {
        self.checks.iter().filter(|c| c.failed).collect()
    }

    /// Renders a human-readable table: one line per metric with baseline,
    /// fresh value, percent change, and a PASS/FAIL verdict.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<44} {:>14} {:>14} {:>9}  verdict",
            "metric", "baseline", "fresh", "change"
        );
        let _ = writeln!(out, "{}", "-".repeat(96));
        for c in &self.checks {
            let fresh = match c.fresh {
                Some(v) => format!("{v:.1}"),
                None => "missing".to_string(),
            };
            let _ = writeln!(
                out,
                "{:<44} {:>14.1} {:>14} {:>+8.1}%  {}",
                c.name,
                c.baseline,
                fresh,
                c.change * 100.0,
                if c.failed {
                    format!("FAIL (>{:.0}%)", c.tolerance * 100.0)
                } else {
                    "ok".to_string()
                }
            );
        }
        out
    }
}

/// Compares fresh metrics against a committed baseline.
///
/// Every metric present in `baseline` must be present in `fresh` and at
/// most `tolerance` (fractionally) above its baseline value. Metric names
/// ending in `_ns` are wall-clock readings and are checked against
/// `wall_tolerance` instead. Metrics only present in `fresh` are ignored
/// (new benchmarks don't fail the gate until their baseline is committed).
pub fn compare(
    baseline: &BTreeMap<String, f64>,
    fresh: &BTreeMap<String, f64>,
    tolerance: f64,
    wall_tolerance: f64,
) -> GateReport {
    let checks = baseline
        .iter()
        .map(|(name, &base)| {
            let tol = if name.ends_with("_ns") {
                wall_tolerance
            } else {
                tolerance
            };
            match fresh.get(name) {
                Some(&value) => {
                    let change = if base > 0.0 {
                        (value - base) / base
                    } else if value > 0.0 {
                        f64::INFINITY
                    } else {
                        0.0
                    };
                    MetricCheck {
                        name: name.clone(),
                        baseline: base,
                        fresh: Some(value),
                        change,
                        tolerance: tol,
                        failed: change > tol,
                    }
                }
                None => MetricCheck {
                    name: name.clone(),
                    baseline: base,
                    fresh: None,
                    change: f64::INFINITY,
                    tolerance: tol,
                    failed: true,
                },
            }
        })
        .collect();
    GateReport { checks }
}

/// Serializes a metric map as the committed `BENCH_*.json` baseline
/// format (a flat sorted object, diff-friendly).
pub fn metrics_to_json(metrics: &BTreeMap<String, f64>) -> String {
    use crate::json::Json;
    Json::Obj(
        metrics
            .iter()
            .map(|(k, &v)| (k.clone(), Json::Num(v)))
            .collect(),
    )
    .render_pretty()
}

/// Parses a `BENCH_*.json` baseline back into a metric map.
///
/// # Errors
///
/// Returns a description of the first structural problem.
pub fn metrics_from_json(text: &str) -> Result<BTreeMap<String, f64>, String> {
    use crate::json::Json;
    let root = Json::parse(text)?;
    let obj = root.as_object().ok_or("baseline must be a JSON object")?;
    let mut out = BTreeMap::new();
    for (k, v) in obj {
        let v = v
            .as_f64()
            .ok_or_else(|| format!("baseline metric `{k}` must be a number"))?;
        out.insert(k.clone(), v);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn within_tolerance_passes() {
        let baseline = map(&[("mvp/range/distances_p50", 1000.0)]);
        let fresh = map(&[("mvp/range/distances_p50", 1100.0)]);
        let report = compare(&baseline, &fresh, 0.15, 0.5);
        assert!(!report.failed(), "{}", report.render());
        assert!((report.checks[0].change - 0.10).abs() < 1e-9);
    }

    #[test]
    fn doctored_baseline_fires_the_gate() {
        // Acceptance criterion: a baseline doctored to be impossibly fast
        // must make the gate fail.
        let doctored = map(&[("mvp/range/distances_p50", 1.0)]);
        let fresh = map(&[("mvp/range/distances_p50", 1000.0)]);
        let report = compare(&doctored, &fresh, 0.15, 0.5);
        assert!(report.failed());
        assert_eq!(report.failures().len(), 1);
        assert!(report.render().contains("FAIL"), "{}", report.render());
    }

    #[test]
    fn missing_metric_fails() {
        let baseline = map(&[("mvp/knn/distances_p50", 500.0)]);
        let report = compare(&baseline, &BTreeMap::new(), 0.15, 0.5);
        assert!(report.failed());
        assert_eq!(report.checks[0].fresh, None);
        assert!(report.render().contains("missing"));
    }

    #[test]
    fn extra_fresh_metric_is_ignored() {
        let baseline = map(&[("a", 10.0)]);
        let fresh = map(&[("a", 10.0), ("brand_new", 9999.0)]);
        assert!(!compare(&baseline, &fresh, 0.15, 0.5).failed());
    }

    #[test]
    fn wall_clock_metrics_use_loose_tolerance() {
        let baseline = map(&[("mvp/range/latency_p50_ns", 1000.0)]);
        let fresh = map(&[("mvp/range/latency_p50_ns", 1400.0)]);
        // 40% over: fails the strict tolerance but passes the wall one.
        assert!(compare(&baseline, &fresh, 0.15, 0.15).failed());
        assert!(!compare(&baseline, &fresh, 0.15, 0.6).failed());
    }

    #[test]
    fn improvement_and_zero_baselines_pass() {
        let baseline = map(&[("fast", 1000.0), ("zero", 0.0)]);
        let fresh = map(&[("fast", 500.0), ("zero", 0.0)]);
        let report = compare(&baseline, &fresh, 0.15, 0.5);
        assert!(!report.failed(), "{}", report.render());
        // ...but a zero baseline with nonzero fresh value is an infinite
        // regression.
        let fresh = map(&[("fast", 500.0), ("zero", 3.0)]);
        assert!(compare(&baseline, &fresh, 0.15, 0.5).failed());
    }

    #[test]
    fn baseline_json_round_trips() {
        let metrics = map(&[
            ("mvp/range/distances_p50", 1234.0),
            ("mvp/range/latency_p50_ns", 56789.5),
        ]);
        let text = metrics_to_json(&metrics);
        assert_eq!(metrics_from_json(&text).unwrap(), metrics);
        assert!(metrics_from_json("[1,2]").is_err());
        assert!(metrics_from_json("{\"x\": \"not a number\"}").is_err());
    }
}
