//! Lock-free log-linear histograms (HDR-style).
//!
//! Serving telemetry needs per-operation latency and distance-count
//! distributions that are cheap to record from many threads at once and
//! bounded in memory regardless of the value range. A fixed-bin-width
//! histogram ([`DistanceHistogram`](vantage_core::DistanceHistogram))
//! cannot do that for nanosecond latencies spanning nine orders of
//! magnitude, so this module uses the classic *log-linear* bucket layout:
//!
//! * values below `2^SUB_BITS` get their own width-1 bucket (exact);
//! * every power-of-two octave `[2^m, 2^(m+1))` above that is split into
//!   `2^SUB_BITS` equal sub-buckets.
//!
//! With [`SUB_BITS`] = 5 the relative quantization error is at most
//! `2^-5` ≈ 3.1 % and the whole `u64` range fits in [`BUCKETS`] = 1 920
//! buckets (15 KiB of counters per histogram).
//!
//! [`AtomicHistogram`] is the live, write-side type: recording is one
//! relaxed `fetch_add` on the bucket plus a handful of relaxed updates to
//! the summary atomics — no locks anywhere, so concurrent recorders never
//! block and a snapshot can be taken while traffic is in flight.
//! [`HistogramSnapshot`] is the frozen read side with merge and
//! percentile support; it is what the exporters serialize.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-bucket resolution: each octave has `2^SUB_BITS` buckets.
pub const SUB_BITS: u32 = 5;

/// Sub-buckets per octave.
const SUB_COUNT: u64 = 1 << SUB_BITS;

/// Total bucket count covering the full `u64` value range.
pub const BUCKETS: usize = ((64 - SUB_BITS) as usize + 1) << SUB_BITS;

/// The bucket index holding `value`.
///
/// Monotone in `value`: larger values never map to smaller buckets.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_COUNT {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros(); // >= SUB_BITS
    let octave = (msb - SUB_BITS + 1) as u64;
    let sub = (value >> (msb - SUB_BITS)) - SUB_COUNT;
    ((octave << SUB_BITS) + sub) as usize
}

/// The inclusive lower edge of bucket `index`.
pub fn bucket_lower(index: usize) -> u64 {
    let index = index as u64;
    let octave = index >> SUB_BITS;
    let sub = index & (SUB_COUNT - 1);
    if octave == 0 {
        return sub;
    }
    (SUB_COUNT + sub) << (octave - 1)
}

/// The inclusive upper edge of bucket `index` (the largest value that
/// maps into it).
pub fn bucket_upper(index: usize) -> u64 {
    let octave = (index as u64) >> SUB_BITS;
    if octave == 0 {
        return bucket_lower(index);
    }
    let width = 1u64 << (octave - 1);
    bucket_lower(index).saturating_add(width - 1)
}

/// A concurrently-writable log-linear histogram of `u64` values.
///
/// All methods take `&self`; recording uses only relaxed atomics.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        AtomicHistogram {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation. Lock-free; safe to call from any number
    /// of threads concurrently.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Freezes the current state into a [`HistogramSnapshot`].
    ///
    /// Taken concurrently with writers, the snapshot is a consistent
    /// *bucket-wise* view: each counter is read once; a write racing the
    /// snapshot lands wholly in this snapshot or wholly in the next.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                buckets.push((i as u32, c));
            }
        }
        HistogramSnapshot {
            count: buckets.iter().map(|&(_, c)| c).sum(),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A frozen histogram: sparse `(bucket index, count)` pairs plus summary
/// statistics. Supports merge and nearest-rank percentiles; serialized by
/// the exporters and compared by the perf-regression gate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total recorded observations (sum of bucket counts).
    pub count: u64,
    /// Sum of all recorded values (wraps only after `u64` overflow —
    /// ~584 years of summed nanoseconds).
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Sparse non-empty buckets as `(index, count)`, ascending by index.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean recorded value (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// The nearest-rank `q`-percentile (`0.0 ≤ q ≤ 1.0`), or `None` when
    /// the histogram is empty or `q` is out of range.
    ///
    /// Returns the upper edge of the bucket containing the rank, clamped
    /// to the recorded `max` — so quantization error is bounded by the
    /// bucket's relative width (≤ `2^-SUB_BITS`) and `percentile(1.0)`
    /// is exactly the maximum.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for &(index, c) in &self.buckets {
            cumulative += c;
            if cumulative >= target {
                return Some(bucket_upper(index as usize).min(self.max).max(self.min));
            }
        }
        Some(self.max)
    }

    /// Accumulates another snapshot into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, ca)), Some(&&(ib, cb))) => {
                    if ia < ib {
                        merged.push((ia, ca));
                        a.next();
                    } else if ib < ia {
                        merged.push((ib, cb));
                        b.next();
                    } else {
                        merged.push((ia, ca + cb));
                        a.next();
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    merged.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB_COUNT {
            let i = bucket_index(v);
            assert_eq!(bucket_lower(i), v);
            assert_eq!(bucket_upper(i), v);
        }
    }

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        let mut prev = 0usize;
        // Walk every bucket edge: each bucket's upper edge + 1 must land
        // in the next bucket.
        for i in 0..BUCKETS - 1 {
            let upper = bucket_upper(i);
            if upper == u64::MAX {
                break;
            }
            let next = bucket_index(upper + 1);
            assert_eq!(next, i + 1, "bucket {i} upper {upper}");
            assert!(next > prev || prev == 0);
            prev = next;
        }
    }

    #[test]
    fn value_maps_within_its_bucket_bounds() {
        for &v in &[
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            100,
            1_000,
            123_456_789,
            u64::MAX / 3,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(bucket_lower(i) <= v, "lower({i}) > {v}");
            assert!(v <= bucket_upper(i), "{v} > upper({i})");
            assert!(i < BUCKETS);
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for &v in &[100u64, 10_000, 1_000_000, 123_456_789_012] {
            let i = bucket_index(v);
            let width = bucket_upper(i) - bucket_lower(i);
            assert!(
                (width as f64) <= (v as f64) / 16.0,
                "bucket width {width} too wide for {v}"
            );
        }
    }

    #[test]
    fn record_and_percentiles() {
        let h = AtomicHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        assert_eq!(s.sum, 500_500);
        let p50 = s.percentile(0.5).unwrap();
        assert!((480..=520).contains(&p50), "p50 {p50}");
        assert_eq!(s.percentile(1.0), Some(1000));
        assert!(s.percentile(0.0).unwrap() >= 1);
        assert_eq!(s.percentile(1.5), None);
    }

    #[test]
    fn empty_snapshot() {
        let s = AtomicHistogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.percentile(0.5), None);
        assert_eq!(s.mean(), None);
    }

    #[test]
    fn merge_equals_joint_recording() {
        let a = AtomicHistogram::new();
        let b = AtomicHistogram::new();
        let joint = AtomicHistogram::new();
        for v in [1u64, 5, 40, 40, 999, 123_456] {
            a.record(v);
            joint.record(v);
        }
        for v in [2u64, 40, 7_000_000] {
            b.record(v);
            joint.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, joint.snapshot());
    }
}
