//! The [`Instrumented`] index wrapper: always-on serving telemetry with
//! zero changes to the wrapped index.
//!
//! `Instrumented<I>` implements [`MetricIndex`] by delegating to the
//! inner index and, around each query, timing the call and reading the
//! distance-cost delta from a [`CostProbe`] (usually a clone of the
//! [`Counted`] metric the index was built with). Answers are returned
//! untouched — instrumentation never changes results, and the per-query
//! overhead is two monotonic-clock reads plus a handful of relaxed
//! atomics.

use std::sync::Arc;
use std::time::Instant;

use vantage_core::parallel::Threads;
use vantage_core::query::Neighbor;
use vantage_core::{
    BudgetedKnn, BudgetedSearch, Counted, DistanceTotals, MetricIndex, SearchBudget,
};

use crate::registry::{CostDelta, IndexMetrics, OpKind};

/// A source of monotonic distance-cost readings.
///
/// The wrapper reads totals before and after each operation and records
/// the difference, so the probe must never be reset while instrumented
/// queries are running. Under concurrent queries sharing one probe, each
/// operation's delta may include evaluations from overlapping operations
/// on other threads — totals across a snapshot remain exact, per-op
/// attribution is best-effort (see DESIGN.md §Telemetry).
pub trait CostProbe: Send + Sync {
    /// Current cumulative totals.
    fn totals(&self) -> DistanceTotals;
}

impl<M: Send + Sync> CostProbe for Counted<M> {
    fn totals(&self) -> DistanceTotals {
        Counted::totals(self)
    }
}

/// A probe that always reads zero — for indexes whose metric is not
/// wrapped in [`Counted`]. Latency histograms still populate; distance
/// histograms record zeros.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProbe;

impl CostProbe for NoProbe {
    fn totals(&self) -> DistanceTotals {
        DistanceTotals::default()
    }
}

impl From<DistanceTotals> for CostDelta {
    fn from(d: DistanceTotals) -> CostDelta {
        CostDelta {
            computations: d.computations,
            abandoned: d.abandoned,
            abandoned_work: d.abandoned_work,
        }
    }
}

/// A [`MetricIndex`] wrapper that records every operation into an
/// [`IndexMetrics`] handle.
///
/// ```
/// use vantage_core::prelude::*;
/// use vantage_telemetry::{Instrumented, MetricsRegistry, OpKind};
///
/// let registry = MetricsRegistry::new();
/// let metric = Counted::new(Euclidean);
/// let probe = metric.clone();
/// let index = Instrumented::with_probe(
///     LinearScan::new(vec![vec![0.0], vec![1.0]], metric),
///     registry.index("scan"),
///     probe,
/// );
/// index.range(&vec![0.5], 10.0);
/// let snap = registry.snapshot();
/// assert_eq!(snap.index("scan").unwrap().op(OpKind::Range).unwrap().ops, 1);
/// ```
pub struct Instrumented<I> {
    inner: I,
    metrics: Arc<IndexMetrics>,
    probe: Arc<dyn CostProbe>,
}

impl<I> Instrumented<I> {
    /// Wraps `inner`, reporting into `metrics` with no distance probe
    /// (latency only).
    pub fn new(inner: I, metrics: Arc<IndexMetrics>) -> Self {
        Instrumented::with_probe(inner, metrics, NoProbe)
    }

    /// Wraps `inner` with a probe for distance-cost attribution. Pass a
    /// clone of the index's [`Counted`] metric.
    pub fn with_probe(
        inner: I,
        metrics: Arc<IndexMetrics>,
        probe: impl CostProbe + 'static,
    ) -> Self {
        Instrumented {
            inner,
            metrics,
            probe: Arc::new(probe),
        }
    }

    /// Runs `build`, records its wall-clock and distance cost as one
    /// [`OpKind::Build`] operation, and wraps the result.
    pub fn build_with<F>(
        metrics: Arc<IndexMetrics>,
        probe: impl CostProbe + 'static,
        build: F,
    ) -> Self
    where
        F: FnOnce() -> I,
    {
        let probe: Arc<dyn CostProbe> = Arc::new(probe);
        let before = probe.totals();
        let start = Instant::now();
        let inner = build();
        let delta = probe.totals().since(&before);
        metrics.record(OpKind::Build, start.elapsed(), delta.into());
        Instrumented {
            inner,
            metrics,
            probe,
        }
    }

    /// The wrapped index.
    pub fn inner(&self) -> &I {
        &self.inner
    }

    /// Unwraps, discarding the telemetry handles.
    pub fn into_inner(self) -> I {
        self.inner
    }

    /// The metrics handle this wrapper reports into.
    pub fn metrics(&self) -> &Arc<IndexMetrics> {
        &self.metrics
    }

    #[inline]
    fn observe<R>(&self, kind: OpKind, op: impl FnOnce(&I) -> R) -> R {
        let before = self.probe.totals();
        let start = Instant::now();
        let result = op(&self.inner);
        let delta = self.probe.totals().since(&before);
        self.metrics.record(kind, start.elapsed(), delta.into());
        result
    }
}

impl<T, I: MetricIndex<T>> MetricIndex<T> for Instrumented<I> {
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn get(&self, id: usize) -> Option<&T> {
        self.inner.get(id)
    }

    fn range(&self, query: &T, radius: f64) -> Vec<Neighbor> {
        self.observe(OpKind::Range, |i| i.range(query, radius))
    }

    fn knn(&self, query: &T, k: usize) -> Vec<Neighbor> {
        self.observe(OpKind::Knn, |i| i.knn(query, k))
    }
}

// Budgeted queries record under `OpKind::Knn` like their exact
// counterpart, with two extra signals the answer itself carries: whether
// the budget ran out and the search's own recall estimate.
impl<T, I: BudgetedSearch<T>> BudgetedSearch<T> for Instrumented<I> {
    fn knn_budgeted(&self, query: &T, k: usize, budget: SearchBudget) -> BudgetedKnn {
        let before = self.probe.totals();
        let start = Instant::now();
        let result = self.inner.knn_budgeted(query, k, budget);
        let delta = self.probe.totals().since(&before);
        self.metrics.record_budgeted(
            OpKind::Knn,
            start.elapsed(),
            delta.into(),
            result.exhausted,
            result.estimated_recall,
        );
        result
    }
}

// Batch operations are *inherent* methods, not a `BatchIndex` impl: the
// blanket `impl<I: MetricIndex + Sync> BatchIndex for I` already covers
// `Instrumented`, and inherent methods win method resolution, so
// `instrumented.batch_range(..)` records ONE batch operation instead of
// one op per member query. (Calling through `&dyn BatchIndex` instead
// falls back to the blanket impl and records per-query range/knn ops —
// still correct totals, different op attribution.)
impl<I> Instrumented<I> {
    /// Answers a range-query batch, recorded as one
    /// [`OpKind::BatchRange`] operation.
    pub fn batch_range<T>(&self, queries: &[T], radius: f64, threads: Threads) -> Vec<Vec<Neighbor>>
    where
        T: Sync,
        I: MetricIndex<T> + Sync,
    {
        use vantage_core::BatchIndex as _;
        self.observe(OpKind::BatchRange, |i| {
            i.batch_range(queries, radius, threads)
        })
    }

    /// Answers a kNN batch, recorded as one [`OpKind::BatchKnn`]
    /// operation.
    pub fn batch_knn<T>(&self, queries: &[T], k: usize, threads: Threads) -> Vec<Vec<Neighbor>>
    where
        T: Sync,
        I: MetricIndex<T> + Sync,
    {
        use vantage_core::BatchIndex as _;
        self.observe(OpKind::BatchKnn, |i| i.batch_knn(queries, k, threads))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;
    use vantage_core::linear::LinearScan;
    use vantage_core::metrics::minkowski::Euclidean;

    fn points(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| vec![i as f64, (i * 7 % 13) as f64])
            .collect()
    }

    type CountedScan = Instrumented<LinearScan<Vec<f64>, Counted<Euclidean>>>;

    fn instrumented(registry: &MetricsRegistry, label: &str) -> (CountedScan, Counted<Euclidean>) {
        let metric = Counted::new(Euclidean);
        let probe = metric.clone();
        let index = Instrumented::build_with(registry.index(label), probe.clone(), || {
            LinearScan::new(points(32), metric)
        });
        (index, probe)
    }

    #[test]
    fn answers_are_bit_identical_to_bare_index() {
        let registry = MetricsRegistry::new();
        let (index, _) = instrumented(&registry, "scan");
        let bare = LinearScan::new(points(32), Euclidean);
        let q = vec![4.5, 3.0];
        assert_eq!(index.range(&q, 5.0), bare.range(&q, 5.0));
        assert_eq!(index.knn(&q, 7), bare.knn(&q, 7));
        assert_eq!(index.len(), bare.len());
        assert_eq!(index.get(3), bare.get(3));
    }

    #[test]
    fn ops_and_distance_deltas_are_recorded() {
        let registry = MetricsRegistry::new();
        let (index, probe) = instrumented(&registry, "scan");
        let q = vec![1.0, 2.0];
        index.range(&q, 3.0);
        index.range(&q, 6.0);
        index.knn(&q, 5);

        let snap = registry.index("scan").snapshot();
        let range = snap.op(OpKind::Range).unwrap();
        assert_eq!(range.ops, 2);
        // LinearScan evaluates every object per query: 32 each.
        assert_eq!(range.distances.sum, 64);
        assert_eq!(snap.op(OpKind::Knn).unwrap().distances.sum, 32);
        // Build was recorded too (LinearScan builds without distances).
        assert_eq!(snap.op(OpKind::Build).unwrap().ops, 1);
        // The probe itself was never reset: totals stay monotonic.
        assert_eq!(probe.count(), 96);
    }

    #[test]
    fn batch_ops_record_one_operation_per_batch() {
        let registry = MetricsRegistry::new();
        let (index, _) = instrumented(&registry, "scan");
        let queries = points(5);
        let batched = index.batch_range(&queries, 4.0, Threads::Fixed(2));
        index.batch_knn(&queries, 3, Threads::SEQUENTIAL);

        let snap = registry.index("scan").snapshot();
        let br = snap.op(OpKind::BatchRange).unwrap();
        assert_eq!(br.ops, 1);
        assert_eq!(br.distances.sum, 5 * 32);
        assert_eq!(snap.op(OpKind::BatchKnn).unwrap().ops, 1);
        // No per-query range/knn ops leaked from the batch path.
        assert!(snap.op(OpKind::Range).is_none());
        assert!(snap.op(OpKind::Knn).is_none());

        // And the answers match the single-query path exactly.
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(batched[i], index.inner().range(q, 4.0));
        }
    }

    #[test]
    fn no_probe_records_latency_with_zero_distances() {
        let registry = MetricsRegistry::new();
        let index = Instrumented::new(
            LinearScan::new(points(8), Euclidean),
            registry.index("bare"),
        );
        index.knn(&vec![0.0, 0.0], 2);
        let snap = registry.index("bare").snapshot();
        let knn = snap.op(OpKind::Knn).unwrap();
        assert_eq!(knn.ops, 1);
        assert_eq!(knn.distances.sum, 0);
        assert_eq!(knn.latency_ns.count, 1);
    }

    #[test]
    fn budgeted_knn_records_recall_and_matches_inner() {
        let registry = MetricsRegistry::new();
        let (index, _) = instrumented(&registry, "scan");
        let q = vec![4.5, 3.0];
        let full = index.knn_budgeted(&q, 5, SearchBudget::UNLIMITED);
        assert_eq!(full.neighbors, index.inner().knn(&q, 5));
        let partial = index.knn_budgeted(&q, 5, SearchBudget::limited(8));
        assert!(partial.exhausted);

        let snap = registry.index("scan").snapshot();
        let knn = snap.op(OpKind::Knn).unwrap();
        assert_eq!(knn.ops, 2);
        assert_eq!(knn.budget_exhausted, 1);
        assert_eq!(knn.estimated_recall_bp.count, 2);
        assert_eq!(knn.estimated_recall_bp.max, 10_000);
        // The unlimited query evaluated all 32 points, the partial 8.
        assert_eq!(knn.distances.sum, 40);
    }

    #[test]
    fn abandoned_tallies_flow_through() {
        let registry = MetricsRegistry::new();
        // Spread-out points in high dimension with a tiny radius: the
        // bounded kernel abandons most candidate evaluations.
        let data: Vec<Vec<f64>> = (0..16).map(|i| vec![i as f64 * 10.0; 64]).collect();
        let metric = Counted::new(Euclidean);
        let probe = metric.clone();
        let index = Instrumented::with_probe(
            LinearScan::new(data, metric),
            registry.index("hidim"),
            probe,
        );
        index.range(&vec![0.25; 64], 1.0);
        let snap = registry.index("hidim").snapshot();
        let range = snap.op(OpKind::Range).unwrap();
        assert!(range.abandoned > 0, "expected abandoned evaluations");
        assert!(range.abandoned_work > 0.0);
    }
}
