//! A minimal self-contained JSON value type, parser and writer.
//!
//! The workspace's offline dependency policy vendors `serde`/`serde_json`
//! as compile-time stand-ins that cannot actually serialize (see
//! DESIGN.md), so the telemetry exporters and the perf-regression gate
//! carry their own ~200-line JSON layer instead. It supports the full
//! JSON grammar with the one usual Rust simplification: numbers are `f64`
//! (integers round-trip exactly up to 2^53, far beyond any counter this
//! workspace emits in practice).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Objects preserve no insertion order (keys are
/// sorted), which makes rendered output deterministic — a property the
/// snapshot round-trip tests rely on.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with sorted keys.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object member lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// Renders compact single-line JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with newline-and-indent formatting (2 spaces per level).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_close) = match indent {
            Some(w) => ("\n", " ".repeat(w * (depth + 1)), " ".repeat(w * depth)),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    write_string(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; null is the conventional degradation.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", byte as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "non-UTF-8 number")?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unchanged).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "non-UTF-8 string")?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.render()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn nested_round_trip() {
        let text = r#"{"a": [1, 2.5, {"b": "x\ny", "c": []}], "d": null, "e": true}"#;
        let v = Json::parse(text).unwrap();
        let rendered = v.render();
        assert_eq!(Json::parse(&rendered).unwrap(), v);
        let pretty = v.render_pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n": 42, "s": "str", "a": [7]}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(42));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(42.0));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("str"));
        assert_eq!(
            v.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(1)
        );
        assert!(v.get("missing").is_none());
        assert!(Json::Num(-1.0).as_u64().is_none());
        assert!(Json::Num(1.5).as_u64().is_none());
    }

    #[test]
    fn large_integers_round_trip_exactly() {
        let n = 9_007_199_254_740_992i64; // 2^53
        let v = Json::parse(&n.to_string()).unwrap();
        assert_eq!(v.render(), n.to_string());
    }

    #[test]
    fn string_escapes() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".into());
        let rendered = v.render();
        assert_eq!(Json::parse(&rendered).unwrap(), v);
        assert!(rendered.contains("\\u0001"));
        assert_eq!(Json::parse(r#""Aé""#).unwrap(), Json::Str("Aé".into()));
    }

    #[test]
    fn syntax_errors_are_reported() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "tru", "\"unterminated", "1 2", ""] {
            assert!(Json::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn unicode_passthrough() {
        let v = Json::parse("\"héllo — ≤3%\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo — ≤3%"));
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }
}
