//! Always-on serving telemetry for vantage indexes.
//!
//! The paper's experiments (§5) measure *distance computations per query*
//! offline; a serving system needs the same currency **continuously**, at
//! negligible overhead, alongside wall-clock latency. This crate provides
//! that observability layer:
//!
//! * [`MetricsRegistry`] — a process-scoped registry of per-index,
//!   per-operation metrics. Registration takes a lock once per index;
//!   recording is lock-free (sharded atomic counters + atomic log-linear
//!   histograms), so serving threads never contend with each other or
//!   with a scraper.
//! * [`AtomicHistogram`] — an HDR-style log-linear histogram over `u64`
//!   (1920 buckets, ≤3.2% relative error) used for both latency in
//!   nanoseconds and distance-computation counts per operation.
//! * [`Instrumented`] — a [`MetricIndex`](vantage_core::MetricIndex)
//!   wrapper that times every `build`/`range`/`knn`/batch operation and
//!   attributes distance-cost deltas via a [`CostProbe`] (a clone of the
//!   index's [`Counted`](vantage_core::Counted) metric). Answers are
//!   bit-identical to the bare index.
//! * [`RegistrySnapshot`] — a frozen, mergeable view with a
//!   human-readable table ([`RegistrySnapshot::render_table`]), plus
//!   lossless JSON ([`export::to_json`]/[`export::from_json`]) and
//!   Prometheus text ([`export::to_prometheus`]) exporters.
//! * [`gate`] — the CI perf-regression comparison: fresh quick-scale
//!   medians against committed `BENCH_*.json` baselines.
//! * [`TraceRing`] — a bounded, never-blocking ring of sampled request
//!   traces ([`TraceRecord`]) backing the serve protocol's `SLOW` /
//!   `TRACE` commands and the Chrome trace-event exporter
//!   ([`ring::chrome_from_trace_json`]).
//! * [`SloSurface`] — windowed p50/p99/p999 latency per operation kind
//!   with exemplar trace IDs, recorded lock-free on the request path.
//!
//! See `vantage stats --metrics`, `vantage query --metrics`, and the
//! `perf-gate` binary in the bench crate for the CLI surface.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counter;
pub mod export;
pub mod gate;
pub mod histogram;
pub mod instrument;
pub mod json;
pub mod registry;
pub mod ring;
pub mod slo;
pub mod snapshot;

pub use counter::ShardedCounter;
pub use histogram::{AtomicHistogram, HistogramSnapshot};
pub use instrument::{CostProbe, Instrumented, NoProbe};
pub use json::Json;
pub use registry::{CostDelta, Gauge, IndexMetrics, MetricsRegistry, OpKind, RECALL_SCALE};
pub use ring::{chrome_from_trace_json, profile_to_json, TraceRecord, TraceRing};
pub use slo::{SloSnapshot, SloSurface};
pub use snapshot::{format_ns, GaugeSnapshot, IndexSnapshot, OpSnapshot, RegistrySnapshot};
