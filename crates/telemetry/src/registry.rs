//! The lock-free metrics registry.
//!
//! One [`MetricsRegistry`] serves a whole process (or one test): it hands
//! out [`IndexMetrics`] handles keyed by an index *label* (e.g. `"mvp"`,
//! `"vp/shard-3"`). Label registration is the only code path that takes a
//! lock, and it happens once per index at startup; the record path —
//! [`IndexMetrics::record`] — touches only sharded atomic counters and
//! atomic histogram buckets, so any number of serving threads can report
//! concurrently without blocking each other or a snapshot reader.
//!
//! Per label, the registry keeps one [`OpMetrics`] slot per operation
//! kind ([`OpKind`]): operation count, a log-linear wall-clock latency
//! histogram (nanoseconds), a log-linear distance-computation histogram
//! (the paper's cost currency), and the early-abandoning tallies from the
//! kernel layer (abandoned evaluation count + estimated fractional work).

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Duration;

use crate::counter::ShardedCounter;
use crate::histogram::{AtomicHistogram, HistogramSnapshot};
use crate::snapshot::{GaugeSnapshot, IndexSnapshot, OpSnapshot, RegistrySnapshot};

/// The kind of index operation a telemetry sample describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Bulk construction of the index.
    Build = 0,
    /// A single range query.
    Range = 1,
    /// A single k-nearest-neighbor query.
    Knn = 2,
    /// A batch of range queries answered as one operation.
    BatchRange = 3,
    /// A batch of kNN queries answered as one operation.
    BatchKnn = 4,
    /// A snapshot loaded from disk in place of a build. The "distances"
    /// histogram carries the snapshot size in **bytes** for this kind —
    /// a load performs no metric evaluations, and the byte count is the
    /// load's natural cost currency.
    SnapshotLoad = 5,
}

impl OpKind {
    /// Number of distinct kinds.
    pub const COUNT: usize = 6;
    /// Every kind, in counter order.
    pub const ALL: [OpKind; Self::COUNT] = [
        OpKind::Build,
        OpKind::Range,
        OpKind::Knn,
        OpKind::BatchRange,
        OpKind::BatchKnn,
        OpKind::SnapshotLoad,
    ];

    /// Stable machine-readable name (used in JSON and Prometheus labels).
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Build => "build",
            OpKind::Range => "range",
            OpKind::Knn => "knn",
            OpKind::BatchRange => "batch_range",
            OpKind::BatchKnn => "batch_knn",
            OpKind::SnapshotLoad => "snapshot_load",
        }
    }

    /// Parses [`name`](OpKind::name) back into a kind.
    pub fn parse(name: &str) -> Option<OpKind> {
        OpKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// The distance-computation cost of one operation, as a *delta* between
/// two monotonic [`Counted`](vantage_core::Counted) readings.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostDelta {
    /// Metric evaluations performed (the paper's cost measure).
    pub computations: u64,
    /// How many of those the bounded kernel abandoned early.
    pub abandoned: u64,
    /// Estimated arithmetic done by the abandoned evaluations, in units
    /// of one full evaluation.
    pub abandoned_work: f64,
}

/// Fixed-point scale for accumulating fractional work in an atomic
/// counter (mirrors `Counted`'s internal representation).
const WORK_SCALE: f64 = 1_000_000.0;

/// Fixed-point scale for recall estimates: a recall in `[0, 1]` is
/// recorded in the histogram as basis points in `[0, 10000]`, the finest
/// resolution the log-linear buckets can hold without loss of meaning.
pub const RECALL_SCALE: f64 = 10_000.0;

/// Live telemetry for one operation kind of one index.
#[derive(Debug, Default)]
pub struct OpMetrics {
    ops: ShardedCounter,
    latency_ns: AtomicHistogram,
    distances: AtomicHistogram,
    abandoned: ShardedCounter,
    abandoned_work_scaled: ShardedCounter,
    budget_exhausted: ShardedCounter,
    estimated_recall_bp: AtomicHistogram,
}

impl OpMetrics {
    /// Number of operations recorded so far.
    pub fn ops(&self) -> u64 {
        self.ops.get()
    }

    fn record(&self, latency: Duration, cost: CostDelta) {
        self.ops.incr();
        self.latency_ns
            .record(u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX));
        self.distances.record(cost.computations);
        if cost.abandoned > 0 {
            self.abandoned.add(cost.abandoned);
            self.abandoned_work_scaled
                .add((cost.abandoned_work.max(0.0) * WORK_SCALE) as u64);
        }
    }

    fn record_budget(&self, exhausted: bool, estimated_recall: f64) {
        if exhausted {
            self.budget_exhausted.incr();
        }
        self.estimated_recall_bp
            .record((estimated_recall.clamp(0.0, 1.0) * RECALL_SCALE).round() as u64);
    }

    fn snapshot(&self, kind: OpKind) -> OpSnapshot {
        // An untouched recall histogram freezes to the canonical empty
        // snapshot (`min` would otherwise read `u64::MAX`), matching
        // what `from_json` reconstructs when the field is absent.
        let estimated_recall_bp = self.estimated_recall_bp.snapshot();
        let estimated_recall_bp = if estimated_recall_bp.count == 0 {
            HistogramSnapshot::default()
        } else {
            estimated_recall_bp
        };
        OpSnapshot {
            kind,
            ops: self.ops.get(),
            latency_ns: self.latency_ns.snapshot(),
            distances: self.distances.snapshot(),
            abandoned: self.abandoned.get(),
            abandoned_work: self.abandoned_work_scaled.get() as f64 / WORK_SCALE,
            budget_exhausted: self.budget_exhausted.get(),
            estimated_recall_bp,
        }
    }
}

/// All telemetry for one labeled index: one [`OpMetrics`] per [`OpKind`].
///
/// Handles are shared via [`Arc`]; the hot path never consults the
/// registry map again after the handle is created.
#[derive(Debug)]
pub struct IndexMetrics {
    label: String,
    ops: [OpMetrics; OpKind::COUNT],
}

impl IndexMetrics {
    fn new(label: String) -> Self {
        IndexMetrics {
            label,
            ops: Default::default(),
        }
    }

    /// The index label this handle reports under.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The live metrics slot for one operation kind.
    pub fn op(&self, kind: OpKind) -> &OpMetrics {
        &self.ops[kind as usize]
    }

    /// Records one completed operation: its wall-clock latency and its
    /// distance-computation cost delta. Lock-free.
    pub fn record(&self, kind: OpKind, latency: Duration, cost: CostDelta) {
        self.ops[kind as usize].record(latency, cost);
    }

    /// Records one completed *budgeted* operation: everything
    /// [`record`](IndexMetrics::record) captures, plus whether the search
    /// budget ran out and the search's own recall estimate (recorded as
    /// basis points, see [`RECALL_SCALE`]). Lock-free.
    pub fn record_budgeted(
        &self,
        kind: OpKind,
        latency: Duration,
        cost: CostDelta,
        exhausted: bool,
        estimated_recall: f64,
    ) {
        let op = &self.ops[kind as usize];
        op.record(latency, cost);
        op.record_budget(exhausted, estimated_recall);
    }

    /// Freezes this index's counters into a snapshot.
    pub fn snapshot(&self) -> IndexSnapshot {
        IndexSnapshot {
            label: self.label.clone(),
            ops: OpKind::ALL
                .into_iter()
                .map(|kind| self.ops[kind as usize].snapshot(kind))
                .filter(|op| op.ops > 0)
                .collect(),
        }
    }
}

/// A point-in-time instantaneous value (as opposed to the monotonic
/// counters in [`OpMetrics`]): current serving generation, in-flight
/// query count, completed swaps. Updated lock-free from any thread;
/// handles are shared via [`Arc`] from [`MetricsRegistry::gauge`].
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge to an absolute value.
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Release);
    }

    /// Adds (or, negative, subtracts) a delta.
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::AcqRel);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Acquire)
    }
}

/// A process- or test-scoped collection of [`IndexMetrics`].
///
/// `Default`-constructible for isolated use in tests; long-lived binaries
/// usually share [`MetricsRegistry::global`].
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    // Registration is rare (once per index) and may take the write lock;
    // recording goes through previously returned Arc handles and never
    // touches this map.
    indexes: RwLock<Vec<Arc<IndexMetrics>>>,
    gauges: RwLock<Vec<(String, Arc<Gauge>)>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The process-wide shared registry.
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    /// Returns the metrics handle for `label`, creating it on first use.
    /// Two calls with the same label return the same handle.
    pub fn index(&self, label: &str) -> Arc<IndexMetrics> {
        if let Some(existing) = self
            .indexes
            .read()
            .expect("registry lock poisoned")
            .iter()
            .find(|m| m.label == label)
        {
            return Arc::clone(existing);
        }
        let mut write = self.indexes.write().expect("registry lock poisoned");
        // Re-check under the write lock: another thread may have won.
        if let Some(existing) = write.iter().find(|m| m.label == label) {
            return Arc::clone(existing);
        }
        let created = Arc::new(IndexMetrics::new(label.to_string()));
        write.push(Arc::clone(&created));
        created
    }

    /// Returns the gauge named `name`, creating it (at zero) on first
    /// use. Two calls with the same name return the same handle.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some((_, existing)) = self
            .gauges
            .read()
            .expect("registry lock poisoned")
            .iter()
            .find(|(n, _)| n == name)
        {
            return Arc::clone(existing);
        }
        let mut write = self.gauges.write().expect("registry lock poisoned");
        if let Some((_, existing)) = write.iter().find(|(n, _)| n == name) {
            return Arc::clone(existing);
        }
        let created = Arc::new(Gauge::default());
        write.push((name.to_string(), Arc::clone(&created)));
        created
    }

    /// Labels registered so far, in registration order.
    pub fn labels(&self) -> Vec<String> {
        self.indexes
            .read()
            .expect("registry lock poisoned")
            .iter()
            .map(|m| m.label.clone())
            .collect()
    }

    /// Freezes every registered index into a [`RegistrySnapshot`].
    ///
    /// Safe to call while traffic is in flight: each atomic is read once,
    /// so an in-flight operation lands wholly in this snapshot or wholly
    /// in the next.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let handles: Vec<Arc<IndexMetrics>> = self
            .indexes
            .read()
            .expect("registry lock poisoned")
            .iter()
            .map(Arc::clone)
            .collect();
        let gauges: Vec<GaugeSnapshot> = self
            .gauges
            .read()
            .expect("registry lock poisoned")
            .iter()
            .map(|(name, gauge)| GaugeSnapshot {
                name: name.clone(),
                value: gauge.get(),
            })
            .collect();
        RegistrySnapshot {
            indexes: handles.iter().map(|m| m.snapshot()).collect(),
            gauges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_kind_names_round_trip() {
        for kind in OpKind::ALL {
            assert_eq!(OpKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(OpKind::parse("bogus"), None);
    }

    #[test]
    fn same_label_returns_same_handle() {
        let registry = MetricsRegistry::new();
        let a = registry.index("mvp");
        let b = registry.index("mvp");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(registry.labels(), vec!["mvp".to_string()]);
    }

    #[test]
    fn record_and_snapshot() {
        let registry = MetricsRegistry::new();
        let metrics = registry.index("vp");
        metrics.record(
            OpKind::Range,
            Duration::from_micros(150),
            CostDelta {
                computations: 37,
                abandoned: 5,
                abandoned_work: 0.75,
            },
        );
        metrics.record(
            OpKind::Range,
            Duration::from_micros(50),
            CostDelta::default(),
        );
        metrics.record(
            OpKind::Build,
            Duration::from_millis(2),
            CostDelta::default(),
        );

        let snap = registry.snapshot();
        assert_eq!(snap.indexes.len(), 1);
        let vp = &snap.indexes[0];
        assert_eq!(vp.label, "vp");
        // Only the two kinds with traffic appear.
        assert_eq!(vp.ops.len(), 2);
        let range = vp.op(OpKind::Range).unwrap();
        assert_eq!(range.ops, 2);
        assert_eq!(range.distances.sum, 37);
        assert_eq!(range.abandoned, 5);
        assert!((range.abandoned_work - 0.75).abs() < 1e-6);
        assert_eq!(range.latency_ns.count, 2);
        assert!(range.latency_ns.min >= 49_000 && range.latency_ns.max >= 150_000);
        assert!(vp.op(OpKind::Knn).is_none());
    }

    #[test]
    fn snapshot_load_records_bytes_in_the_cost_histogram() {
        let registry = MetricsRegistry::new();
        let metrics = registry.index("mvp");
        metrics.record(
            OpKind::SnapshotLoad,
            Duration::from_micros(800),
            CostDelta {
                computations: 4_096, // snapshot bytes, per the kind's contract
                ..CostDelta::default()
            },
        );
        let snap = registry.snapshot();
        let load = snap.indexes[0].op(OpKind::SnapshotLoad).unwrap();
        assert_eq!(load.ops, 1);
        assert_eq!(load.distances.sum, 4_096);
        assert_eq!(OpKind::parse("snapshot_load"), Some(OpKind::SnapshotLoad));
    }

    #[test]
    fn budgeted_records_exhaustion_and_recall_basis_points() {
        let registry = MetricsRegistry::new();
        let metrics = registry.index("vp");
        metrics.record_budgeted(
            OpKind::Knn,
            Duration::from_micros(90),
            CostDelta {
                computations: 64,
                ..CostDelta::default()
            },
            true,
            0.85,
        );
        metrics.record_budgeted(
            OpKind::Knn,
            Duration::from_micros(120),
            CostDelta {
                computations: 128,
                ..CostDelta::default()
            },
            false,
            1.0,
        );
        let snap = registry.snapshot();
        let knn = snap.indexes[0].op(OpKind::Knn).unwrap();
        assert_eq!(knn.ops, 2);
        assert_eq!(knn.budget_exhausted, 1);
        assert_eq!(knn.estimated_recall_bp.count, 2);
        assert_eq!(knn.estimated_recall_bp.sum, 8_500 + 10_000);
        // Plain records leave the budget telemetry untouched.
        metrics.record(OpKind::Knn, Duration::from_micros(70), CostDelta::default());
        let knn = registry.snapshot().indexes[0]
            .op(OpKind::Knn)
            .unwrap()
            .clone();
        assert_eq!(knn.ops, 3);
        assert_eq!(knn.budget_exhausted, 1);
        assert_eq!(knn.estimated_recall_bp.count, 2);
    }

    #[test]
    fn empty_index_is_omitted_from_snapshot_only_if_untouched() {
        let registry = MetricsRegistry::new();
        let _quiet = registry.index("quiet");
        let snap = registry.snapshot();
        assert_eq!(snap.indexes.len(), 1);
        assert!(snap.indexes[0].ops.is_empty());
    }
}
