//! A bounded, never-blocking ring of recent request traces.
//!
//! Sampled (and slow) serve requests leave behind a [`TraceRecord`]:
//! the request's phase spans, its distance-cost delta, and — when the
//! request was head-sampled — the full per-descent
//! [`QueryProfile`](vantage_core::QueryProfile) pruning breakdown. The
//! [`TraceRing`] retains the last N of them for the `SLOW` / `TRACE`
//! protocol commands and the Chrome trace-event exporter.
//!
//! **Writers never block the request path.** A push claims a slot with a
//! single `fetch_add` and then *tries* to lock it; if a reader holds the
//! slot at that instant the record is counted as dropped instead of
//! waiting. Readers lock one slot at a time, briefly, and clone the
//! `Arc` out — a record is published as a single pointer swap, so a
//! reader sees either the whole record or nothing (no torn traces).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use vantage_core::span::{SpanRecord, TraceId};
use vantage_core::trace::{DistanceRole, PruneReason, QueryProfile};

use crate::json::Json;

/// One request's retained trace.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// The request's deterministic trace identifier.
    pub id: TraceId,
    /// Protocol verb (`"KNN"`, `"RANGE"`, …).
    pub verb: String,
    /// Telemetry operation name (an [`OpKind`](crate::OpKind) name),
    /// empty when the verb maps to none.
    pub op: String,
    /// Index generation that answered the request.
    pub generation: u64,
    /// End-to-end request latency in nanoseconds.
    pub total_ns: u64,
    /// Result rows returned.
    pub results: u64,
    /// Whether the request was head-sampled (vs retained only because
    /// it was slow).
    pub sampled: bool,
    /// Whether the request exceeded the slow-query threshold.
    pub slow: bool,
    /// Phase spans on the request timeline.
    pub spans: Vec<SpanRecord>,
    /// Spans dropped past the recorder cap.
    pub dropped_spans: u64,
    /// Full pruning breakdown, present for head-sampled static-index
    /// requests (slow-only captures carry spans but no descent profile).
    pub profile: Option<QueryProfile>,
}

impl TraceRecord {
    /// Sum of the per-span distance computations.
    pub fn total_distances(&self) -> u64 {
        self.spans.iter().map(|s| s.distances).sum()
    }

    /// Sum of the per-span abandoned evaluations.
    pub fn total_abandoned(&self) -> u64 {
        self.spans.iter().map(|s| s.abandoned).sum()
    }

    /// Renders the record as a JSON object — the `TRACE` reply body and
    /// the slow-log line format.
    pub fn to_json(&self) -> Json {
        let mut obj = std::collections::BTreeMap::new();
        obj.insert("id".into(), Json::Str(self.id.to_string()));
        obj.insert("verb".into(), Json::Str(self.verb.clone()));
        if !self.op.is_empty() {
            obj.insert("op".into(), Json::Str(self.op.clone()));
        }
        obj.insert("generation".into(), Json::Num(self.generation as f64));
        obj.insert("total_ns".into(), Json::Num(self.total_ns as f64));
        obj.insert("results".into(), Json::Num(self.results as f64));
        obj.insert("sampled".into(), Json::Bool(self.sampled));
        obj.insert("slow".into(), Json::Bool(self.slow));
        obj.insert("distances".into(), Json::Num(self.total_distances() as f64));
        obj.insert("abandoned".into(), Json::Num(self.total_abandoned() as f64));
        if self.dropped_spans > 0 {
            obj.insert("dropped_spans".into(), Json::Num(self.dropped_spans as f64));
        }
        let spans: Vec<Json> = self
            .spans
            .iter()
            .map(|s| {
                let mut span = std::collections::BTreeMap::new();
                span.insert("name".into(), Json::Str(s.name.into()));
                if let Some(shard) = s.shard {
                    span.insert("shard".into(), Json::Num(f64::from(shard)));
                }
                span.insert("start_ns".into(), Json::Num(s.start_ns as f64));
                span.insert("duration_ns".into(), Json::Num(s.duration_ns as f64));
                span.insert("distances".into(), Json::Num(s.distances as f64));
                span.insert("abandoned".into(), Json::Num(s.abandoned as f64));
                if s.abandoned_work > 0.0 {
                    span.insert("abandoned_work".into(), Json::Num(s.abandoned_work));
                }
                Json::Obj(span)
            })
            .collect();
        obj.insert("spans".into(), Json::Arr(spans));
        if let Some(profile) = &self.profile {
            obj.insert("profile".into(), profile_to_json(profile));
        }
        Json::Obj(obj)
    }
}

/// Serializes a [`QueryProfile`]'s pruning breakdown: traversal counts,
/// per-role distances, and per-stage prune/reject bound summaries
/// (stages with zero events are omitted).
pub fn profile_to_json(profile: &QueryProfile) -> Json {
    let mut obj = std::collections::BTreeMap::new();
    obj.insert(
        "nodes_visited".into(),
        Json::Num(profile.nodes_visited() as f64),
    );
    obj.insert(
        "leaves_visited".into(),
        Json::Num(profile.leaves_visited() as f64),
    );
    let mut distances = std::collections::BTreeMap::new();
    let mut abandoned = std::collections::BTreeMap::new();
    for role in DistanceRole::ALL {
        distances.insert(
            role.label().into(),
            Json::Num(profile.distances(role) as f64),
        );
        if profile.abandoned(role) > 0 {
            abandoned.insert(
                role.label().into(),
                Json::Num(profile.abandoned(role) as f64),
            );
        }
    }
    obj.insert("distances".into(), Json::Obj(distances));
    if !abandoned.is_empty() {
        obj.insert("abandoned".into(), Json::Obj(abandoned));
    }
    obj.insert(
        "subtrees_pruned".into(),
        Json::Num(profile.subtrees_pruned() as f64),
    );
    obj.insert(
        "candidates_rejected".into(),
        Json::Num(profile.candidates_rejected() as f64),
    );
    let mut prunes = std::collections::BTreeMap::new();
    let mut rejects = std::collections::BTreeMap::new();
    for reason in PruneReason::ALL {
        let p = profile.prune_stats(reason);
        if p.count() > 0 {
            prunes.insert(
                reason.label().into(),
                bound_stats_json(p.count(), p.min(), p.max(), p.mean()),
            );
        }
        let r = profile.reject_stats(reason);
        if r.count() > 0 {
            rejects.insert(
                reason.label().into(),
                bound_stats_json(r.count(), r.min(), r.max(), r.mean()),
            );
        }
    }
    if !prunes.is_empty() {
        obj.insert("prunes".into(), Json::Obj(prunes));
    }
    if !rejects.is_empty() {
        obj.insert("rejects".into(), Json::Obj(rejects));
    }
    let levels: Vec<Json> = profile
        .levels()
        .iter()
        .map(|l| {
            let mut level = std::collections::BTreeMap::new();
            level.insert("visited".into(), Json::Num(l.visited as f64));
            level.insert("pruned".into(), Json::Num(l.pruned as f64));
            Json::Obj(level)
        })
        .collect();
    if !levels.is_empty() {
        obj.insert("levels".into(), Json::Arr(levels));
    }
    Json::Obj(obj)
}

fn bound_stats_json(count: u64, min: f64, max: f64, mean: f64) -> Json {
    let mut obj = std::collections::BTreeMap::new();
    obj.insert("count".into(), Json::Num(count as f64));
    obj.insert("min".into(), Json::Num(min));
    obj.insert("max".into(), Json::Num(max));
    obj.insert("mean".into(), Json::Num(mean));
    Json::Obj(obj)
}

/// Converts a trace JSON object (as produced by
/// [`TraceRecord::to_json`]) into Chrome trace-event format, loadable in
/// `chrome://tracing` / Perfetto. Each span becomes a complete (`"X"`)
/// event; per-shard spans land on their own `tid` rows so the scatter
/// fans out visually.
pub fn chrome_from_trace_json(trace: &Json) -> Json {
    let mut events: Vec<Json> = Vec::new();
    let id = trace.get("id").and_then(Json::as_str).unwrap_or("unknown");
    if let Some(spans) = trace.get("spans").and_then(Json::as_array) {
        for span in spans {
            let mut ev = std::collections::BTreeMap::new();
            let name = span.get("name").and_then(Json::as_str).unwrap_or("span");
            let shard = span.get("shard").and_then(Json::as_u64);
            let display = match shard {
                Some(s) => format!("{name}[{s}]"),
                None => name.to_string(),
            };
            ev.insert("name".into(), Json::Str(display));
            ev.insert("cat".into(), Json::Str("vantage".into()));
            ev.insert("ph".into(), Json::Str("X".into()));
            let start_ns = span.get("start_ns").and_then(Json::as_f64).unwrap_or(0.0);
            let dur_ns = span
                .get("duration_ns")
                .and_then(Json::as_f64)
                .unwrap_or(0.0);
            ev.insert("ts".into(), Json::Num(start_ns / 1000.0));
            ev.insert("dur".into(), Json::Num(dur_ns / 1000.0));
            ev.insert("pid".into(), Json::Num(1.0));
            // tid 0 is the request thread; shard s fans out to row s+1.
            ev.insert(
                "tid".into(),
                Json::Num(shard.map_or(0.0, |s| s as f64 + 1.0)),
            );
            let mut args = std::collections::BTreeMap::new();
            for key in ["distances", "abandoned", "abandoned_work"] {
                if let Some(v) = span.get(key) {
                    args.insert(key.into(), v.clone());
                }
            }
            args.insert("trace_id".into(), Json::Str(id.into()));
            ev.insert("args".into(), Json::Obj(args));
            events.push(Json::Obj(ev));
        }
    }
    let mut out = std::collections::BTreeMap::new();
    out.insert("traceEvents".into(), Json::Arr(events));
    out.insert("displayTimeUnit".into(), Json::Str("ns".into()));
    let mut other = std::collections::BTreeMap::new();
    other.insert("trace_id".into(), Json::Str(id.into()));
    if let Some(verb) = trace.get("verb") {
        other.insert("verb".into(), verb.clone());
    }
    if let Some(total) = trace.get("total_ns") {
        other.insert("total_ns".into(), total.clone());
    }
    out.insert("otherData".into(), Json::Obj(other));
    Json::Obj(out)
}

/// A fixed-capacity ring of the most recent [`TraceRecord`]s.
///
/// Slot claiming is a single relaxed `fetch_add`; the slot itself is a
/// mutex over an `Arc` pointer, held only long enough to swap the
/// pointer. Writers use `try_lock` so a scraping reader can never stall
/// the request path — a collision drops the new record and bumps
/// [`dropped`](TraceRing::dropped) instead.
#[derive(Debug)]
pub struct TraceRing {
    slots: Vec<Mutex<Option<Slot>>>,
    head: AtomicU64,
    dropped: AtomicU64,
}

/// A retained record plus the push sequence number that placed it.
type Slot = (u64, Arc<TraceRecord>);

impl TraceRing {
    /// Creates a ring holding up to `capacity` records (min 1).
    pub fn new(capacity: usize) -> TraceRing {
        let capacity = capacity.max(1);
        TraceRing {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Maximum records retained.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Publishes a record, overwriting the oldest slot. Never blocks: if
    /// a reader holds the claimed slot the record is dropped and
    /// counted.
    pub fn push(&self, record: TraceRecord) {
        let record = Arc::new(record);
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        match slot.try_lock() {
            Ok(mut guard) => *guard = Some((seq, record)),
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Records lost to slot contention (a reader held the claimed slot)
    /// — never to be confused with ordinary ring overwrites.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Total records ever pushed (including dropped ones).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    fn collect(&self) -> Vec<Slot> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let guard = slot.lock().expect("trace ring slot poisoned");
            if let Some((seq, record)) = guard.as_ref() {
                out.push((*seq, Arc::clone(record)));
            }
        }
        out
    }

    /// Looks up a trace by ID; when the same ID was recorded more than
    /// once, the most recent occurrence wins.
    pub fn find(&self, id: TraceId) -> Option<Arc<TraceRecord>> {
        self.collect()
            .into_iter()
            .filter(|(_, r)| r.id == id)
            .max_by_key(|(seq, _)| *seq)
            .map(|(_, r)| r)
    }

    /// The `n` slowest retained traces, by descending latency (ties
    /// broken toward the more recent record).
    pub fn slowest(&self, n: usize) -> Vec<Arc<TraceRecord>> {
        let mut all = self.collect();
        all.sort_unstable_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then_with(|| b.0.cmp(&a.0)));
        all.truncate(n);
        all.into_iter().map(|(_, r)| r).collect()
    }

    /// The `n` most recently recorded traces, newest first.
    pub fn recent(&self, n: usize) -> Vec<Arc<TraceRecord>> {
        let mut all = self.collect();
        all.sort_unstable_by_key(|slot| std::cmp::Reverse(slot.0));
        all.truncate(n);
        all.into_iter().map(|(_, r)| r).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vantage_core::span::SpanRecord;

    fn record(id: u64, total_ns: u64) -> TraceRecord {
        TraceRecord {
            id: TraceId::from_bits(id),
            verb: "KNN".into(),
            op: "knn".into(),
            generation: 1,
            total_ns,
            results: 5,
            sampled: true,
            slow: false,
            spans: vec![SpanRecord {
                name: "search",
                shard: Some(0),
                start_ns: 100,
                duration_ns: total_ns.saturating_sub(200),
                distances: 42,
                abandoned: 3,
                abandoned_work: 0.5,
            }],
            dropped_spans: 0,
            profile: None,
        }
    }

    #[test]
    fn push_find_and_overwrite() {
        let ring = TraceRing::new(2);
        ring.push(record(1, 100));
        ring.push(record(2, 200));
        assert!(ring.find(TraceId::from_bits(1)).is_some());
        // Capacity 2: the third push evicts the first.
        ring.push(record(3, 300));
        assert!(ring.find(TraceId::from_bits(1)).is_none());
        assert!(ring.find(TraceId::from_bits(3)).is_some());
        assert_eq!(ring.pushed(), 3);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn duplicate_ids_resolve_to_latest() {
        let ring = TraceRing::new(4);
        ring.push(record(7, 100));
        ring.push(record(7, 900));
        let found = ring.find(TraceId::from_bits(7)).unwrap();
        assert_eq!(found.total_ns, 900);
    }

    #[test]
    fn slowest_orders_by_latency() {
        let ring = TraceRing::new(8);
        for (id, ns) in [(1, 300), (2, 100), (3, 500), (4, 200)] {
            ring.push(record(id, ns));
        }
        let slow: Vec<u64> = ring.slowest(2).iter().map(|r| r.total_ns).collect();
        assert_eq!(slow, vec![500, 300]);
        let recent: Vec<u64> = ring.recent(2).iter().map(|r| r.id.bits()).collect();
        assert_eq!(recent, vec![4, 3]);
    }

    #[test]
    fn trace_json_round_trips_and_exports() {
        let rec = record(0xabcd, 1_000_000);
        let json = rec.to_json();
        let reparsed = Json::parse(&json.render()).unwrap();
        assert_eq!(
            reparsed.get("id").and_then(Json::as_str),
            Some("000000000000abcd")
        );
        assert_eq!(reparsed.get("distances").and_then(Json::as_u64), Some(42));
        let chrome = chrome_from_trace_json(&reparsed);
        let events = chrome.get("traceEvents").and_then(Json::as_array).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].get("name").and_then(Json::as_str),
            Some("search[0]")
        );
        assert_eq!(events[0].get("ph").and_then(Json::as_str), Some("X"));
        // 100ns start → 0.1µs timestamp.
        assert_eq!(events[0].get("ts").and_then(Json::as_f64), Some(0.1));
        assert_eq!(events[0].get("tid").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn profile_json_contains_pruning_breakdown() {
        use vantage_core::trace::{DistanceRole, PruneReason, TraceSink};
        let mut p = QueryProfile::new();
        p.enter_node(0, false);
        p.distance(DistanceRole::Vantage);
        p.prune(1, PruneReason::FirstShell, 2.5);
        p.reject(PruneReason::PathFilter, 0.5);
        let json = profile_to_json(&p);
        assert_eq!(json.get("subtrees_pruned").and_then(Json::as_u64), Some(1));
        let prunes = json.get("prunes").unwrap();
        assert_eq!(
            prunes
                .get("vp1-shell")
                .and_then(|s| s.get("count"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert!(json.get("rejects").unwrap().get("path-filter").is_some());
        // Zero-count stages are omitted entirely.
        assert!(prunes.get("vp2-shell").is_none());
    }
}
