//! Live SLO surface: windowed latency percentiles per operation kind
//! with exemplar trace IDs.
//!
//! The [`MetricsRegistry`](crate::MetricsRegistry) histograms are
//! *cumulative* — ideal for long-horizon dashboards, useless for "what
//! is p99 right now". [`SloSurface`] keeps a small sliding window of the
//! most recent latencies per [`OpKind`](crate::OpKind), recorded
//! lock-free on the request path, and computes nearest-rank p50/p99/
//! p999 on demand. Each window also remembers the trace ID beside every
//! latency, so the worst observation in a window links directly to its
//! trace in the ring (`TRACE <id>`), when that request was sampled.
//!
//! Recording is two relaxed atomic stores into a slot claimed by one
//! `fetch_add` — no locks, no allocation. A snapshot racing a writer
//! can pair a latency with the exemplar ID of the slot's previous
//! occupant; the surface is an observability aid, so best-effort pairs
//! are an accepted trade for a zero-wait request path (the percentile
//! ranks themselves are computed from latencies actually stored).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::registry::OpKind;

/// Latencies retained per operation window.
pub const WINDOW: usize = 1024;

/// One op kind's sliding latency window.
#[derive(Debug)]
struct SloWindow {
    latency_ns: Vec<AtomicU64>,
    exemplar: Vec<AtomicU64>,
    head: AtomicU64,
}

impl SloWindow {
    fn new() -> SloWindow {
        SloWindow {
            latency_ns: (0..WINDOW).map(|_| AtomicU64::new(0)).collect(),
            exemplar: (0..WINDOW).map(|_| AtomicU64::new(0)).collect(),
            head: AtomicU64::new(0),
        }
    }

    fn record(&self, latency_ns: u64, exemplar_bits: u64) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let i = (seq % WINDOW as u64) as usize;
        self.latency_ns[i].store(latency_ns, Ordering::Relaxed);
        self.exemplar[i].store(exemplar_bits, Ordering::Relaxed);
    }

    fn snapshot(&self) -> SloSnapshot {
        let total = self.head.load(Ordering::Relaxed);
        let filled = (total.min(WINDOW as u64)) as usize;
        let mut pairs: Vec<(u64, u64)> = (0..filled)
            .map(|i| {
                (
                    self.latency_ns[i].load(Ordering::Relaxed),
                    self.exemplar[i].load(Ordering::Relaxed),
                )
            })
            .collect();
        pairs.sort_unstable_by_key(|&(ns, _)| ns);
        let rank = |q: f64| -> u64 {
            if pairs.is_empty() {
                return 0;
            }
            let r = (q * pairs.len() as f64).ceil().max(1.0) as usize;
            pairs[r.min(pairs.len()) - 1].0
        };
        let worst = pairs.last().copied().unwrap_or((0, 0));
        SloSnapshot {
            total,
            window: filled as u64,
            samples: filled as u64,
            p50_ns: rank(0.50),
            p99_ns: rank(0.99),
            p999_ns: rank(0.999),
            p50_converged: filled >= 2,
            p99_converged: filled >= 100,
            p999_converged: filled >= 1000,
            worst_ns: worst.0,
            worst_exemplar: worst.1,
        }
    }
}

/// A frozen view of one operation window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloSnapshot {
    /// Requests ever recorded for this op kind.
    pub total: u64,
    /// Observations currently in the window (≤ [`WINDOW`]).
    pub window: u64,
    /// Effective sample count behind every percentile below — the same
    /// value as `window`, surfaced explicitly so a reader checking
    /// "is this p999 meaningful?" doesn't have to know the aliasing.
    pub samples: u64,
    /// Nearest-rank median latency over the window, nanoseconds.
    pub p50_ns: u64,
    /// Nearest-rank p99 latency over the window, nanoseconds.
    pub p99_ns: u64,
    /// Nearest-rank p99.9 latency over the window, nanoseconds.
    pub p999_ns: u64,
    /// Whether the window holds enough samples (≥ 2) for `p50_ns` to be
    /// a rank-distinct statistic rather than an alias of the extremes.
    pub p50_converged: bool,
    /// Whether the window holds ≥ 100 samples — below that,
    /// nearest-rank p99 silently equals the worst observation.
    pub p99_converged: bool,
    /// Whether the window holds ≥ 1000 samples — below that,
    /// nearest-rank p99.9 silently equals the worst observation.
    pub p999_converged: bool,
    /// Worst latency in the window, nanoseconds.
    pub worst_ns: u64,
    /// Trace-ID bits recorded beside the worst latency (0 when the
    /// request carried no trace).
    pub worst_exemplar: u64,
}

/// Per-[`OpKind`] sliding latency windows for the serve path.
#[derive(Debug)]
pub struct SloSurface {
    windows: Vec<SloWindow>,
}

impl Default for SloSurface {
    fn default() -> Self {
        SloSurface::new()
    }
}

impl SloSurface {
    /// Creates an empty surface (one window per op kind).
    pub fn new() -> SloSurface {
        SloSurface {
            windows: (0..OpKind::COUNT).map(|_| SloWindow::new()).collect(),
        }
    }

    /// Records one request: two relaxed stores, no locks. `exemplar`
    /// carries the request's trace-ID bits (0 for none).
    pub fn record(&self, kind: OpKind, latency_ns: u64, exemplar: u64) {
        self.windows[kind as usize].record(latency_ns, exemplar);
    }

    /// Snapshots one op kind's window.
    pub fn snapshot(&self, kind: OpKind) -> SloSnapshot {
        self.windows[kind as usize].snapshot()
    }

    /// Snapshots every op kind that has recorded at least one request.
    pub fn snapshots(&self) -> Vec<(OpKind, SloSnapshot)> {
        OpKind::ALL
            .into_iter()
            .map(|kind| (kind, self.snapshot(kind)))
            .filter(|(_, snap)| snap.total > 0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_surface_reports_nothing() {
        let slo = SloSurface::new();
        assert!(slo.snapshots().is_empty());
        let snap = slo.snapshot(OpKind::Knn);
        assert_eq!(snap.total, 0);
        assert_eq!(snap.p99_ns, 0);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let slo = SloSurface::new();
        for ns in 1..=100u64 {
            slo.record(OpKind::Range, ns * 1000, ns);
        }
        let snap = slo.snapshot(OpKind::Range);
        assert_eq!(snap.total, 100);
        assert_eq!(snap.window, 100);
        assert_eq!(snap.samples, 100);
        assert_eq!(snap.p50_ns, 50_000);
        assert_eq!(snap.p99_ns, 99_000);
        assert_eq!(snap.p999_ns, 100_000);
        assert_eq!(snap.worst_ns, 100_000);
        assert_eq!(snap.worst_exemplar, 100);
        // At 100 samples p99 is a real rank but p999 still aliases the
        // worst observation — the convergence flags say so.
        assert!(snap.p50_converged);
        assert!(snap.p99_converged);
        assert!(!snap.p999_converged);
    }

    #[test]
    fn sparse_windows_expose_unconverged_percentiles() {
        let slo = SloSurface::new();
        for ns in [10u64, 20, 30] {
            slo.record(OpKind::Knn, ns, 0);
        }
        let snap = slo.snapshot(OpKind::Knn);
        assert_eq!(snap.samples, 3);
        // With 3 samples every high percentile collapses to the worst
        // value; the flags make the aliasing visible to clients.
        assert_eq!(snap.p99_ns, snap.worst_ns);
        assert_eq!(snap.p999_ns, snap.worst_ns);
        assert!(snap.p50_converged);
        assert!(!snap.p99_converged);
        assert!(!snap.p999_converged);
    }

    #[test]
    fn full_window_converges_every_percentile() {
        let slo = SloSurface::new();
        for i in 0..WINDOW as u64 {
            slo.record(OpKind::Range, i + 1, 0);
        }
        let snap = slo.snapshot(OpKind::Range);
        assert_eq!(snap.samples, WINDOW as u64);
        assert!(snap.p999_converged);
        // 1024 samples: p999 rank = ceil(0.999·1024) = 1023 ≠ worst.
        assert_eq!(snap.p999_ns, 1023);
        assert_eq!(snap.worst_ns, 1024);
    }

    #[test]
    fn window_slides_past_capacity() {
        let slo = SloSurface::new();
        // Fill with slow observations, then overwrite with fast ones.
        for _ in 0..WINDOW {
            slo.record(OpKind::Knn, 1_000_000, 1);
        }
        for _ in 0..WINDOW {
            slo.record(OpKind::Knn, 1_000, 2);
        }
        let snap = slo.snapshot(OpKind::Knn);
        assert_eq!(snap.total, 2 * WINDOW as u64);
        assert_eq!(snap.window, WINDOW as u64);
        assert_eq!(snap.p99_ns, 1_000);
        assert_eq!(snap.worst_exemplar, 2);
    }

    #[test]
    fn kinds_are_independent() {
        let slo = SloSurface::new();
        slo.record(OpKind::Range, 5, 0);
        assert_eq!(slo.snapshot(OpKind::Knn).total, 0);
        assert_eq!(slo.snapshots().len(), 1);
    }
}
