//! Frozen registry state: snapshot types, merge, and the human-readable
//! stats table.
//!
//! A [`RegistrySnapshot`] is a plain data structure — no atomics, no
//! `Arc`s — so it can be merged across processes or scrape intervals,
//! serialized by the exporters ([`export`](crate::export)), and diffed by
//! the perf-regression gate ([`gate`](crate::gate)).

use std::fmt::Write as _;

use crate::export::thousands;
use crate::histogram::HistogramSnapshot;
use crate::registry::OpKind;

/// Frozen telemetry for one operation kind of one index.
#[derive(Debug, Clone, PartialEq)]
pub struct OpSnapshot {
    /// Which operation this describes.
    pub kind: OpKind,
    /// Completed operations.
    pub ops: u64,
    /// Wall-clock latency distribution, nanoseconds per operation.
    pub latency_ns: HistogramSnapshot,
    /// Distance-computation distribution, evaluations per operation.
    pub distances: HistogramSnapshot,
    /// Early-abandoned evaluations (subset of the distance totals).
    pub abandoned: u64,
    /// Estimated arithmetic done by the abandoned evaluations, in units
    /// of one full evaluation.
    pub abandoned_work: f64,
    /// Budgeted operations whose search budget ran out before the
    /// traversal finished. Zero for indexes that never run budgeted
    /// queries.
    pub budget_exhausted: u64,
    /// Self-reported recall estimates of budgeted operations, in basis
    /// points (`0..=10000`; see
    /// [`RECALL_SCALE`](crate::registry::RECALL_SCALE)). Empty for
    /// indexes that never run budgeted queries.
    pub estimated_recall_bp: HistogramSnapshot,
}

impl OpSnapshot {
    /// An empty snapshot for `kind`.
    pub fn empty(kind: OpKind) -> Self {
        OpSnapshot {
            kind,
            ops: 0,
            latency_ns: HistogramSnapshot::default(),
            distances: HistogramSnapshot::default(),
            abandoned: 0,
            abandoned_work: 0.0,
            budget_exhausted: 0,
            estimated_recall_bp: HistogramSnapshot::default(),
        }
    }

    /// Accumulates another snapshot of the same kind.
    ///
    /// # Panics
    ///
    /// Panics when the kinds differ.
    pub fn merge(&mut self, other: &OpSnapshot) {
        assert_eq!(self.kind, other.kind, "cannot merge different op kinds");
        self.ops += other.ops;
        self.latency_ns.merge(&other.latency_ns);
        self.distances.merge(&other.distances);
        self.abandoned += other.abandoned;
        self.abandoned_work += other.abandoned_work;
        self.budget_exhausted += other.budget_exhausted;
        self.estimated_recall_bp.merge(&other.estimated_recall_bp);
    }
}

/// Frozen telemetry for one labeled index.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexSnapshot {
    /// The index label.
    pub label: String,
    /// Per-operation snapshots; kinds with zero traffic are omitted.
    pub ops: Vec<OpSnapshot>,
}

impl IndexSnapshot {
    /// The snapshot for one operation kind, if it saw traffic.
    pub fn op(&self, kind: OpKind) -> Option<&OpSnapshot> {
        self.ops.iter().find(|op| op.kind == kind)
    }

    /// Accumulates another index snapshot (same label) into this one.
    pub fn merge(&mut self, other: &IndexSnapshot) {
        for src in &other.ops {
            match self.ops.iter_mut().find(|op| op.kind == src.kind) {
                Some(dst) => dst.merge(src),
                None => self.ops.push(src.clone()),
            }
        }
        self.ops.sort_by_key(|op| op.kind as usize);
    }
}

/// A frozen gauge reading: an instantaneous value (serving generation,
/// in-flight queries, …) rather than a monotonic counter.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSnapshot {
    /// The gauge name (e.g. `"serve/generation"`).
    pub name: String,
    /// The value at snapshot time.
    pub value: i64,
}

/// A frozen view of a whole [`MetricsRegistry`](crate::MetricsRegistry).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// One entry per registered index, in registration order.
    pub indexes: Vec<IndexSnapshot>,
    /// Gauge readings at snapshot time, in registration order.
    pub gauges: Vec<GaugeSnapshot>,
}

impl RegistrySnapshot {
    /// The snapshot for one index label, if present.
    pub fn index(&self, label: &str) -> Option<&IndexSnapshot> {
        self.indexes.iter().find(|i| i.label == label)
    }

    /// The reading of one gauge, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Accumulates another snapshot (e.g. from another process or an
    /// earlier scrape) into this one, matching indexes by label. Gauges
    /// are instantaneous, not additive: `other`'s reading wins when both
    /// snapshots carry the same gauge (treat `other` as the newer scrape).
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for src in &other.indexes {
            match self.indexes.iter_mut().find(|i| i.label == src.label) {
                Some(dst) => dst.merge(src),
                None => self.indexes.push(src.clone()),
            }
        }
        for src in &other.gauges {
            match self.gauges.iter_mut().find(|g| g.name == src.name) {
                Some(dst) => dst.value = src.value,
                None => self.gauges.push(src.clone()),
            }
        }
    }

    /// Renders the per-index, per-operation stats table printed by
    /// `vantage stats --metrics`: operation count, p50/p95/p99 latency,
    /// and distance-count percentiles, plus abandoned-evaluation rates
    /// where the kernel layer reported any.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if self.indexes.iter().all(|i| i.ops.is_empty()) && self.gauges.is_empty() {
            out.push_str("no telemetry recorded\n");
            return out;
        }
        if self.indexes.iter().any(|i| !i.ops.is_empty()) {
            let _ = writeln!(
                out,
                "{:<14} {:<12} {:>10}  {:>24}  {:>26}  {:>10}",
                "index", "op", "count", "latency p50/p95/p99", "distances p50/p95/p99", "abandoned"
            );
            let _ = writeln!(out, "{}", "-".repeat(104));
        }
        for index in &self.indexes {
            for op in &index.ops {
                let lat = render_percentiles(&op.latency_ns, format_ns);
                let dist = render_percentiles(&op.distances, thousands);
                let abandoned = if op.abandoned == 0 {
                    "-".to_string()
                } else {
                    thousands(op.abandoned)
                };
                let _ = writeln!(
                    out,
                    "{:<14} {:<12} {:>10}  {:>24}  {:>26}  {:>10}",
                    index.label,
                    op.kind.name(),
                    thousands(op.ops),
                    lat,
                    dist,
                    abandoned
                );
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "{:<30} {:>12}", "gauge", "value");
            let _ = writeln!(out, "{}", "-".repeat(43));
            for gauge in &self.gauges {
                let _ = writeln!(out, "{:<30} {:>12}", gauge.name, gauge.value);
            }
        }
        out
    }
}

fn render_percentiles(h: &HistogramSnapshot, fmt: impl Fn(u64) -> String) -> String {
    match (h.percentile(0.5), h.percentile(0.95), h.percentile(0.99)) {
        (Some(p50), Some(p95), Some(p99)) => {
            format!("{} / {} / {}", fmt(p50), fmt(p95), fmt(p99))
        }
        _ => "-".to_string(),
    }
}

/// Formats a nanosecond value at a human scale (ns/µs/ms/s).
pub fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{CostDelta, MetricsRegistry};
    use std::time::Duration;

    fn sample() -> RegistrySnapshot {
        let registry = MetricsRegistry::new();
        let m = registry.index("mvp");
        for i in 0..100u64 {
            m.record(
                OpKind::Knn,
                Duration::from_micros(100 + i),
                CostDelta {
                    computations: 200 + i,
                    abandoned: i % 3,
                    abandoned_work: 0.1,
                },
            );
        }
        registry.snapshot()
    }

    #[test]
    fn table_contains_percentile_columns() {
        let table = sample().render_table();
        assert!(table.contains("mvp"), "{table}");
        assert!(table.contains("knn"), "{table}");
        assert!(table.contains("latency p50/p95/p99"), "{table}");
        assert!(table.contains("µs"), "{table}");
    }

    #[test]
    fn empty_table_says_so() {
        assert!(RegistrySnapshot::default()
            .render_table()
            .contains("no telemetry recorded"));
    }

    #[test]
    fn merge_accumulates_ops_and_new_labels() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        let op = a.index("mvp").unwrap().op(OpKind::Knn).unwrap();
        assert_eq!(op.ops, 200);
        assert_eq!(op.distances.count, 200);

        let registry = MetricsRegistry::new();
        registry.index("vp").record(
            OpKind::Build,
            Duration::from_millis(1),
            CostDelta::default(),
        );
        a.merge(&registry.snapshot());
        assert!(a.index("vp").is_some());
    }

    #[test]
    #[should_panic(expected = "different op kinds")]
    fn op_merge_rejects_kind_mismatch() {
        let mut a = OpSnapshot::empty(OpKind::Range);
        a.merge(&OpSnapshot::empty(OpKind::Knn));
    }

    #[test]
    fn ns_formatting_scales() {
        assert_eq!(format_ns(5), "5ns");
        assert_eq!(format_ns(5_000), "5.0µs");
        assert_eq!(format_ns(5_000_000), "5.00ms");
        assert_eq!(format_ns(5_000_000_000), "5.00s");
    }
}
