//! Registry concurrency: many threads hammer one registry; after they
//! join, the snapshot totals are exact — nothing lost, nothing double
//! counted, no torn histograms.

use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::Duration;

use vantage_telemetry::{CostDelta, MetricsRegistry, OpKind};

const THREADS: usize = 8;
// Divisible by OpKind::COUNT (6) and by 3, so the per-kind round-robin
// and the `i % 3` abandonment pattern below come out exact.
const OPS_PER_THREAD: u64 = 5_004;

#[test]
fn concurrent_recording_snapshots_exactly() {
    let registry = MetricsRegistry::new();
    let distance_sum = AtomicU64::new(0);

    thread::scope(|scope| {
        for t in 0..THREADS {
            let registry = &registry;
            let distance_sum = &distance_sum;
            scope.spawn(move || {
                // Every thread races the same get-or-create path.
                let metrics = registry.index("shared");
                for i in 0..OPS_PER_THREAD {
                    let kind = OpKind::ALL[(t as u64 + i) as usize % OpKind::COUNT];
                    let computations = (t as u64) * 31 + i % 97;
                    distance_sum.fetch_add(computations, Ordering::Relaxed);
                    metrics.record(
                        kind,
                        Duration::from_nanos(100 + i),
                        CostDelta {
                            computations,
                            abandoned: i % 3,
                            abandoned_work: 0.5,
                        },
                    );
                }
            });
        }
    });

    let snap = registry.snapshot();
    assert_eq!(snap.indexes.len(), 1, "racing registration must dedupe");
    let shared = snap.index("shared").unwrap();

    let total_ops: u64 = shared.ops.iter().map(|op| op.ops).sum();
    assert_eq!(total_ops, THREADS as u64 * OPS_PER_THREAD);

    // Each kind gets exactly 1/COUNT of each thread's ops (the
    // round-robin above visits every kind equally).
    for kind in OpKind::ALL {
        let op = shared.op(kind).unwrap();
        assert_eq!(
            op.ops,
            THREADS as u64 * OPS_PER_THREAD / OpKind::COUNT as u64
        );
        assert_eq!(
            op.latency_ns.count, op.ops,
            "latency histogram lost samples"
        );
        assert_eq!(
            op.distances.count, op.ops,
            "distance histogram lost samples"
        );
        let buckets: u64 = op.latency_ns.buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(buckets, op.ops, "bucket counts disagree with total");
    }

    let recorded_distances: u64 = shared.ops.iter().map(|op| op.distances.sum).sum();
    assert_eq!(recorded_distances, distance_sum.load(Ordering::Relaxed));

    let abandoned: u64 = shared.ops.iter().map(|op| op.abandoned).sum();
    // i % 3 over 0..5004 sums to (5004 / 3) × (0 + 1 + 2) per thread.
    assert_eq!(abandoned, THREADS as u64 * OPS_PER_THREAD);

    let work: f64 = shared.ops.iter().map(|op| op.abandoned_work).sum();
    // 0.5 recorded only when abandoned > 0: i % 3 != 0 for 2/3 of ops.
    let expected = THREADS as f64 * (OPS_PER_THREAD as f64 * 2.0 / 3.0) * 0.5;
    assert!((work - expected).abs() < 1e-3, "work {work} != {expected}");
}

#[test]
fn concurrent_registration_of_distinct_labels() {
    let registry = MetricsRegistry::new();
    thread::scope(|scope| {
        for t in 0..THREADS {
            let registry = &registry;
            scope.spawn(move || {
                for r in 0..50 {
                    let metrics = registry.index(&format!("idx-{}", (t + r) % 10));
                    metrics.record(
                        OpKind::Range,
                        Duration::from_nanos(50),
                        CostDelta::default(),
                    );
                }
            });
        }
    });
    let snap = registry.snapshot();
    assert_eq!(snap.indexes.len(), 10);
    let total: u64 = snap
        .indexes
        .iter()
        .flat_map(|i| i.ops.iter())
        .map(|op| op.ops)
        .sum();
    assert_eq!(total, THREADS as u64 * 50);
}

#[test]
fn snapshot_during_traffic_is_self_consistent() {
    let registry = MetricsRegistry::new();
    thread::scope(|scope| {
        for _ in 0..4 {
            let registry = &registry;
            scope.spawn(move || {
                let metrics = registry.index("live");
                for i in 0..2_000u64 {
                    metrics.record(
                        OpKind::Knn,
                        Duration::from_nanos(i),
                        CostDelta {
                            computations: 10,
                            ..CostDelta::default()
                        },
                    );
                }
            });
        }
        // Interleave snapshots with live traffic: totals must never
        // exceed the final tally and histograms must stay internally
        // consistent (bucket sum == count).
        for _ in 0..20 {
            let snap = registry.snapshot();
            if let Some(op) = snap.index("live").and_then(|i| i.op(OpKind::Knn)) {
                assert!(op.ops <= 8_000);
                let buckets: u64 = op.latency_ns.buckets.iter().map(|&(_, c)| c).sum();
                assert_eq!(buckets, op.latency_ns.count);
            }
        }
    });
    let op = registry.snapshot();
    let op = op.index("live").unwrap().op(OpKind::Knn).unwrap();
    assert_eq!(op.ops, 8_000);
    assert_eq!(op.distances.sum, 80_000);
}
