//! Property tests for the log-linear histogram: bucket boundary
//! exactness, percentile monotonicity, and record/merge equivalence.

use proptest::collection::vec;
use proptest::prelude::*;

use vantage_telemetry::histogram::{bucket_index, bucket_lower, bucket_upper, AtomicHistogram};

fn record_all(values: &[u64]) -> vantage_telemetry::HistogramSnapshot {
    let h = AtomicHistogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_value_lands_in_its_bucket_bounds(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(bucket_lower(i) <= v, "lower({i}) > {v}");
        prop_assert!(v <= bucket_upper(i), "{v} > upper({i})");
    }

    #[test]
    fn bucket_boundaries_are_exact(v in any::<u64>()) {
        // A bucket's lower bound maps to that bucket, and the value just
        // below it maps to the previous bucket — boundaries are never
        // blurred by the log-linear rounding.
        let i = bucket_index(v);
        let lo = bucket_lower(i);
        prop_assert_eq!(bucket_index(lo), i);
        if lo > 0 {
            prop_assert_eq!(bucket_index(lo - 1), i - 1);
        }
        prop_assert_eq!(bucket_index(bucket_upper(i)), i);
    }

    #[test]
    fn quantization_error_is_bounded(v in 1u64..=u64::MAX) {
        let upper = bucket_upper(bucket_index(v));
        // Upper bound overestimates the value by at most one linear
        // sub-bucket width: < 2^-SUB_BITS relative (3.2% at SUB_BITS=5).
        let rel = (upper - v) as f64 / v as f64;
        prop_assert!(rel < 1.0 / 31.0, "value {v} upper {upper} rel {rel}");
    }

    #[test]
    fn summary_fields_match_the_recorded_values(values in vec(any::<u64>(), 1..200)) {
        let snap = record_all(&values);
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.sum, values.iter().fold(0u64, |a, &v| a.wrapping_add(v)));
        prop_assert_eq!(snap.min, *values.iter().min().unwrap());
        prop_assert_eq!(snap.max, *values.iter().max().unwrap());
        let bucket_total: u64 = snap.buckets.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(bucket_total, snap.count);
    }

    #[test]
    fn percentiles_are_monotonic_and_bounded(values in vec(0u64..1_000_000_000, 1..200)) {
        let snap = record_all(&values);
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
        let mut last = 0u64;
        for q in qs {
            let p = snap.percentile(q).unwrap();
            prop_assert!(p >= last, "percentile({q}) = {p} < previous {last}");
            prop_assert!(p >= snap.min && p <= snap.max);
            last = p;
        }
        prop_assert_eq!(snap.percentile(1.0).unwrap(), snap.max);
    }

    #[test]
    fn percentile_tracks_true_rank_within_bucket_error(
        values in vec(1u64..1_000_000_000, 1..200),
        q in 0.0f64..1.0,
    ) {
        let snap = record_all(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let truth = sorted[rank - 1];
        let est = snap.percentile(q).unwrap();
        // The estimate may only err by the quantization of truth's bucket.
        prop_assert!(est >= truth.min(bucket_lower(bucket_index(truth))));
        prop_assert!(est <= bucket_upper(bucket_index(truth)).max(truth));
    }

    #[test]
    fn merge_equals_joint_recording(
        a in vec(any::<u64>(), 0..150),
        b in vec(any::<u64>(), 0..150),
    ) {
        let mut merged = record_all(&a);
        merged.merge(&record_all(&b));
        let mut joint: Vec<u64> = a.clone();
        joint.extend_from_slice(&b);
        prop_assert_eq!(merged, record_all(&joint));
    }
}
