//! Golden-file pin of the Prometheus text exposition format.
//!
//! The scrape format is consumed by external tooling, so its exact
//! shape — `# HELP`/`# TYPE` pairs, label escaping, cumulative
//! `_bucket` series closed by `le="+Inf"`, trailing newline — is a
//! compatibility contract. This test renders a fully deterministic
//! fixture and compares byte-for-byte against `golden/prometheus.txt`.
//!
//! To regenerate after an intentional format change:
//! `GOLDEN_BLESS=1 cargo test -p vantage-telemetry --test prometheus_golden`

use std::time::Duration;

use vantage_telemetry::export::to_prometheus;
use vantage_telemetry::{CostDelta, MetricsRegistry, OpKind, SloSurface};

fn fixture() -> String {
    let registry = MetricsRegistry::new();
    let mvp = registry.index("mvp");
    for (us, computations) in [(80, 120), (95, 150), (1200, 4000)] {
        mvp.record(
            OpKind::Range,
            Duration::from_micros(us),
            CostDelta {
                computations,
                abandoned: 2,
                abandoned_work: 0.75,
            },
        );
    }
    mvp.record(
        OpKind::Build,
        Duration::from_millis(12),
        CostDelta {
            computations: 40_000,
            ..CostDelta::default()
        },
    );
    let vp = registry.index("needs\"escaping\\here");
    vp.record(
        OpKind::Knn,
        Duration::from_micros(500),
        CostDelta::default(),
    );
    vp.record_budgeted(
        OpKind::Knn,
        Duration::from_micros(25),
        CostDelta {
            computations: 50,
            ..CostDelta::default()
        },
        true,
        0.9,
    );
    registry.gauge("serve/generation").set(2);
    registry.gauge("serve/in_flight").set(0);
    // SLO surface gauges as the serve loop exports them — including the
    // effective sample count, so scrapers can tell a converged p999
    // from a thin-window alias of the worst observation.
    let slo = SloSurface::new();
    for us in [80u64, 95, 110, 1200] {
        slo.record(OpKind::Knn, us * 1000, 0);
    }
    let snap = slo.snapshot(OpKind::Knn);
    for (stat, value) in [
        ("p50_ns", snap.p50_ns),
        ("p99_ns", snap.p99_ns),
        ("p999_ns", snap.p999_ns),
        ("samples", snap.samples),
    ] {
        registry.gauge(&format!("slo/knn/{stat}")).set(value as i64);
    }
    to_prometheus(&registry.snapshot())
}

#[test]
fn prometheus_exposition_matches_golden() {
    let actual = fixture();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/prometheus.txt");
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::write(path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(path).expect("read golden (run with GOLDEN_BLESS=1)");
    assert_eq!(
        actual, expected,
        "Prometheus exposition drifted from tests/golden/prometheus.txt; \
         if intentional, regenerate with GOLDEN_BLESS=1"
    );
}

#[test]
fn fixture_is_deterministic() {
    assert_eq!(fixture(), fixture());
}
