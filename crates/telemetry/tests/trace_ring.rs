//! Concurrency contract of the trace ring: writers never block the
//! request path, and readers only ever observe complete records — no
//! torn traces — under multi-threaded churn.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use vantage_core::span::{SpanRecord, TraceId};
use vantage_telemetry::{TraceRecord, TraceRing};

/// Builds a record whose every field is derived from `seed`, so a reader
/// can verify internal consistency and detect tearing.
fn coherent_record(seed: u64) -> TraceRecord {
    TraceRecord {
        id: TraceId::from_bits(seed),
        verb: format!("VERB{seed}"),
        op: "knn".into(),
        generation: seed,
        total_ns: seed * 1000,
        results: seed,
        sampled: true,
        slow: false,
        spans: (0..(seed % 7) as u32)
            .map(|i| SpanRecord {
                name: "shard",
                shard: Some(i),
                start_ns: seed,
                duration_ns: seed,
                distances: seed,
                abandoned: 0,
                abandoned_work: 0.0,
            })
            .collect(),
        dropped_spans: 0,
        profile: None,
    }
}

fn assert_coherent(record: &TraceRecord) {
    let seed = record.id.bits();
    assert_eq!(record.verb, format!("VERB{seed}"), "torn verb");
    assert_eq!(record.generation, seed, "torn generation");
    assert_eq!(record.total_ns, seed * 1000, "torn latency");
    assert_eq!(record.results, seed, "torn results");
    assert_eq!(record.spans.len(), (seed % 7) as usize, "torn span vec");
    for (i, span) in record.spans.iter().enumerate() {
        assert_eq!(span.shard, Some(i as u32), "torn span order");
        assert_eq!(span.distances, seed, "torn span payload");
    }
}

#[test]
fn concurrent_churn_yields_only_complete_records() {
    const WRITERS: usize = 4;
    const READERS: usize = 2;
    const PER_WRITER: u64 = 5_000;

    let ring = Arc::new(TraceRing::new(64));
    let stop = Arc::new(AtomicBool::new(false));

    let mut handles = Vec::new();
    for w in 0..WRITERS as u64 {
        let ring = Arc::clone(&ring);
        handles.push(thread::spawn(move || {
            for i in 0..PER_WRITER {
                // Distinct seeds per writer so every retained record is
                // attributable.
                ring.push(coherent_record(w * PER_WRITER + i + 1));
            }
        }));
    }
    let mut readers = Vec::new();
    for _ in 0..READERS {
        let ring = Arc::clone(&ring);
        let stop = Arc::clone(&stop);
        readers.push(thread::spawn(move || {
            let mut seen = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for record in ring.recent(16) {
                    assert_coherent(&record);
                    seen += 1;
                }
                for record in ring.slowest(4) {
                    assert_coherent(&record);
                }
            }
            seen
        }));
    }

    for handle in handles {
        handle.join().expect("writer panicked");
    }
    stop.store(true, Ordering::Relaxed);
    let mut observed = 0;
    for reader in readers {
        observed += reader.join().expect("reader panicked (torn record?)");
    }
    assert!(observed > 0, "readers never saw a record");

    // Every push either landed or was counted as dropped — none lost
    // silently, and the request path never waited on a reader.
    assert_eq!(ring.pushed(), (WRITERS as u64) * PER_WRITER);
    let retained = ring.recent(usize::MAX).len() as u64;
    assert!(retained <= 64);
    assert!(ring.dropped() <= ring.pushed());
    // After the dust settles everything still retained is coherent and
    // findable by ID.
    for record in ring.recent(usize::MAX) {
        assert_coherent(&record);
        let found = ring.find(record.id).expect("retained record findable");
        assert_eq!(found.id, record.id);
    }
}

#[test]
fn writer_throughput_is_not_gated_by_a_parked_reader() {
    // A reader holding clones of every record must not slow pushes: the
    // ring hands out Arcs, so a slow consumer extends lifetimes, never
    // blocks the writer.
    let ring = Arc::new(TraceRing::new(8));
    for seed in 1..=8 {
        ring.push(coherent_record(seed));
    }
    let parked: Vec<_> = ring.recent(8);
    assert_eq!(parked.len(), 8);
    for seed in 9..=100u64 {
        ring.push(coherent_record(seed));
    }
    // The parked clones still read coherently after full overwrite.
    for record in &parked {
        assert_coherent(record);
    }
    assert_eq!(ring.pushed(), 100);
}
