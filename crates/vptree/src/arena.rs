//! Flat, index-addressed node storage.
//!
//! The tree's nodes live in a handful of contiguous, fixed-stride
//! arrays instead of a `Vec` of enum nodes with per-node heap
//! allocations (the layout SNIPPETS' `MVPNode` start/end offsets point
//! at). Every array is addressed by plain integer arithmetic:
//!
//! * `meta[id]` — one `u32` per node: bit 31 set ⇒ leaf, the low
//!   31 bits are the node's *rank* among nodes of its class (its index
//!   into the class-segregated arrays below);
//! * internal rank `r`: `vantage[r]`, `children[r·order ..]` (child
//!   arena ids, [`NO_CHILD`] for empty partitions) and
//!   `cutoffs[r·(order−1) ..]`;
//! * leaf rank `r`: `leaf_spans[2r] .. +leaf_spans[2r+1]` delimits the
//!   leaf's bucket inside one shared `leaf_items` buffer.
//!
//! The same six arrays exist in two forms: [`VpArena`] owns them
//! (`Vec`s, the materialized tree), [`VpArenaView`] borrows them —
//! possibly straight out of a memory-mapped snapshot section. All
//! search, validation and statistics code is written against the view,
//! so the materialized and zero-copy paths run byte-for-byte the same
//! kernel.

use crate::node::Node;

/// Child-slot sentinel for an empty partition (`Option<NodeId>::None`
/// in the old pointer-rich layout).
pub const NO_CHILD: u32 = u32::MAX;

/// Bit 31 of `meta`: set for leaves.
const LEAF_BIT: u32 = 1 << 31;

/// Packs a node-class flag and class rank into one `meta` word.
#[inline]
fn pack_meta(is_leaf: bool, rank: u32) -> u32 {
    debug_assert!(rank < LEAF_BIT);
    if is_leaf {
        rank | LEAF_BIT
    } else {
        rank
    }
}

/// Owned flat node storage of a vp-tree. See the module docs for the
/// layout.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VpArena {
    pub(crate) order: u32,
    pub(crate) meta: Vec<u32>,
    pub(crate) vantage: Vec<u32>,
    pub(crate) children: Vec<u32>,
    pub(crate) cutoffs: Vec<f64>,
    pub(crate) leaf_spans: Vec<u32>,
    pub(crate) leaf_items: Vec<u32>,
}

impl VpArena {
    /// Packs a built node list (the construction IR) into flat arrays.
    ///
    /// # Panics
    ///
    /// Panics if the node shapes do not match `order` or the arena would
    /// exceed 2³¹ − 1 nodes; construction can produce neither.
    pub(crate) fn from_nodes(order: usize, nodes: &[Node]) -> VpArena {
        assert!(
            nodes.len() < LEAF_BIT as usize,
            "node arena exceeds 2^31 - 1 nodes"
        );
        let mut arena = VpArena {
            order: order as u32,
            meta: Vec::with_capacity(nodes.len()),
            vantage: Vec::new(),
            children: Vec::new(),
            cutoffs: Vec::new(),
            leaf_spans: Vec::new(),
            leaf_items: Vec::new(),
        };
        for node in nodes {
            match node {
                Node::Internal {
                    vantage,
                    cutoffs,
                    children,
                } => {
                    assert_eq!(children.len(), order, "child slots match order");
                    assert_eq!(cutoffs.len() + 1, order, "cutoffs match order");
                    arena
                        .meta
                        .push(pack_meta(false, arena.vantage.len() as u32));
                    arena.vantage.push(*vantage);
                    arena
                        .children
                        .extend(children.iter().map(|c| c.unwrap_or(NO_CHILD)));
                    arena.cutoffs.extend_from_slice(cutoffs);
                }
                Node::Leaf { items } => {
                    arena
                        .meta
                        .push(pack_meta(true, (arena.leaf_spans.len() / 2) as u32));
                    arena.leaf_spans.push(arena.leaf_items.len() as u32);
                    arena.leaf_spans.push(items.len() as u32);
                    arena.leaf_items.extend_from_slice(items);
                }
            }
        }
        arena
    }

    /// Assembles an arena from raw flat arrays (the snapshot decode
    /// path). No validation happens here — callers must pass the result
    /// through the tree-level structural validation before searching.
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw_arrays(
        order: u32,
        meta: Vec<u32>,
        vantage: Vec<u32>,
        children: Vec<u32>,
        cutoffs: Vec<f64>,
        leaf_spans: Vec<u32>,
        leaf_items: Vec<u32>,
    ) -> VpArena {
        VpArena {
            order,
            meta,
            vantage,
            children,
            cutoffs,
            leaf_spans,
            leaf_items,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// Whether the arena holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// Borrows the arena as a view — the form every kernel consumes.
    pub fn view(&self) -> VpArenaView<'_> {
        VpArenaView {
            order: self.order as usize,
            meta: &self.meta,
            vantage: &self.vantage,
            children: &self.children,
            cutoffs: &self.cutoffs,
            leaf_spans: &self.leaf_spans,
            leaf_items: &self.leaf_items,
        }
    }
}

/// Borrowed flat node storage — over a [`VpArena`] or directly over the
/// typed slices of a snapshot section.
#[derive(Debug, Clone, Copy)]
pub struct VpArenaView<'a> {
    pub(crate) order: usize,
    pub(crate) meta: &'a [u32],
    pub(crate) vantage: &'a [u32],
    pub(crate) children: &'a [u32],
    pub(crate) cutoffs: &'a [f64],
    pub(crate) leaf_spans: &'a [u32],
    pub(crate) leaf_items: &'a [u32],
}

/// One resolved node of a [`VpArenaView`].
#[derive(Debug, Clone, Copy)]
pub enum VpNodeView<'a> {
    /// Interior node: vantage point, `order − 1` cutoffs, `order` child
    /// slots ([`NO_CHILD`] marks an empty partition).
    Internal {
        /// Item id of the node's vantage point.
        vantage: u32,
        /// Partition boundaries, non-decreasing.
        cutoffs: &'a [f64],
        /// Child arena ids, one slot per partition.
        children: &'a [u32],
    },
    /// Leaf bucket of item ids.
    Leaf {
        /// Item ids stored in this bucket.
        items: &'a [u32],
    },
}

impl<'a> VpArenaView<'a> {
    /// Assembles a view from raw borrowed arrays (the zero-copy snapshot
    /// path). Like [`VpArena::from_raw_arrays`], shapes must have been
    /// validated before the view is searched.
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw_parts(
        order: usize,
        meta: &'a [u32],
        vantage: &'a [u32],
        children: &'a [u32],
        cutoffs: &'a [f64],
        leaf_spans: &'a [u32],
        leaf_items: &'a [u32],
    ) -> Self {
        VpArenaView {
            order,
            meta,
            vantage,
            children,
            cutoffs,
            leaf_spans,
            leaf_items,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// Whether the arena holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// The tree fanout the strides are computed with.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Number of interior nodes.
    pub fn internal_count(&self) -> usize {
        self.vantage.len()
    }

    /// Number of leaf nodes.
    pub fn leaf_count(&self) -> usize {
        self.leaf_spans.len() / 2
    }

    /// The per-node meta words (leaf bit + class rank).
    pub fn meta(&self) -> &'a [u32] {
        self.meta
    }

    /// Vantage-point item ids, one per interior node.
    pub fn vantage(&self) -> &'a [u32] {
        self.vantage
    }

    /// The contiguous child-id buffer (`internal_count × order`).
    pub fn children(&self) -> &'a [u32] {
        self.children
    }

    /// The contiguous cutoff buffer (`internal_count × (order − 1)`).
    pub fn cutoffs(&self) -> &'a [f64] {
        self.cutoffs
    }

    /// Leaf bucket spans: `(start, len)` per leaf into `leaf_items`.
    pub fn leaf_spans(&self) -> &'a [u32] {
        self.leaf_spans
    }

    /// The shared leaf bucket buffer.
    pub fn leaf_items(&self) -> &'a [u32] {
        self.leaf_items
    }

    /// Resolves node `id` into its class arrays.
    #[inline]
    pub fn node(&self, id: u32) -> VpNodeView<'a> {
        let meta = self.meta[id as usize];
        let rank = (meta & !LEAF_BIT) as usize;
        if meta & LEAF_BIT != 0 {
            let start = self.leaf_spans[2 * rank] as usize;
            let len = self.leaf_spans[2 * rank + 1] as usize;
            VpNodeView::Leaf {
                items: &self.leaf_items[start..start + len],
            }
        } else {
            let m = self.order;
            VpNodeView::Internal {
                vantage: self.vantage[rank],
                cutoffs: &self.cutoffs[rank * (m - 1)..(rank + 1) * (m - 1)],
                children: &self.children[rank * m..(rank + 1) * m],
            }
        }
    }

    /// Whether node `id` is a leaf.
    #[inline]
    pub fn is_leaf(&self, id: u32) -> bool {
        self.meta[id as usize] & LEAF_BIT != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> VpArena {
        // root (internal, order 2) -> [leaf {1,2}, leaf {3}]
        VpArena::from_nodes(
            2,
            &[
                Node::Internal {
                    vantage: 0,
                    cutoffs: vec![1.5],
                    children: vec![Some(1), Some(2)],
                },
                Node::Leaf { items: vec![1, 2] },
                Node::Leaf { items: vec![3] },
            ],
        )
    }

    #[test]
    fn packs_nodes_into_flat_arrays() {
        let arena = sample();
        assert_eq!(arena.len(), 3);
        assert_eq!(arena.vantage, vec![0]);
        assert_eq!(arena.children, vec![1, 2]);
        assert_eq!(arena.cutoffs, vec![1.5]);
        assert_eq!(arena.leaf_spans, vec![0, 2, 2, 1]);
        assert_eq!(arena.leaf_items, vec![1, 2, 3]);
    }

    #[test]
    fn view_resolves_both_classes() {
        let arena = sample();
        let view = arena.view();
        assert!(!view.is_leaf(0));
        match view.node(0) {
            VpNodeView::Internal {
                vantage,
                cutoffs,
                children,
            } => {
                assert_eq!(vantage, 0);
                assert_eq!(cutoffs, &[1.5]);
                assert_eq!(children, &[1, 2]);
            }
            VpNodeView::Leaf { .. } => panic!("node 0 is internal"),
        }
        match view.node(2) {
            VpNodeView::Leaf { items } => assert_eq!(items, &[3]),
            VpNodeView::Internal { .. } => panic!("node 2 is a leaf"),
        }
    }

    #[test]
    fn empty_partitions_are_no_child() {
        let arena = VpArena::from_nodes(
            2,
            &[
                Node::Internal {
                    vantage: 0,
                    cutoffs: vec![0.5],
                    children: vec![None, Some(1)],
                },
                Node::Leaf { items: vec![1] },
            ],
        );
        assert_eq!(arena.children, vec![NO_CHILD, 1]);
    }
}
