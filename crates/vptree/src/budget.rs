//! Budgeted best-effort kNN on vp-trees.
//!
//! The traversal is the same best-first branch-and-bound as exact kNN;
//! the only difference is a [`BudgetMeter`] charged before every metric
//! distance. When a charge is refused the search stops and the *frontier
//! bound* — the smallest lower bound over all unexplored work — is
//! folded into the recall estimate: any returned neighbor at distance ≤
//! the frontier provably belongs to the exact answer.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use vantage_core::budget::{
    finish_budgeted, BudgetMeter, BudgetedKnn, BudgetedSearch, SearchBudget,
};
use vantage_core::util::OrdF64;
use vantage_core::{BoundedMetric, KnnCollector, MetricIndex};

use crate::node::{Node, NodeId};
use crate::tree::VpTree;

/// Probability that an *uncertain* budgeted result (distance above the
/// frontier bound) is nevertheless a true k-nearest neighbor. Calibrated
/// against the measured recall-vs-cost curve of the `budget` experiment
/// in `vantage-experiments`; must stay below 1 so inexact answers never
/// report perfect recall.
const GAMMA: f64 = 0.85; // measured 0.889 at the 50%-cost calibration point

impl<T, M: BoundedMetric<T>> BudgetedSearch<T> for VpTree<T, M> {
    fn knn_budgeted(&self, query: &T, k: usize, budget: SearchBudget) -> BudgetedKnn {
        let mut meter = BudgetMeter::new(budget);
        let mut collector = KnnCollector::new(k);
        let mut frontier = f64::INFINITY;
        let mut heap: BinaryHeap<Reverse<(OrdF64, NodeId)>> = BinaryHeap::new();
        if k > 0 {
            if let Some(root) = self.root {
                heap.push(Reverse((OrdF64(0.0), root)));
            }
        }
        'search: while let Some(Reverse((OrdF64(bound), node))) = heap.pop() {
            if bound > collector.radius() {
                // Exact termination: every remaining entry is provably
                // outside the answer, no uncertainty to account.
                heap.clear();
                break;
            }
            match self.node(node) {
                Node::Leaf { items } => {
                    for &id in items {
                        if !meter.try_charge() {
                            // This candidate and the rest of the leaf
                            // sit in a subtree admitted at `bound`.
                            frontier = frontier.min(bound);
                            break 'search;
                        }
                        if let (Some(d), _) = self.metric.distance_within_frac(
                            query,
                            &self.items[id as usize],
                            collector.radius(),
                        ) {
                            collector.offer(id as usize, d);
                        }
                    }
                }
                Node::Internal {
                    vantage,
                    cutoffs,
                    children,
                } => {
                    if !meter.try_charge() {
                        frontier = frontier.min(bound);
                        break 'search;
                    }
                    let d = self.metric.distance(query, &self.items[*vantage as usize]);
                    collector.offer(*vantage as usize, d);
                    for (i, child) in children.iter().enumerate() {
                        let Some(child) = child else { continue };
                        let lo = if i == 0 { 0.0 } else { cutoffs[i - 1] };
                        let hi = if i == cutoffs.len() {
                            f64::INFINITY
                        } else {
                            cutoffs[i]
                        };
                        let child_bound = (d - hi).max(lo - d).max(0.0);
                        if child_bound <= collector.radius() {
                            heap.push(Reverse((OrdF64(child_bound.max(bound)), *child)));
                        }
                    }
                }
            }
        }
        if meter.exhausted() {
            // Unexplored subtrees still queued when the budget ran out;
            // entries above the final radius are provably non-answers
            // and do not weaken the certainty frontier.
            let radius = collector.radius();
            for &Reverse((OrdF64(b), _)) in heap.iter() {
                if b <= radius {
                    frontier = frontier.min(b);
                }
            }
        }
        finish_budgeted(
            collector.into_sorted(),
            k,
            self.len(),
            frontier,
            GAMMA,
            &meter,
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::params::VpTreeParams;
    use crate::tree::VpTree;
    use vantage_core::prelude::*;

    fn grid() -> Vec<Vec<f64>> {
        let mut v = Vec::new();
        for x in 0..10 {
            for y in 0..10 {
                v.push(vec![f64::from(x), f64::from(y)]);
            }
        }
        v
    }

    fn tree() -> VpTree<Vec<f64>, Euclidean> {
        VpTree::build(grid(), Euclidean, VpTreeParams::with_order(3).seed(7)).unwrap()
    }

    #[test]
    fn unlimited_budget_is_bit_identical_to_exact() {
        let t = tree();
        let q = vec![3.3, 6.1];
        for k in [1, 5, 100] {
            let out = t.knn_budgeted(&q, k, SearchBudget::UNLIMITED);
            assert_eq!(out.neighbors, t.knn(&q, k), "k={k}");
            assert_eq!(out.estimated_recall, 1.0);
            assert!(!out.exhausted);
        }
    }

    #[test]
    fn tiny_budget_is_exhausted_with_partial_recall() {
        let t = tree();
        let out = t.knn_budgeted(&vec![5.0, 5.0], 10, SearchBudget::limited(8));
        assert!(out.exhausted);
        assert!(out.spent <= 8);
        assert!(out.estimated_recall < 1.0);
        assert!(out.estimated_recall >= 0.0);
    }

    #[test]
    fn results_never_beat_the_true_answer_when_exact_is_claimed() {
        let t = tree();
        let o = LinearScan::new(grid(), Euclidean);
        let q = vec![4.2, 4.9];
        for budget in [5u64, 20, 60, 144, 1000] {
            let out = t.knn_budgeted(&q, 5, SearchBudget::limited(budget));
            let exact = o.knn(&q, 5);
            if out.estimated_recall == 1.0 {
                assert_eq!(out.neighbors, exact, "budget={budget}");
            }
            // Best-effort results are k best of a subset: never closer
            // than the true i-th at each rank.
            for (i, n) in out.neighbors.iter().enumerate() {
                assert!(n.distance >= exact[i].distance - 1e-12, "budget={budget}");
            }
        }
    }

    #[test]
    fn zero_budget_returns_empty() {
        let out = tree().knn_budgeted(&vec![0.0, 0.0], 3, SearchBudget::limited(0));
        assert!(out.neighbors.is_empty());
        assert!(out.exhausted);
        assert_eq!(out.estimated_recall, 0.0);
    }
}
