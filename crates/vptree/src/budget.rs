//! Budgeted best-effort kNN on vp-trees — a thin wrapper over the
//! shared arena kernel in [`crate::kernel`].
//!
//! The traversal is the same best-first branch-and-bound as exact kNN;
//! the only difference is a [`BudgetMeter`](vantage_core::BudgetMeter)
//! charged before every metric distance. When a charge is refused the
//! search stops and the *frontier bound* — the smallest lower bound over
//! all unexplored work — is folded into the recall estimate: any
//! returned neighbor at distance ≤ the frontier provably belongs to the
//! exact answer.

use vantage_core::budget::{BudgetedKnn, BudgetedSearch, SearchBudget};
use vantage_core::BoundedMetric;

use crate::tree::VpTree;

impl<T, M: BoundedMetric<T>> BudgetedSearch<T> for VpTree<T, M> {
    fn knn_budgeted(&self, query: &T, k: usize, budget: SearchBudget) -> BudgetedKnn {
        self.kernel(query).knn_budgeted(k, budget)
    }
}

#[cfg(test)]
mod tests {
    use crate::params::VpTreeParams;
    use crate::tree::VpTree;
    use vantage_core::prelude::*;

    fn grid() -> Vec<Vec<f64>> {
        let mut v = Vec::new();
        for x in 0..10 {
            for y in 0..10 {
                v.push(vec![f64::from(x), f64::from(y)]);
            }
        }
        v
    }

    fn tree() -> VpTree<Vec<f64>, Euclidean> {
        VpTree::build(grid(), Euclidean, VpTreeParams::with_order(3).seed(7)).unwrap()
    }

    #[test]
    fn unlimited_budget_is_bit_identical_to_exact() {
        let t = tree();
        let q = vec![3.3, 6.1];
        for k in [1, 5, 100] {
            let out = t.knn_budgeted(&q, k, SearchBudget::UNLIMITED);
            assert_eq!(out.neighbors, t.knn(&q, k), "k={k}");
            assert_eq!(out.estimated_recall, 1.0);
            assert!(!out.exhausted);
        }
    }

    #[test]
    fn tiny_budget_is_exhausted_with_partial_recall() {
        let t = tree();
        let out = t.knn_budgeted(&vec![5.0, 5.0], 10, SearchBudget::limited(8));
        assert!(out.exhausted);
        assert!(out.spent <= 8);
        assert!(out.estimated_recall < 1.0);
        assert!(out.estimated_recall >= 0.0);
    }

    #[test]
    fn results_never_beat_the_true_answer_when_exact_is_claimed() {
        let t = tree();
        let o = LinearScan::new(grid(), Euclidean);
        let q = vec![4.2, 4.9];
        for budget in [5u64, 20, 60, 144, 1000] {
            let out = t.knn_budgeted(&q, 5, SearchBudget::limited(budget));
            let exact = o.knn(&q, 5);
            if out.estimated_recall == 1.0 {
                assert_eq!(out.neighbors, exact, "budget={budget}");
            }
            // Best-effort results are k best of a subset: never closer
            // than the true i-th at each rank.
            for (i, n) in out.neighbors.iter().enumerate() {
                assert!(n.distance >= exact[i].distance - 1e-12, "budget={budget}");
            }
        }
    }

    #[test]
    fn zero_budget_returns_empty() {
        let out = tree().knn_budgeted(&vec![0.0, 0.0], 3, SearchBudget::limited(0));
        assert!(out.neighbors.is_empty());
        assert!(out.exhausted);
        assert_eq!(out.estimated_recall, 0.0);
    }

    #[test]
    fn borrowed_view_budgeted_matches_owned() {
        let t = tree();
        let r = t.as_view();
        let q = vec![4.2, 4.9];
        for budget in [
            SearchBudget::UNLIMITED,
            SearchBudget::limited(0),
            SearchBudget::limited(8),
            SearchBudget::limited(60),
        ] {
            let a = t.knn_budgeted(&q, 5, budget);
            let b = r.knn_budgeted(&q, 5, budget);
            assert_eq!(a.neighbors, b.neighbors);
            assert_eq!(a.estimated_recall, b.estimated_recall);
            assert_eq!(a.exhausted, b.exhausted);
            assert_eq!(a.spent, b.spent);
        }
    }
}
