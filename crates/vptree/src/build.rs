//! vp-tree construction (paper §3.3).
//!
//! At every interior node: choose a vantage point among the points indexed
//! below, compute its distance to every remaining point, order by distance
//! and split into `m` groups of equal cardinality, recording the boundary
//! distances as cutoffs. Construction performs `O(n log_m n)` distance
//! computations.
//!
//! ## Parallel construction
//!
//! Construction parallelizes on two independent axes, controlled by
//! [`VpTreeParams::threads`]:
//!
//! * the distance sweep at a node (every `d(vantage, x)` is independent);
//! * sibling subtrees (disjoint id sets, disjoint arena regions).
//!
//! The build is **bit-identical across worker counts**. Two mechanisms
//! guarantee it (see `DESIGN.md`, "Threading model"):
//!
//! 1. *Seed splitting.* Instead of threading one RNG through the whole
//!    recursion, every node draws one fresh seed per child — in child
//!    order — and each subtree is built from its own `StdRng`. The random
//!    stream a subtree sees is then a pure function of (params seed, path
//!    from root), independent of traversal timing.
//! 2. *Arena splicing.* Workers build subtrees into local arenas; the
//!    parent splices them back in child order, offsetting node ids. The
//!    result is exactly the DFS-preorder layout of a sequential build.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use vantage_core::parallel::{fork_join, par_map_slice, share_workers};
use vantage_core::util::{checked_item_count, split_into_quantiles};
use vantage_core::{Metric, Result};

use crate::arena::VpArena;
use crate::node::{Node, NodeId};
use crate::params::VpTreeParams;
use crate::tree::VpTree;

/// Minimum working-set size before a node's distance sweep fans out to
/// worker threads; below this the spawn overhead dominates.
const PARALLEL_SWEEP_MIN: usize = 1024;

impl<T, M: Metric<T>> VpTree<T, M> {
    /// Builds a vp-tree over `items`.
    ///
    /// Distance computations at construction: one per (vantage point,
    /// descendant point) pair, plus whatever the selector costs — measure
    /// with a [`Counted`](vantage_core::Counted) metric to reproduce the
    /// paper's construction-cost discussion. The worker count
    /// ([`VpTreeParams::threads`]) never changes the tree, only the
    /// wall-clock spent building it.
    ///
    /// # Errors
    ///
    /// Returns an error when `params` is invalid.
    pub fn build(items: Vec<T>, metric: M, params: VpTreeParams) -> Result<Self>
    where
        T: Sync,
        M: Sync,
    {
        params.validate()?;
        let workers = params.threads.resolve();
        let ids: Vec<u32> = (0..checked_item_count(items.len(), "vp-tree")?).collect();
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut nodes = Vec::new();
        let builder = Builder {
            items: &items,
            metric: &metric,
            params: &params,
        };
        let root = builder.build_subtree(ids, &mut rng, workers, &mut nodes);
        // Pack the construction IR into the flat arena the kernels run on.
        let arena = VpArena::from_nodes(params.order, &nodes);
        Ok(VpTree {
            items,
            metric,
            arena,
            root,
            params,
        })
    }
}

/// Borrowed construction context, shareable across scoped workers.
struct Builder<'a, T, M> {
    items: &'a [T],
    metric: &'a M,
    params: &'a VpTreeParams,
}

impl<T: Sync, M: Metric<T> + Sync> Builder<'_, T, M> {
    /// Builds the subtree over `ids` into `arena` (DFS preorder), using up
    /// to `workers` threads, and returns the subtree root's arena id.
    fn build_subtree(
        &self,
        ids: Vec<u32>,
        rng: &mut StdRng,
        workers: usize,
        arena: &mut Vec<Node>,
    ) -> Option<NodeId> {
        if ids.is_empty() {
            return None;
        }
        if ids.len() <= self.params.leaf_capacity {
            arena.push(Node::Leaf { items: ids });
            return Some((arena.len() - 1) as NodeId);
        }

        // Select the vantage point and remove it from the working set.
        let vantage_pos = self
            .params
            .selector
            .select(self.items, &ids, self.metric, rng);
        let vantage = ids[vantage_pos];
        let rest: Vec<u32> = ids.into_iter().filter(|&id| id != vantage).collect();
        let sweep = |&id: &u32| {
            (
                id,
                self.metric
                    .distance(&self.items[vantage as usize], &self.items[id as usize]),
            )
        };
        let vantage_item_distances: Vec<(u32, f64)> =
            if workers > 1 && rest.len() >= PARALLEL_SWEEP_MIN {
                par_map_slice(workers, &rest, sweep)
            } else {
                rest.iter().map(sweep).collect()
            };

        let (groups, cutoffs) = split_into_quantiles(vantage_item_distances, self.params.order);
        let child_sets: Vec<Vec<u32>> = groups
            .into_iter()
            .map(|group| group.into_iter().map(|(id, _)| id).collect())
            .collect();
        // One seed per child, drawn in child order: each subtree's random
        // stream becomes a function of its path from the root alone, so
        // any scheduling of the recursions below grows the same tree.
        let child_seeds: Vec<u64> = child_sets.iter().map(|_| rng.random::<u64>()).collect();

        // Reserve this node's slot before recursing so parents precede
        // children in the arena (handy for iteration/debugging).
        let node_id = arena.len() as NodeId;
        arena.push(Node::Internal {
            vantage,
            cutoffs,
            children: Vec::new(),
        });

        let heavy_children = child_sets
            .iter()
            .filter(|set| set.len() > self.params.leaf_capacity)
            .count();
        let children: Vec<Option<NodeId>> = if workers > 1 && heavy_children >= 2 {
            let shares = share_workers(
                workers,
                &child_sets.iter().map(Vec::len).collect::<Vec<_>>(),
            );
            let jobs: Vec<_> = child_sets
                .into_iter()
                .zip(child_seeds)
                .zip(shares)
                .map(|((set, seed), share)| {
                    move || {
                        let mut local = Vec::new();
                        let mut child_rng = StdRng::seed_from_u64(seed);
                        let local_root = self.build_subtree(set, &mut child_rng, share, &mut local);
                        (local_root, local)
                    }
                })
                .collect();
            fork_join(jobs)
                .into_iter()
                .map(|(local_root, local)| splice(arena, local, local_root))
                .collect()
        } else {
            child_sets
                .into_iter()
                .zip(child_seeds)
                .map(|(set, seed)| {
                    let mut child_rng = StdRng::seed_from_u64(seed);
                    self.build_subtree(set, &mut child_rng, workers, arena)
                })
                .collect()
        };
        match &mut arena[node_id as usize] {
            Node::Internal { children: slot, .. } => *slot = children,
            Node::Leaf { .. } => unreachable!("reserved slot is internal"),
        }
        Some(node_id)
    }
}

/// Appends a worker's local arena onto `arena`, rebasing every node id by
/// the insertion offset, and returns the rebased subtree root.
fn splice(
    arena: &mut Vec<Node>,
    mut local: Vec<Node>,
    local_root: Option<NodeId>,
) -> Option<NodeId> {
    let offset = arena.len() as NodeId;
    for node in &mut local {
        if let Node::Internal { children, .. } = node {
            for child in children.iter_mut().flatten() {
                *child += offset;
            }
        }
    }
    arena.append(&mut local);
    local_root.map(|root| root + offset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vantage_core::prelude::*;

    fn points(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64]).collect()
    }

    #[test]
    fn empty_dataset_builds_empty_tree() {
        let tree =
            VpTree::build(Vec::<Vec<f64>>::new(), Euclidean, VpTreeParams::binary()).unwrap();
        assert!(tree.is_empty());
        assert!(tree.root.is_none());
    }

    #[test]
    fn singleton_is_one_leaf() {
        let tree = VpTree::build(points(1), Euclidean, VpTreeParams::binary()).unwrap();
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.arena.len(), 1);
    }

    #[test]
    fn invalid_params_error() {
        assert!(VpTree::build(points(4), Euclidean, VpTreeParams::with_order(1)).is_err());
    }

    #[test]
    fn construction_cost_is_n_log_n_scale() {
        // Binary tree, leaf capacity 1: each level computes ~n distances,
        // so total is ~n·log2(n). Allow generous slack.
        let n = 512;
        let metric = Counted::new(Euclidean);
        let probe = metric.clone();
        let params = VpTreeParams::binary().selector(crate::VantageSelector::FirstItem);
        VpTree::build(points(n), metric, params).unwrap();
        let count = probe.count() as f64;
        let n_log_n = (n as f64) * (n as f64).log2();
        assert!(count < 2.0 * n_log_n, "count {count} vs n log n {n_log_n}");
        assert!(count > 0.5 * n_log_n, "count {count} vs n log n {n_log_n}");
    }

    #[test]
    fn same_seed_same_tree() {
        let params = VpTreeParams::with_order(3).seed(99);
        let a = VpTree::build(points(100), Euclidean, params.clone()).unwrap();
        let b = VpTree::build(points(100), Euclidean, params).unwrap();
        assert_eq!(a.arena, b.arena);
    }

    #[test]
    fn different_seed_usually_differs() {
        let a = VpTree::build(points(100), Euclidean, VpTreeParams::binary().seed(1)).unwrap();
        let b = VpTree::build(points(100), Euclidean, VpTreeParams::binary().seed(2)).unwrap();
        assert_ne!(a.arena, b.arena);
    }

    #[test]
    fn worker_count_never_changes_the_tree() {
        // The tentpole guarantee: node-for-node identical arenas from one
        // worker to many, across fanouts and leaf sizes.
        for (order, leaf) in [(2, 1), (3, 4), (5, 2)] {
            let base = VpTreeParams::with_order(order)
                .leaf_capacity(leaf)
                .seed(41)
                .threads(Threads::SEQUENTIAL);
            let sequential = VpTree::build(points(500), Euclidean, base.clone()).unwrap();
            for workers in [2, 3, 8] {
                let parallel = VpTree::build(
                    points(500),
                    Euclidean,
                    base.clone().threads(Threads::Fixed(workers)),
                )
                .unwrap();
                assert_eq!(
                    sequential.arena, parallel.arena,
                    "order {order}, leaf {leaf}, {workers} workers"
                );
                assert_eq!(sequential.root, parallel.root);
            }
        }
    }

    #[test]
    fn leaf_capacity_bounds_leaf_sizes() {
        let tree = VpTree::build(
            points(200),
            Euclidean,
            VpTreeParams::with_order(3).leaf_capacity(7),
        )
        .unwrap();
        let view = tree.arena();
        for id in 0..view.len() as u32 {
            if let crate::arena::VpNodeView::Leaf { items } = view.node(id) {
                assert!(items.len() <= 7);
            }
        }
    }

    #[test]
    fn all_items_appear_exactly_once() {
        let tree = VpTree::build(
            points(157),
            Euclidean,
            VpTreeParams::with_order(4).leaf_capacity(3).seed(5),
        )
        .unwrap();
        let mut seen = vec![0u32; tree.len()];
        let view = tree.arena();
        for id in 0..view.len() as u32 {
            match view.node(id) {
                crate::arena::VpNodeView::Internal { vantage, .. } => seen[vantage as usize] += 1,
                crate::arena::VpNodeView::Leaf { items } => {
                    for &id in items {
                        seen[id as usize] += 1;
                    }
                }
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
    }

    #[test]
    fn parents_precede_children_in_the_arena() {
        // The spliced parallel arena must keep the sequential invariant.
        let tree = VpTree::build(
            points(300),
            Euclidean,
            VpTreeParams::with_order(3)
                .leaf_capacity(2)
                .threads(Threads::Fixed(4)),
        )
        .unwrap();
        assert_eq!(tree.root, Some(0));
        let view = tree.arena();
        for id in 0..view.len() as u32 {
            if let crate::arena::VpNodeView::Internal { children, .. } = view.node(id) {
                for &child in children.iter().filter(|&&c| c != crate::arena::NO_CHILD) {
                    assert!(
                        child as usize > id as usize,
                        "child {child} precedes parent {id}"
                    );
                }
            }
        }
    }

    #[test]
    fn duplicate_points_build_fine() {
        let items = vec![vec![1.0]; 50];
        let tree = VpTree::build(items, Euclidean, VpTreeParams::binary()).unwrap();
        assert_eq!(tree.len(), 50);
        assert_eq!(tree.range(&vec![1.0], 0.0).len(), 50);
    }
}
