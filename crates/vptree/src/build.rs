//! vp-tree construction (paper §3.3).
//!
//! At every interior node: choose a vantage point among the points indexed
//! below, compute its distance to every remaining point, order by distance
//! and split into `m` groups of equal cardinality, recording the boundary
//! distances as cutoffs. Construction performs `O(n log_m n)` distance
//! computations.

use rand::rngs::StdRng;
use rand::SeedableRng;

use vantage_core::util::split_into_quantiles;
use vantage_core::{Metric, Result};

use crate::node::{Node, NodeId};
use crate::params::VpTreeParams;
use crate::tree::VpTree;

impl<T, M: Metric<T>> VpTree<T, M> {
    /// Builds a vp-tree over `items`.
    ///
    /// Distance computations at construction: one per (vantage point,
    /// descendant point) pair, plus whatever the selector costs — measure
    /// with a [`Counted`](vantage_core::Counted) metric to reproduce the
    /// paper's construction-cost discussion.
    ///
    /// # Errors
    ///
    /// Returns an error when `params` is invalid.
    pub fn build(items: Vec<T>, metric: M, params: VpTreeParams) -> Result<Self> {
        params.validate()?;
        let mut tree = VpTree {
            items,
            metric,
            nodes: Vec::new(),
            root: None,
            params,
        };
        let ids: Vec<u32> = (0..tree.items.len() as u32).collect();
        let mut rng = StdRng::seed_from_u64(tree.params.seed);
        tree.root = tree.build_node(ids, &mut rng);
        Ok(tree)
    }

    fn build_node(&mut self, ids: Vec<u32>, rng: &mut StdRng) -> Option<NodeId> {
        if ids.is_empty() {
            return None;
        }
        if ids.len() <= self.params.leaf_capacity {
            return Some(self.push(Node::Leaf { items: ids }));
        }

        // Select the vantage point and remove it from the working set.
        let vantage_pos =
            self.params
                .selector
                .select(&self.items, &ids, &self.metric, rng);
        let vantage = ids[vantage_pos];
        let vantage_item_distances: Vec<(u32, f64)> = ids
            .iter()
            .copied()
            .filter(|&id| id != vantage)
            .map(|id| {
                (
                    id,
                    self.metric
                        .distance(&self.items[vantage as usize], &self.items[id as usize]),
                )
            })
            .collect();

        let (groups, cutoffs) =
            split_into_quantiles(vantage_item_distances, self.params.order);

        // Reserve this node's slot before recursing so parents precede
        // children in the arena (handy for iteration/debugging).
        let node_id = self.push(Node::Internal {
            vantage,
            cutoffs,
            children: Vec::new(),
        });
        let children: Vec<Option<NodeId>> = groups
            .into_iter()
            .map(|group| {
                let child_ids: Vec<u32> = group.into_iter().map(|(id, _)| id).collect();
                self.build_node(child_ids, rng)
            })
            .collect();
        match &mut self.nodes[node_id as usize] {
            Node::Internal {
                children: slot, ..
            } => *slot = children,
            Node::Leaf { .. } => unreachable!("reserved slot is internal"),
        }
        Some(node_id)
    }

    fn push(&mut self, node: Node) -> NodeId {
        let id = self.nodes.len() as NodeId;
        self.nodes.push(node);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vantage_core::prelude::*;

    fn points(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64]).collect()
    }

    #[test]
    fn empty_dataset_builds_empty_tree() {
        let tree = VpTree::build(Vec::<Vec<f64>>::new(), Euclidean, VpTreeParams::binary())
            .unwrap();
        assert!(tree.is_empty());
        assert!(tree.root.is_none());
    }

    #[test]
    fn singleton_is_one_leaf() {
        let tree =
            VpTree::build(points(1), Euclidean, VpTreeParams::binary()).unwrap();
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.nodes.len(), 1);
    }

    #[test]
    fn invalid_params_error() {
        assert!(VpTree::build(points(4), Euclidean, VpTreeParams::with_order(1)).is_err());
    }

    #[test]
    fn construction_cost_is_n_log_n_scale() {
        // Binary tree, leaf capacity 1: each level computes ~n distances,
        // so total is ~n·log2(n). Allow generous slack.
        let n = 512;
        let metric = Counted::new(Euclidean);
        let probe = metric.clone();
        let params = VpTreeParams::binary().selector(crate::VantageSelector::FirstItem);
        VpTree::build(points(n), metric, params).unwrap();
        let count = probe.count() as f64;
        let n_log_n = (n as f64) * (n as f64).log2();
        assert!(count < 2.0 * n_log_n, "count {count} vs n log n {n_log_n}");
        assert!(count > 0.5 * n_log_n, "count {count} vs n log n {n_log_n}");
    }

    #[test]
    fn same_seed_same_tree() {
        let params = VpTreeParams::with_order(3).seed(99);
        let a = VpTree::build(points(100), Euclidean, params.clone()).unwrap();
        let b = VpTree::build(points(100), Euclidean, params).unwrap();
        assert_eq!(a.nodes, b.nodes);
    }

    #[test]
    fn different_seed_usually_differs() {
        let a = VpTree::build(points(100), Euclidean, VpTreeParams::binary().seed(1))
            .unwrap();
        let b = VpTree::build(points(100), Euclidean, VpTreeParams::binary().seed(2))
            .unwrap();
        assert_ne!(a.nodes, b.nodes);
    }

    #[test]
    fn leaf_capacity_bounds_leaf_sizes() {
        let tree = VpTree::build(
            points(200),
            Euclidean,
            VpTreeParams::with_order(3).leaf_capacity(7),
        )
        .unwrap();
        for node in &tree.nodes {
            if let crate::node::Node::Leaf { items } = node {
                assert!(items.len() <= 7);
            }
        }
    }

    #[test]
    fn all_items_appear_exactly_once() {
        let tree = VpTree::build(
            points(157),
            Euclidean,
            VpTreeParams::with_order(4).leaf_capacity(3).seed(5),
        )
        .unwrap();
        let mut seen = vec![0u32; tree.len()];
        for node in &tree.nodes {
            match node {
                crate::node::Node::Internal { vantage, .. } => seen[*vantage as usize] += 1,
                crate::node::Node::Leaf { items } => {
                    for &id in items {
                        seen[id as usize] += 1;
                    }
                }
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
    }

    #[test]
    fn duplicate_points_build_fine() {
        let items = vec![vec![1.0]; 50];
        let tree = VpTree::build(items, Euclidean, VpTreeParams::binary()).unwrap();
        assert_eq!(tree.len(), 50);
        assert_eq!(tree.range(&vec![1.0], 0.0).len(), 50);
    }
}
