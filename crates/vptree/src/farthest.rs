//! Far-neighbor queries on vp-trees (paper §2's query variations) —
//! thin wrappers over the shared arena kernels in [`crate::kernel`].
//!
//! Pruning is the mirror image of range search: the triangle inequality
//! gives `d(q, x) ≤ d(q, v) + d(v, x) ≤ d + hi` for every point `x` in a
//! shell `[lo, hi]`, so a subtree is skipped when even that upper bound
//! cannot reach the threshold.

use vantage_core::farthest::{FarthestIndex, KfnCollector};
use vantage_core::trace::{NoTrace, TraceSink};
use vantage_core::{Metric, Neighbor};

use crate::tree::VpTree;

impl<T, M: Metric<T>> VpTree<T, M> {
    /// [`range_beyond`](FarthestIndex::range_beyond) with
    /// instrumentation: reports every vantage/candidate distance and
    /// every shell prune (with the upper-bound margin `radius − (d+hi)`
    /// that justified it) into `sink`. Answers and distance computations
    /// are identical to the untraced method — with [`NoTrace`] the sink
    /// calls compile away.
    pub fn beyond_traced<S: TraceSink>(
        &self,
        query: &T,
        radius: f64,
        sink: &mut S,
    ) -> Vec<Neighbor> {
        self.kernel(query).beyond(radius, sink)
    }

    /// [`k_farthest`](FarthestIndex::k_farthest) with instrumentation;
    /// see [`beyond_traced`](VpTree::beyond_traced). Children abandoned
    /// by the descending-upper-bound early exit are reported as
    /// [`FirstShell`](vantage_core::trace::PruneReason::FirstShell)
    /// prunes carrying their upper bound.
    pub fn kfn_traced<S: TraceSink>(&self, query: &T, k: usize, sink: &mut S) -> Vec<Neighbor> {
        let mut collector = KfnCollector::new(k);
        if k > 0 {
            self.kfn_into(&mut collector, query, sink);
        }
        collector.into_sorted()
    }

    /// Runs the k-farthest traversal into a caller-provided collector —
    /// shared with the sharded scatter path.
    pub(crate) fn kfn_into<S: TraceSink>(
        &self,
        collector: &mut KfnCollector,
        query: &T,
        sink: &mut S,
    ) {
        self.kernel(query).kfn_into(collector, sink);
    }
}

impl<T, M: Metric<T>> FarthestIndex<T> for VpTree<T, M> {
    fn range_beyond(&self, query: &T, radius: f64) -> Vec<Neighbor> {
        self.beyond_traced(query, radius, &mut NoTrace)
    }

    fn k_farthest(&self, query: &T, k: usize) -> Vec<Neighbor> {
        self.kfn_traced(query, k, &mut NoTrace)
    }
}

#[cfg(test)]
mod tests {
    use crate::params::VpTreeParams;
    use crate::tree::VpTree;
    use vantage_core::prelude::*;

    fn grid() -> Vec<Vec<f64>> {
        let mut v = Vec::new();
        for x in 0..10 {
            for y in 0..10 {
                v.push(vec![f64::from(x), f64::from(y)]);
            }
        }
        v
    }

    fn ids(mut v: Vec<Neighbor>) -> Vec<usize> {
        v.sort_unstable_by_key(|n| n.id);
        v.into_iter().map(|n| n.id).collect()
    }

    #[test]
    fn range_beyond_matches_linear_scan() {
        let t = VpTree::build(grid(), Euclidean, VpTreeParams::with_order(3).seed(2)).unwrap();
        let o = LinearScan::new(grid(), Euclidean);
        for (q, r) in [
            (vec![5.0, 5.0], 4.0),
            (vec![0.0, 0.0], 10.0),
            (vec![5.0, 5.0], 0.0),
            (vec![5.0, 5.0], 100.0),
        ] {
            assert_eq!(
                ids(t.range_beyond(&q, r)),
                ids(o.range_beyond(&q, r)),
                "q={q:?} r={r}"
            );
        }
    }

    #[test]
    fn k_farthest_matches_brute_force() {
        let t = VpTree::build(grid(), Euclidean, VpTreeParams::binary().seed(1)).unwrap();
        let o = LinearScan::new(grid(), Euclidean);
        for k in [1, 4, 50, 100, 150] {
            let a = t.k_farthest(&vec![1.0, 1.0], k);
            let b = o.k_farthest(&vec![1.0, 1.0], k);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert!((x.distance - y.distance).abs() < 1e-12, "k={k}");
            }
        }
    }

    #[test]
    fn k_farthest_prunes() {
        let metric = Counted::new(Euclidean);
        let probe = metric.clone();
        let t = VpTree::build(grid(), metric, VpTreeParams::with_order(3).seed(5)).unwrap();
        probe.reset();
        let out = t.k_farthest(&vec![0.0, 0.0], 1);
        assert_eq!(out.len(), 1);
        assert!((out[0].distance - (81.0f64 + 81.0).sqrt()).abs() < 1e-12);
        assert!(probe.count() < 100, "no pruning: {}", probe.count());
    }

    #[test]
    fn borrowed_view_matches_owned_far_queries() {
        let t = VpTree::build(grid(), Euclidean, VpTreeParams::with_order(3).seed(2)).unwrap();
        let r = t.as_view();
        let q = vec![2.0, 3.0];
        assert_eq!(t.range_beyond(&q, 6.0), r.range_beyond(&q, 6.0));
        for k in [1, 5, 100] {
            assert_eq!(t.k_farthest(&q, k), r.k_farthest(&q, k));
        }
    }
}
