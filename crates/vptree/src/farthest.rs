//! Far-neighbor queries on vp-trees (paper §2's query variations).
//!
//! Pruning is the mirror image of range search: the triangle inequality
//! gives `d(q, x) ≤ d(q, v) + d(v, x) ≤ d + hi` for every point `x` in a
//! shell `[lo, hi]`, so a subtree is skipped when even that upper bound
//! cannot reach the threshold.

use vantage_core::farthest::{FarthestIndex, KfnCollector};
use vantage_core::trace::{DistanceRole, NoTrace, PruneReason, TraceSink};
use vantage_core::{Metric, Neighbor};

use crate::node::{Node, NodeId};
use crate::tree::VpTree;

impl<T, M: Metric<T>> VpTree<T, M> {
    /// [`range_beyond`](FarthestIndex::range_beyond) with
    /// instrumentation: reports every vantage/candidate distance and
    /// every shell prune (with the upper-bound margin `radius − (d+hi)`
    /// that justified it) into `sink`. Answers and distance computations
    /// are identical to the untraced method — with [`NoTrace`] the sink
    /// calls compile away.
    pub fn beyond_traced<S: TraceSink>(
        &self,
        query: &T,
        radius: f64,
        sink: &mut S,
    ) -> Vec<Neighbor> {
        let mut out = Vec::new();
        if let Some(root) = self.root {
            self.beyond_node(root, query, radius, 0, sink, &mut out);
        }
        out
    }

    fn beyond_node<S: TraceSink>(
        &self,
        node: NodeId,
        query: &T,
        radius: f64,
        level: u32,
        sink: &mut S,
        out: &mut Vec<Neighbor>,
    ) {
        match self.node(node) {
            Node::Leaf { items } => {
                sink.enter_node(level, true);
                for &id in items {
                    sink.distance(DistanceRole::Candidate);
                    let d = self.metric().distance(query, &self.items[id as usize]);
                    if d >= radius {
                        out.push(Neighbor::new(id as usize, d));
                    }
                }
            }
            Node::Internal {
                vantage,
                cutoffs,
                children,
            } => {
                sink.enter_node(level, false);
                sink.distance(DistanceRole::Vantage);
                let d = self
                    .metric()
                    .distance(query, &self.items[*vantage as usize]);
                if d >= radius {
                    out.push(Neighbor::new(*vantage as usize, d));
                }
                for (i, child) in children.iter().enumerate() {
                    let Some(child) = child else { continue };
                    let hi = if i == cutoffs.len() {
                        f64::INFINITY
                    } else {
                        cutoffs[i]
                    };
                    if d + hi >= radius {
                        self.beyond_node(*child, query, radius, level + 1, sink, out);
                    } else if S::ENABLED {
                        sink.prune(level + 1, PruneReason::FirstShell, radius - (d + hi));
                    }
                }
            }
        }
    }

    /// [`k_farthest`](FarthestIndex::k_farthest) with instrumentation;
    /// see [`beyond_traced`](VpTree::beyond_traced). Children abandoned
    /// by the descending-upper-bound early exit are reported as
    /// [`PruneReason::FirstShell`] prunes carrying their upper bound.
    pub fn kfn_traced<S: TraceSink>(&self, query: &T, k: usize, sink: &mut S) -> Vec<Neighbor> {
        let mut collector = KfnCollector::new(k);
        if k > 0 {
            if let Some(root) = self.root {
                self.kfn_node(root, query, &mut collector, 0, sink);
            }
        }
        collector.into_sorted()
    }

    pub(crate) fn kfn_node<S: TraceSink>(
        &self,
        node: NodeId,
        query: &T,
        collector: &mut KfnCollector,
        level: u32,
        sink: &mut S,
    ) {
        match self.node(node) {
            Node::Leaf { items } => {
                sink.enter_node(level, true);
                for &id in items {
                    sink.distance(DistanceRole::Candidate);
                    let d = self.metric().distance(query, &self.items[id as usize]);
                    collector.offer(id as usize, d);
                }
            }
            Node::Internal {
                vantage,
                cutoffs,
                children,
            } => {
                sink.enter_node(level, false);
                sink.distance(DistanceRole::Vantage);
                let d = self
                    .metric()
                    .distance(query, &self.items[*vantage as usize]);
                collector.offer(*vantage as usize, d);
                // Farthest-promising children first so the threshold
                // rises early.
                let mut order: Vec<(f64, NodeId)> = children
                    .iter()
                    .enumerate()
                    .filter_map(|(i, child)| {
                        child.map(|c| {
                            let hi = if i == cutoffs.len() {
                                f64::INFINITY
                            } else {
                                cutoffs[i]
                            };
                            (d + hi, c)
                        })
                    })
                    .collect();
                order.sort_unstable_by(|a, b| b.0.total_cmp(&a.0));
                let mut abandoned = None;
                for (pos, &(upper, child)) in order.iter().enumerate() {
                    // Tie-inclusive: a child whose upper bound *equals*
                    // the threshold may hold an equidistant point with a
                    // smaller id, which canonical tie-breaking must see.
                    if upper < collector.radius() {
                        abandoned = Some(pos);
                        break;
                    }
                    self.kfn_node(child, query, collector, level + 1, sink);
                }
                if S::ENABLED {
                    if let Some(pos) = abandoned {
                        for &(upper, _) in &order[pos..] {
                            sink.prune(level + 1, PruneReason::FirstShell, upper);
                        }
                    }
                }
            }
        }
    }
}

impl<T, M: Metric<T>> FarthestIndex<T> for VpTree<T, M> {
    fn range_beyond(&self, query: &T, radius: f64) -> Vec<Neighbor> {
        self.beyond_traced(query, radius, &mut NoTrace)
    }

    fn k_farthest(&self, query: &T, k: usize) -> Vec<Neighbor> {
        self.kfn_traced(query, k, &mut NoTrace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::VpTreeParams;
    use vantage_core::prelude::*;

    fn grid() -> Vec<Vec<f64>> {
        let mut v = Vec::new();
        for x in 0..10 {
            for y in 0..10 {
                v.push(vec![f64::from(x), f64::from(y)]);
            }
        }
        v
    }

    fn ids(mut v: Vec<Neighbor>) -> Vec<usize> {
        v.sort_unstable_by_key(|n| n.id);
        v.into_iter().map(|n| n.id).collect()
    }

    #[test]
    fn range_beyond_matches_linear_scan() {
        let t = VpTree::build(grid(), Euclidean, VpTreeParams::with_order(3).seed(2)).unwrap();
        let o = LinearScan::new(grid(), Euclidean);
        for (q, r) in [
            (vec![5.0, 5.0], 4.0),
            (vec![0.0, 0.0], 10.0),
            (vec![5.0, 5.0], 0.0),
            (vec![5.0, 5.0], 100.0),
        ] {
            assert_eq!(
                ids(t.range_beyond(&q, r)),
                ids(o.range_beyond(&q, r)),
                "q={q:?} r={r}"
            );
        }
    }

    #[test]
    fn k_farthest_matches_brute_force() {
        let t = VpTree::build(grid(), Euclidean, VpTreeParams::binary().seed(1)).unwrap();
        let o = LinearScan::new(grid(), Euclidean);
        for k in [1, 4, 50, 100, 150] {
            let a = t.k_farthest(&vec![1.0, 1.0], k);
            let b = o.k_farthest(&vec![1.0, 1.0], k);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert!((x.distance - y.distance).abs() < 1e-12, "k={k}");
            }
        }
    }

    #[test]
    fn k_farthest_prunes() {
        let metric = Counted::new(Euclidean);
        let probe = metric.clone();
        let t = VpTree::build(grid(), metric, VpTreeParams::with_order(3).seed(5)).unwrap();
        probe.reset();
        let out = t.k_farthest(&vec![0.0, 0.0], 1);
        assert_eq!(out.len(), 1);
        assert!((out[0].distance - (81.0f64 + 81.0).sqrt()).abs() < 1e-12);
        assert!(probe.count() < 100, "no pruning: {}", probe.count());
    }
}
