//! Shared search kernels over the flat arena view.
//!
//! Every query form — range, kNN, beyond, kFN, traced and budgeted — is
//! implemented exactly once here, generic over *where the nodes live*
//! (a [`VpArenaView`], borrowed from an owned arena or a mapped
//! snapshot) and *where the items live* (an [`ItemStore`]). The owned
//! [`VpTree`](crate::VpTree) and the borrowed
//! [`VpTreeRef`](crate::VpTreeRef) are thin wrappers around the same
//! monomorphized traversals, so the materialized and zero-copy paths
//! answer bit-identically by construction: same arithmetic, same visit
//! order, same tie-breaking.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use vantage_core::budget::{finish_budgeted, BudgetMeter, BudgetedKnn, SearchBudget};
use vantage_core::farthest::KfnCollector;
use vantage_core::trace::{DistanceRole, PruneReason, TraceSink};
use vantage_core::util::OrdF64;
use vantage_core::{BoundedMetric, ItemStore, KnnCollector, Metric, Neighbor};

use crate::arena::{VpArenaView, VpNodeView, NO_CHILD};

/// Probability that an *uncertain* budgeted result (distance above the
/// frontier bound) is nevertheless a true k-nearest neighbor. Calibrated
/// against the measured recall-vs-cost curve of the `budget` experiment
/// in `vantage-experiments`; must stay below 1 so inexact answers never
/// report perfect recall.
pub(crate) const GAMMA: f64 = 0.85; // measured 0.889 at the 50%-cost calibration point

/// The spherical shell `[lo, hi]` of child `i` around a vantage point.
#[inline]
fn shell(cutoffs: &[f64], i: usize) -> (f64, f64) {
    let lo = if i == 0 { 0.0 } else { cutoffs[i - 1] };
    let hi = if i == cutoffs.len() {
        f64::INFINITY
    } else {
        cutoffs[i]
    };
    (lo, hi)
}

/// One query's traversal context: the node arena, the item store, the
/// metric and the query point.
pub(crate) struct Kernel<'k, I: ?Sized, M, T: ?Sized> {
    pub arena: VpArenaView<'k>,
    pub root: Option<u32>,
    pub items: &'k I,
    pub metric: &'k M,
    pub query: &'k T,
}

impl<'k, T, I, M> Kernel<'k, I, M, T>
where
    T: ?Sized,
    I: ItemStore<Item = T> + ?Sized,
{
    /// Range search (paper §3.3): all items within `radius` of the query.
    pub fn range<S: TraceSink>(&self, radius: f64, sink: &mut S) -> Vec<Neighbor>
    where
        M: BoundedMetric<T>,
    {
        let mut out = Vec::new();
        if let Some(root) = self.root {
            self.range_node(root, radius, 0, sink, &mut out);
        }
        out
    }

    fn range_node<S: TraceSink>(
        &self,
        node: u32,
        radius: f64,
        level: u32,
        sink: &mut S,
        out: &mut Vec<Neighbor>,
    ) where
        M: BoundedMetric<T>,
    {
        match self.arena.node(node) {
            VpNodeView::Leaf { items } => {
                sink.enter_node(level, true);
                for &id in items {
                    sink.distance(DistanceRole::Candidate);
                    match self
                        .metric
                        .distance_within_frac(self.query, self.items.get(id), radius)
                    {
                        (Some(d), _) => out.push(Neighbor::new(id as usize, d)),
                        (None, work) => {
                            if S::ENABLED {
                                sink.abandon(DistanceRole::Candidate, work);
                            }
                        }
                    }
                }
            }
            VpNodeView::Internal {
                vantage,
                cutoffs,
                children,
            } => {
                sink.enter_node(level, false);
                sink.distance(DistanceRole::Vantage);
                let d = self.metric.distance(self.query, self.items.get(vantage));
                if d <= radius {
                    out.push(Neighbor::new(vantage as usize, d));
                }
                for (i, &child) in children.iter().enumerate() {
                    if child == NO_CHILD {
                        continue;
                    }
                    let (lo, hi) = shell(cutoffs, i);
                    if d - radius <= hi && d + radius >= lo {
                        self.range_node(child, radius, level + 1, sink, out);
                    } else if S::ENABLED {
                        sink.prune(level + 1, PruneReason::FirstShell, (d - hi).max(lo - d));
                    }
                }
            }
        }
    }

    /// Best-first kNN traversal into a caller-provided collector — the
    /// shared kernel behind `knn_traced` and the sharded scatter path
    /// (which passes a collector wired to a cross-shard bound).
    pub fn knn_into<S: TraceSink>(&self, collector: &mut KnnCollector, sink: &mut S)
    where
        M: BoundedMetric<T>,
    {
        // The heap carries each subtree's depth alongside its bound; the
        // ordering is unchanged (arena ids are unique, so the depth field
        // never participates in a comparison).
        let mut heap: BinaryHeap<Reverse<(OrdF64, u32, u32)>> = BinaryHeap::new();
        if let Some(root) = self.root {
            heap.push(Reverse((OrdF64(0.0), root, 0)));
        }
        while let Some(Reverse((OrdF64(bound), node, level))) = heap.pop() {
            if bound > collector.radius() {
                // Every remaining entry has an even larger bound.
                if S::ENABLED {
                    sink.prune(level, PruneReason::FirstShell, bound);
                    for Reverse((OrdF64(b), _, l)) in heap.drain() {
                        sink.prune(l, PruneReason::FirstShell, b);
                    }
                }
                break;
            }
            match self.arena.node(node) {
                VpNodeView::Leaf { items } => {
                    sink.enter_node(level, true);
                    for &id in items {
                        sink.distance(DistanceRole::Candidate);
                        // Bounded by the current k-th best distance: a
                        // candidate the kernel abandons is one the
                        // collector's strict `<` would have discarded.
                        match self.metric.distance_within_frac(
                            self.query,
                            self.items.get(id),
                            collector.radius(),
                        ) {
                            (Some(d), _) => {
                                collector.offer(id as usize, d);
                            }
                            (None, work) => {
                                if S::ENABLED {
                                    sink.abandon(DistanceRole::Candidate, work);
                                }
                            }
                        }
                    }
                }
                VpNodeView::Internal {
                    vantage,
                    cutoffs,
                    children,
                } => {
                    sink.enter_node(level, false);
                    sink.distance(DistanceRole::Vantage);
                    let d = self.metric.distance(self.query, self.items.get(vantage));
                    collector.offer(vantage as usize, d);
                    for (i, &child) in children.iter().enumerate() {
                        if child == NO_CHILD {
                            continue;
                        }
                        let (lo, hi) = shell(cutoffs, i);
                        let child_bound = (d - hi).max(lo - d).max(0.0);
                        if child_bound <= collector.radius() {
                            heap.push(Reverse((OrdF64(child_bound), child, level + 1)));
                        } else if S::ENABLED {
                            sink.prune(level + 1, PruneReason::FirstShell, child_bound);
                        }
                    }
                }
            }
        }
    }

    /// Far-range search: all items at distance ≥ `radius` (paper §2's
    /// query variations). Pruning mirrors range search: a subtree is
    /// skipped when its upper bound `d + hi` cannot reach the threshold.
    pub fn beyond<S: TraceSink>(&self, radius: f64, sink: &mut S) -> Vec<Neighbor>
    where
        M: Metric<T>,
    {
        let mut out = Vec::new();
        if let Some(root) = self.root {
            self.beyond_node(root, radius, 0, sink, &mut out);
        }
        out
    }

    fn beyond_node<S: TraceSink>(
        &self,
        node: u32,
        radius: f64,
        level: u32,
        sink: &mut S,
        out: &mut Vec<Neighbor>,
    ) where
        M: Metric<T>,
    {
        match self.arena.node(node) {
            VpNodeView::Leaf { items } => {
                sink.enter_node(level, true);
                for &id in items {
                    sink.distance(DistanceRole::Candidate);
                    let d = self.metric.distance(self.query, self.items.get(id));
                    if d >= radius {
                        out.push(Neighbor::new(id as usize, d));
                    }
                }
            }
            VpNodeView::Internal {
                vantage,
                cutoffs,
                children,
            } => {
                sink.enter_node(level, false);
                sink.distance(DistanceRole::Vantage);
                let d = self.metric.distance(self.query, self.items.get(vantage));
                if d >= radius {
                    out.push(Neighbor::new(vantage as usize, d));
                }
                for (i, &child) in children.iter().enumerate() {
                    if child == NO_CHILD {
                        continue;
                    }
                    let (_, hi) = shell(cutoffs, i);
                    if d + hi >= radius {
                        self.beyond_node(child, radius, level + 1, sink, out);
                    } else if S::ENABLED {
                        sink.prune(level + 1, PruneReason::FirstShell, radius - (d + hi));
                    }
                }
            }
        }
    }

    /// k-farthest traversal into a caller-provided collector, visiting
    /// the farthest-promising children first so the threshold rises
    /// early.
    pub fn kfn_into<S: TraceSink>(&self, collector: &mut KfnCollector, sink: &mut S)
    where
        M: Metric<T>,
    {
        if let Some(root) = self.root {
            self.kfn_node(root, collector, 0, sink);
        }
    }

    fn kfn_node<S: TraceSink>(
        &self,
        node: u32,
        collector: &mut KfnCollector,
        level: u32,
        sink: &mut S,
    ) where
        M: Metric<T>,
    {
        match self.arena.node(node) {
            VpNodeView::Leaf { items } => {
                sink.enter_node(level, true);
                for &id in items {
                    sink.distance(DistanceRole::Candidate);
                    let d = self.metric.distance(self.query, self.items.get(id));
                    collector.offer(id as usize, d);
                }
            }
            VpNodeView::Internal {
                vantage,
                cutoffs,
                children,
            } => {
                sink.enter_node(level, false);
                sink.distance(DistanceRole::Vantage);
                let d = self.metric.distance(self.query, self.items.get(vantage));
                collector.offer(vantage as usize, d);
                // Farthest-promising children first so the threshold
                // rises early.
                let mut order: Vec<(f64, u32)> = children
                    .iter()
                    .enumerate()
                    .filter(|&(_, &child)| child != NO_CHILD)
                    .map(|(i, &child)| {
                        let (_, hi) = shell(cutoffs, i);
                        (d + hi, child)
                    })
                    .collect();
                order.sort_unstable_by(|a, b| b.0.total_cmp(&a.0));
                let mut abandoned = None;
                for (pos, &(upper, child)) in order.iter().enumerate() {
                    // Tie-inclusive: a child whose upper bound *equals*
                    // the threshold may hold an equidistant point with a
                    // smaller id, which canonical tie-breaking must see.
                    if upper < collector.radius() {
                        abandoned = Some(pos);
                        break;
                    }
                    self.kfn_node(child, collector, level + 1, sink);
                }
                if S::ENABLED {
                    if let Some(pos) = abandoned {
                        for &(upper, _) in &order[pos..] {
                            sink.prune(level + 1, PruneReason::FirstShell, upper);
                        }
                    }
                }
            }
        }
    }

    /// Budgeted best-effort kNN: the same best-first branch-and-bound as
    /// exact kNN with a [`BudgetMeter`] charged before every metric
    /// distance. When a charge is refused the search stops and the
    /// *frontier bound* — the smallest lower bound over all unexplored
    /// work — is folded into the recall estimate.
    pub fn knn_budgeted(&self, k: usize, budget: SearchBudget) -> BudgetedKnn
    where
        M: BoundedMetric<T>,
    {
        let mut meter = BudgetMeter::new(budget);
        let mut collector = KnnCollector::new(k);
        let mut frontier = f64::INFINITY;
        let mut heap: BinaryHeap<Reverse<(OrdF64, u32)>> = BinaryHeap::new();
        if k > 0 {
            if let Some(root) = self.root {
                heap.push(Reverse((OrdF64(0.0), root)));
            }
        }
        'search: while let Some(Reverse((OrdF64(bound), node))) = heap.pop() {
            if bound > collector.radius() {
                // Exact termination: every remaining entry is provably
                // outside the answer, no uncertainty to account.
                heap.clear();
                break;
            }
            match self.arena.node(node) {
                VpNodeView::Leaf { items } => {
                    for &id in items {
                        if !meter.try_charge() {
                            // This candidate and the rest of the leaf
                            // sit in a subtree admitted at `bound`.
                            frontier = frontier.min(bound);
                            break 'search;
                        }
                        if let (Some(d), _) = self.metric.distance_within_frac(
                            self.query,
                            self.items.get(id),
                            collector.radius(),
                        ) {
                            collector.offer(id as usize, d);
                        }
                    }
                }
                VpNodeView::Internal {
                    vantage,
                    cutoffs,
                    children,
                } => {
                    if !meter.try_charge() {
                        frontier = frontier.min(bound);
                        break 'search;
                    }
                    let d = self.metric.distance(self.query, self.items.get(vantage));
                    collector.offer(vantage as usize, d);
                    for (i, &child) in children.iter().enumerate() {
                        if child == NO_CHILD {
                            continue;
                        }
                        let (lo, hi) = shell(cutoffs, i);
                        let child_bound = (d - hi).max(lo - d).max(0.0);
                        if child_bound <= collector.radius() {
                            heap.push(Reverse((OrdF64(child_bound.max(bound)), child)));
                        }
                    }
                }
            }
        }
        if meter.exhausted() {
            // Unexplored subtrees still queued when the budget ran out;
            // entries above the final radius are provably non-answers
            // and do not weaken the certainty frontier.
            let radius = collector.radius();
            for &Reverse((OrdF64(b), _)) in heap.iter() {
                if b <= radius {
                    frontier = frontier.min(b);
                }
            }
        }
        finish_budgeted(
            collector.into_sorted(),
            k,
            self.items.len(),
            frontier,
            GAMMA,
            &meter,
        )
    }
}
