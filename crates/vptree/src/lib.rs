//! # vantage-vptree
//!
//! The **vantage-point tree** (vp-tree) of Uhlmann \[Uhl91\] and Yiannilos
//! \[Yia93\] — the baseline structure the mvp-tree paper (Bozkaya &
//! Özsoyoğlu, SIGMOD 1997, §3.3) compares against.
//!
//! At every node a *vantage point* is chosen among the data points indexed
//! below that node; the remaining points are sorted by their distance to
//! the vantage point and split into `m` groups of equal cardinality
//! ("spherical cuts"). The `m − 1` boundary distances are recorded as
//! *cutoff values*. A range query with radius `r` computes `d(q, vantage)`
//! at each visited node and descends only into children whose spherical
//! shell can intersect the query ball — correctness follows from the
//! triangle inequality (the paper's Appendix).
//!
//! Faithfulness notes (deliberate, to serve as the paper's baseline):
//!
//! * the vp-tree does **not** retain construction-time distances for leaf
//!   filtering — that is precisely the mvp-tree's innovation;
//! * the default leaf capacity is 1 (the paper's vp-trees store single
//!   data-point references in leaves);
//! * `vpt(2)` / `vpt(3)` from the paper's figures are
//!   [`VpTreeParams::order`] 2 and 3.
//!
//! ```
//! use vantage_core::prelude::*;
//! use vantage_vptree::{VpTree, VpTreeParams};
//!
//! let points: Vec<Vec<f64>> = (0..100).map(|i| vec![f64::from(i)]).collect();
//! let tree = VpTree::build(points, Euclidean, VpTreeParams::binary()).unwrap();
//! let hits = tree.range(&vec![50.0], 1.5);
//! assert_eq!(hits.len(), 3); // 49, 50, 51
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod budget;
mod build;
mod farthest;
mod kernel;
mod node;
mod search;
mod shard;
mod stats;
mod tree;
mod treeref;
mod validate;

pub mod arena;
pub mod params;
pub mod snapshot;

pub use arena::{VpArena, VpArenaView, VpNodeView, NO_CHILD};
pub use params::VpTreeParams;
pub use snapshot::{RawVpNode, VpTreeParts};
pub use stats::VpTreeStats;
pub use tree::VpTree;
pub use treeref::VpTreeRef;
pub use validate::validate_arena;
pub use vantage_core::select::VantageSelector;
