//! Node arena layout.

/// Index of a node inside the tree's arena.
pub(crate) type NodeId = u32;

/// A vp-tree node. Nodes live in a flat arena (`Vec<Node>`) and reference
/// children by index, keeping the tree compact and allocation-friendly.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub(crate) enum Node {
    /// Interior node: one vantage point, `m − 1` cutoff distances and up
    /// to `m` children (paper §3.3 node layout, generalized to m-way).
    ///
    /// Child `i` indexes exactly the points `x` with
    /// `cutoffs[i−1] ≤ d(x, vantage) ≤ cutoffs[i]` (treating the missing
    /// edges as 0 and +∞). Empty partitions have no child.
    Internal {
        /// Arena id (into the item table) of this node's vantage point.
        vantage: u32,
        /// The `m − 1` partition boundaries, non-decreasing.
        cutoffs: Vec<f64>,
        /// Children, one slot per partition; `None` when the partition is
        /// empty.
        children: Vec<Option<NodeId>>,
    },
    /// Leaf bucket holding references to data points (paper: *"In leaf
    /// nodes … references to the data points are kept"*).
    Leaf {
        /// Item ids stored in this bucket.
        items: Vec<u32>,
    },
}
