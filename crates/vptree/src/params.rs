//! Construction parameters for [`VpTree`](crate::VpTree).

use vantage_core::{Result, VantageError};

use vantage_core::parallel::Threads;
use vantage_core::select::VantageSelector;

/// Parameters controlling vp-tree construction.
///
/// The paper's `vpt(m)` notation corresponds to `order = m` with the
/// defaults for everything else.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VpTreeParams {
    /// Number of spherical cuts per vantage point (`m ≥ 2`); the tree
    /// fanout. §3.3: *"The order of the tree corresponds to the number of
    /// partitions to be made."*
    pub order: usize,
    /// Maximum number of data points stored in one leaf (`≥ 1`). The paper
    /// baseline keeps single data-point references in leaves (capacity 1).
    pub leaf_capacity: usize,
    /// How vantage points are chosen.
    pub selector: VantageSelector,
    /// Seed for the selector's randomness; fixed seed ⇒ identical tree.
    pub seed: u64,
    /// Worker threads for construction. The built tree is bit-identical
    /// for every setting (see `DESIGN.md`, "Threading model"); this knob
    /// only trades wall-clock for cores.
    pub threads: Threads,
}

impl VpTreeParams {
    /// The paper's binary vp-tree, `vpt(2)`.
    pub fn binary() -> Self {
        VpTreeParams::with_order(2)
    }

    /// An m-way vp-tree with paper defaults, `vpt(m)`.
    pub fn with_order(order: usize) -> Self {
        VpTreeParams {
            order,
            leaf_capacity: 1,
            selector: VantageSelector::Random,
            seed: 0,
            threads: Threads::Auto,
        }
    }

    /// Sets the leaf capacity.
    pub fn leaf_capacity(mut self, capacity: usize) -> Self {
        self.leaf_capacity = capacity;
        self
    }

    /// Sets the vantage-point selector.
    pub fn selector(mut self, selector: VantageSelector) -> Self {
        self.selector = selector;
        self
    }

    /// Sets the RNG seed used by randomized selectors.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the construction worker count (never changes the built tree).
    pub fn threads(mut self, threads: Threads) -> Self {
        self.threads = threads;
        self
    }

    /// Validates the parameter combination.
    ///
    /// # Errors
    ///
    /// Returns an error when `order < 2` or `leaf_capacity == 0`.
    pub fn validate(&self) -> Result<()> {
        if self.order < 2 {
            return Err(VantageError::invalid_parameter(
                "order",
                format!("vp-tree order must be at least 2, got {}", self.order),
            ));
        }
        if self.leaf_capacity == 0 {
            return Err(VantageError::invalid_parameter(
                "leaf_capacity",
                "leaf capacity must be at least 1",
            ));
        }
        self.selector.validate()
    }
}

impl Default for VpTreeParams {
    fn default() -> Self {
        VpTreeParams::binary()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_defaults() {
        let p = VpTreeParams::binary();
        assert_eq!(p.order, 2);
        assert_eq!(p.leaf_capacity, 1);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn builder_chains() {
        let p = VpTreeParams::with_order(3)
            .leaf_capacity(10)
            .seed(42)
            .selector(VantageSelector::FirstItem)
            .threads(Threads::Fixed(2));
        assert_eq!(p.order, 3);
        assert_eq!(p.leaf_capacity, 10);
        assert_eq!(p.seed, 42);
        assert_eq!(p.threads, Threads::Fixed(2));
        assert!(p.validate().is_ok());
    }

    #[test]
    fn order_below_two_rejected() {
        assert!(VpTreeParams::with_order(1).validate().is_err());
        assert!(VpTreeParams::with_order(0).validate().is_err());
    }

    #[test]
    fn zero_leaf_capacity_rejected() {
        assert!(VpTreeParams::binary().leaf_capacity(0).validate().is_err());
    }
}
