//! Range and kNN search (paper §3.3 and its Appendix) — thin wrappers
//! over the shared arena kernels in [`crate::kernel`].

use vantage_core::trace::{NoTrace, TraceSink};
use vantage_core::{BoundedMetric, KnnCollector, Neighbor};

use crate::kernel::Kernel;
use crate::tree::VpTree;

impl<T, M: BoundedMetric<T>> VpTree<T, M> {
    /// Range search: all items within `radius` of `query`.
    ///
    /// At each visited node one distance `d(q, vantage)` is computed; the
    /// paper's pruning rule (generalized from binary medians to m-way
    /// cutoffs) decides which children to descend into:
    /// child `i` (a spherical shell `[lo_i, hi_i]` around the vantage
    /// point) is visited iff `d − r ≤ hi_i` and `d + r ≥ lo_i`. The
    /// Appendix proves both directions from the triangle inequality.
    pub(crate) fn range_search(&self, query: &T, radius: f64) -> Vec<Neighbor> {
        self.range_traced(query, radius, &mut NoTrace)
    }

    /// [`range`](vantage_core::MetricIndex::range) with instrumentation:
    /// reports every vantage/candidate distance, every shell prune (with
    /// its triangle-inequality bound) and the per-level fanout into
    /// `sink`. Answers and distance computations are identical to the
    /// untraced method — with [`NoTrace`] the sink calls compile away.
    pub fn range_traced<S: TraceSink>(
        &self,
        query: &T,
        radius: f64,
        sink: &mut S,
    ) -> Vec<Neighbor> {
        self.kernel(query).range(radius, sink)
    }

    /// Best-first k-nearest-neighbor search.
    ///
    /// Subtrees are visited in order of their lower-bound distance to the
    /// query (for a shell `[lo, hi]` around a vantage point at distance
    /// `d`, the bound is `max(0, d − hi, lo − d)`), pruning any subtree
    /// whose bound exceeds the current k-th best distance — the dynamic-
    /// radius reduction of nearest-neighbor search to range search
    /// (\[Chi94\], paper §3.2).
    pub(crate) fn knn_search(&self, query: &T, k: usize) -> Vec<Neighbor> {
        self.knn_traced(query, k, &mut NoTrace)
    }

    /// [`knn`](vantage_core::MetricIndex::knn) with instrumentation; see
    /// [`range_traced`](VpTree::range_traced). Subtrees abandoned by the
    /// best-first early exit are reported as
    /// [`FirstShell`](vantage_core::trace::PruneReason::FirstShell)
    /// prunes with the shell bound that kept them queued.
    pub fn knn_traced<S: TraceSink>(&self, query: &T, k: usize, sink: &mut S) -> Vec<Neighbor> {
        let mut collector = KnnCollector::new(k);
        self.knn_into(&mut collector, query, sink);
        collector.into_sorted()
    }

    /// Runs the best-first kNN traversal into a caller-provided
    /// collector — shared with the sharded scatter path (which passes a
    /// collector wired to a cross-shard bound).
    pub(crate) fn knn_into<S: TraceSink>(
        &self,
        collector: &mut KnnCollector,
        query: &T,
        sink: &mut S,
    ) {
        self.kernel(query).knn_into(collector, sink);
    }
}

impl<T, M> VpTree<T, M> {
    /// Binds this tree's arena, items and metric to a query.
    pub(crate) fn kernel<'k>(&'k self, query: &'k T) -> Kernel<'k, [T], M, T> {
        Kernel {
            arena: self.arena.view(),
            root: self.root,
            items: self.items.as_slice(),
            metric: &self.metric,
            query,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::params::VpTreeParams;
    use crate::tree::VpTree;
    use vantage_core::prelude::*;
    use vantage_core::MetricIndex;

    fn grid() -> Vec<Vec<f64>> {
        let mut v = Vec::new();
        for x in 0..10 {
            for y in 0..10 {
                v.push(vec![f64::from(x), f64::from(y)]);
            }
        }
        v
    }

    fn tree(order: usize, leaf: usize) -> VpTree<Vec<f64>, Euclidean> {
        VpTree::build(
            grid(),
            Euclidean,
            VpTreeParams::with_order(order).leaf_capacity(leaf).seed(11),
        )
        .unwrap()
    }

    fn oracle() -> LinearScan<Vec<f64>, Euclidean> {
        LinearScan::new(grid(), Euclidean)
    }

    #[test]
    fn range_matches_linear_scan() {
        let t = tree(2, 1);
        let o = oracle();
        for (q, r) in [
            (vec![5.0, 5.0], 1.0),
            (vec![0.0, 0.0], 3.5),
            (vec![4.5, 4.5], 0.2),
            (vec![20.0, 20.0], 15.0),
        ] {
            let mut a = t.range(&q, r);
            let mut b = o.range(&q, r);
            a.sort_unstable_by_key(|n| n.id);
            b.sort_unstable_by_key(|n| n.id);
            assert_eq!(a, b, "q={q:?} r={r}");
        }
    }

    #[test]
    fn range_on_mway_trees_matches_too() {
        let o = oracle();
        for order in [2, 3, 4, 5] {
            for leaf in [1, 4, 13] {
                let t = tree(order, leaf);
                let mut a = t.range(&vec![3.3, 7.1], 2.5);
                let mut b = o.range(&vec![3.3, 7.1], 2.5);
                a.sort_unstable_by_key(|n| n.id);
                b.sort_unstable_by_key(|n| n.id);
                assert_eq!(a, b, "order={order} leaf={leaf}");
            }
        }
    }

    #[test]
    fn knn_matches_brute_force_distances() {
        let t = tree(3, 2);
        let o = oracle();
        for k in [1, 3, 10, 99, 100, 150] {
            let a = t.knn(&vec![4.2, 4.9], k);
            let b = o.knn(&vec![4.2, 4.9], k);
            assert_eq!(a.len(), b.len(), "k={k}");
            for (x, y) in a.iter().zip(&b) {
                assert!((x.distance - y.distance).abs() < 1e-12, "k={k}");
            }
        }
    }

    #[test]
    fn knn_k_zero_is_empty() {
        assert!(tree(2, 1).knn(&vec![0.0, 0.0], 0).is_empty());
    }

    #[test]
    fn range_radius_zero_finds_exact_point() {
        let t = tree(2, 1);
        let hits = t.range(&vec![7.0, 3.0], 0.0);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].distance, 0.0);
    }

    #[test]
    fn range_covers_everything_with_huge_radius() {
        let t = tree(3, 4);
        assert_eq!(t.range(&vec![5.0, 5.0], 1e9).len(), 100);
    }

    #[test]
    fn search_visits_fewer_points_than_linear_scan() {
        let metric = Counted::new(Euclidean);
        let probe = metric.clone();
        let t = VpTree::build(grid(), metric, VpTreeParams::with_order(2).seed(3)).unwrap();
        probe.reset();
        t.range(&vec![5.0, 5.0], 1.0);
        let used = probe.count();
        assert!(used < 100, "vp-tree used {used} >= linear scan's 100");
        assert!(used > 0);
    }

    #[test]
    fn knn_prunes_too() {
        let metric = Counted::new(Euclidean);
        let probe = metric.clone();
        let t = VpTree::build(grid(), metric, VpTreeParams::with_order(2).seed(3)).unwrap();
        probe.reset();
        let out = t.knn(&vec![5.0, 5.0], 3);
        assert_eq!(out.len(), 3);
        assert!(probe.count() < 100);
    }

    #[test]
    fn borrowed_view_answers_bit_identically() {
        let t = tree(3, 2);
        let r = t.as_view();
        for (q, radius) in [(vec![5.0, 5.0], 1.0), (vec![0.0, 0.0], 3.5)] {
            assert_eq!(t.range(&q, radius), r.range(&q, radius));
        }
        for k in [1, 7, 100] {
            assert_eq!(t.knn(&vec![4.2, 4.9], k), r.knn(&vec![4.2, 4.9], k));
        }
    }
}
