//! Scatter-gather participation: vp-trees as shards of a
//! [`ShardedIndex`](vantage_core::shard::ShardedIndex).
//!
//! Both methods run the exact same traversals as [`knn`] / `k_farthest`,
//! only through a collector wired to the group-shared bound — the shared
//! value changes *which subtrees get pruned*, never the answer.
//!
//! [`knn`]: vantage_core::MetricIndex::knn

use std::sync::Arc;

use vantage_core::farthest::KfnCollector;
use vantage_core::shard::{ShardSearch, SharedLowerBound, SharedUpperBound};
use vantage_core::trace::NoTrace;
use vantage_core::{BoundedMetric, KnnCollector, Neighbor};

use crate::tree::VpTree;

impl<T, M: BoundedMetric<T>> ShardSearch<T> for VpTree<T, M> {
    fn knn_shared(&self, query: &T, k: usize, shared: Arc<SharedUpperBound>) -> Vec<Neighbor> {
        let mut collector = KnnCollector::with_shared(k, shared);
        self.knn_into(&mut collector, query, &mut NoTrace);
        collector.into_sorted()
    }

    fn kfn_shared(&self, query: &T, k: usize, shared: Arc<SharedLowerBound>) -> Vec<Neighbor> {
        let mut collector = KfnCollector::with_shared(k, shared);
        if k > 0 {
            self.kfn_into(&mut collector, query, &mut NoTrace);
        }
        collector.into_sorted()
    }
}

#[cfg(test)]
mod tests {
    use crate::params::VpTreeParams;
    use crate::tree::VpTree;
    use vantage_core::prelude::*;
    use vantage_core::shard::ShardedIndex;

    fn grid() -> Vec<Vec<f64>> {
        let mut v = Vec::new();
        for x in 0..10 {
            for y in 0..10 {
                v.push(vec![f64::from(x), f64::from(y)]);
            }
        }
        v
    }

    #[test]
    fn sharded_vp_trees_match_linear_scan() {
        let oracle = LinearScan::new(grid(), Euclidean);
        let q = vec![4.5, 4.5];
        for shards in [1, 2, 3, 7] {
            let idx = ShardedIndex::build(grid(), shards, Threads::Fixed(4), |s, part| {
                VpTree::build(part, Euclidean, VpTreeParams::with_order(3).seed(s as u64))
            })
            .unwrap();
            // The grid is full of exact ties around the query center.
            for k in [1, 4, 10, 100, 150] {
                assert_eq!(idx.knn(&q, k), oracle.knn(&q, k), "shards={shards} k={k}");
                assert_eq!(
                    idx.k_farthest(&q, k),
                    oracle.k_farthest(&q, k),
                    "shards={shards} k={k}"
                );
            }
            assert_eq!(idx.range(&q, 2.5), oracle.range(&q, 2.5), "shards={shards}");
            assert_eq!(
                idx.range_beyond(&q, 5.0),
                oracle.range_beyond(&q, 5.0),
                "shards={shards}"
            );
        }
    }
}
