//! Structural introspection for persistence.
//!
//! A built [`VpTree`] is a pure function of `(items, params)` — the node
//! arena holds only ids, cutoff distances and child links. This module
//! exposes that structure as plain public data ([`VpTreeParts`]) so a
//! persistence layer can serialize it without reaching into crate
//! internals, and rebuilds a tree from parts while **validating every
//! structural invariant that the search paths rely on** — a corrupted or
//! hand-crafted snapshot yields a typed error, never an out-of-bounds
//! panic or an unterminated traversal. (The validation itself is shared
//! with the flat decode path: see
//! [`validate_arena`](crate::validate_arena).)

use vantage_core::{Result, VantageError};

use crate::arena::{VpArena, VpNodeView, NO_CHILD};
use crate::node::Node;
use crate::params::VpTreeParams;
use crate::tree::VpTree;

/// One vp-tree node in the public mirror of the arena layout.
#[derive(Debug, Clone, PartialEq)]
pub enum RawVpNode {
    /// Interior node: vantage point, `order − 1` cutoffs, `order` child
    /// slots (arena indexes; `None` for empty partitions).
    Internal {
        /// Item id of the node's vantage point.
        vantage: u32,
        /// Partition boundaries, non-decreasing.
        cutoffs: Vec<f64>,
        /// Child arena ids, one slot per partition.
        children: Vec<Option<u32>>,
    },
    /// Leaf bucket of item ids.
    Leaf {
        /// Item ids stored in this bucket.
        items: Vec<u32>,
    },
}

/// The structural skeleton of a vp-tree: everything except the item
/// payloads and the metric value itself.
#[derive(Debug, Clone, PartialEq)]
pub struct VpTreeParts {
    /// The construction parameters the tree was built with.
    pub params: VpTreeParams,
    /// Arena id of the root node (`None` for an empty tree).
    pub root: Option<u32>,
    /// The node arena in DFS preorder (parents precede children).
    pub nodes: Vec<RawVpNode>,
}

fn corrupt(detail: impl Into<String>) -> VantageError {
    VantageError::corrupt(detail)
}

impl<T, M> VpTree<T, M> {
    /// Copies the tree's structural skeleton out as plain data.
    pub fn to_parts(&self) -> VpTreeParts {
        let view = self.arena.view();
        VpTreeParts {
            params: self.params.clone(),
            root: self.root,
            nodes: (0..view.len() as u32)
                .map(|id| match view.node(id) {
                    VpNodeView::Internal {
                        vantage,
                        cutoffs,
                        children,
                    } => RawVpNode::Internal {
                        vantage,
                        cutoffs: cutoffs.to_vec(),
                        children: children
                            .iter()
                            .map(|&c| (c != NO_CHILD).then_some(c))
                            .collect(),
                    },
                    VpNodeView::Leaf { items } => RawVpNode::Leaf {
                        items: items.to_vec(),
                    },
                })
                .collect(),
        }
    }

    /// Reassembles a tree from `items`, a `metric` and a previously
    /// exported (or deserialized) skeleton.
    ///
    /// The skeleton is fully validated (via
    /// [`validate_arena`](crate::validate_arena)): parameter sanity,
    /// node-id and item-id ranges, arena preorder (every child id exceeds
    /// its parent's, which also rules out cycles), cutoff shapes and
    /// ordering, leaf capacities, reachability of every node from the
    /// root, and exactly-once coverage of every item. No distances are
    /// recomputed — validation is `O(n + nodes)`.
    ///
    /// # Errors
    ///
    /// [`VantageError::CorruptSnapshot`] describing the first violated
    /// invariant, or an [`VantageError::InvalidParameter`] from the
    /// embedded params.
    pub fn from_parts(items: Vec<T>, metric: M, parts: VpTreeParts) -> Result<Self> {
        let VpTreeParts {
            params,
            root,
            nodes,
        } = parts;
        params.validate()?;
        if nodes.len() >= (1usize << 31) {
            return Err(corrupt("node arena exceeds 2^31 - 1 nodes"));
        }
        // Per-node stride pre-checks so the arena packer cannot be fed
        // mismatched shapes; everything else is validated on the packed
        // arena.
        for (node_id, node) in nodes.iter().enumerate() {
            if let RawVpNode::Internal {
                cutoffs, children, ..
            } = node
            {
                if children.len() != params.order {
                    return Err(corrupt(format!(
                        "node {node_id}: {} child slots, order is {}",
                        children.len(),
                        params.order
                    )));
                }
                if cutoffs.len() + 1 != params.order {
                    return Err(corrupt(format!(
                        "node {node_id}: {} cutoffs, expected {}",
                        cutoffs.len(),
                        params.order - 1
                    )));
                }
            }
        }
        let nodes: Vec<Node> = nodes
            .into_iter()
            .map(|node| match node {
                RawVpNode::Internal {
                    vantage,
                    cutoffs,
                    children,
                } => Node::Internal {
                    vantage,
                    cutoffs,
                    children,
                },
                RawVpNode::Leaf { items } => Node::Leaf { items },
            })
            .collect();
        let arena = VpArena::from_nodes(params.order, &nodes);
        Self::from_arena(items, metric, params, root, arena)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vantage_core::prelude::*;

    fn points(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| vec![i as f64, (i * 7 % 13) as f64])
            .collect()
    }

    fn tree() -> VpTree<Vec<f64>, Euclidean> {
        VpTree::build(
            points(120),
            Euclidean,
            VpTreeParams::with_order(3).leaf_capacity(4).seed(7),
        )
        .unwrap()
    }

    #[test]
    fn parts_round_trip_is_identical() {
        let original = tree();
        let parts = original.to_parts();
        let rebuilt =
            VpTree::from_parts(original.items().to_vec(), Euclidean, parts.clone()).unwrap();
        assert_eq!(rebuilt.to_parts(), parts);
        let q = vec![17.0, 3.0];
        assert_eq!(original.range(&q, 5.0), rebuilt.range(&q, 5.0));
        assert_eq!(original.knn(&q, 9), rebuilt.knn(&q, 9));
        rebuilt.check_invariants().unwrap();
    }

    #[test]
    fn empty_tree_round_trips() {
        let original =
            VpTree::build(Vec::<Vec<f64>>::new(), Euclidean, VpTreeParams::binary()).unwrap();
        let rebuilt =
            VpTree::from_parts(Vec::<Vec<f64>>::new(), Euclidean, original.to_parts()).unwrap();
        assert!(rebuilt.is_empty());
    }

    #[test]
    fn out_of_range_item_id_is_rejected() {
        let original = tree();
        let parts = original.to_parts();
        // Fewer items than the skeleton references.
        let err = VpTree::from_parts(points(10), Euclidean, parts).unwrap_err();
        assert!(matches!(err, VantageError::CorruptSnapshot { .. }), "{err}");
    }

    #[test]
    fn backward_child_link_is_rejected() {
        let original = tree();
        let mut parts = original.to_parts();
        // Point some internal node's first live child back at the root.
        let node = parts
            .nodes
            .iter_mut()
            .skip(1)
            .find_map(|n| match n {
                RawVpNode::Internal { children, .. } => {
                    children.iter_mut().find_map(|c| c.as_mut())
                }
                RawVpNode::Leaf { .. } => None,
            })
            .expect("tree has a non-root internal node");
        *node = 0;
        let err = VpTree::from_parts(original.items().to_vec(), Euclidean, parts).unwrap_err();
        assert!(matches!(err, VantageError::CorruptSnapshot { .. }), "{err}");
    }

    #[test]
    fn duplicated_item_is_rejected() {
        let original = tree();
        let mut parts = original.to_parts();
        let leaf = parts
            .nodes
            .iter_mut()
            .find_map(|n| match n {
                RawVpNode::Leaf { items } if items.len() >= 2 => Some(items),
                _ => None,
            })
            .expect("tree has a multi-item leaf");
        leaf[0] = leaf[1];
        let err = VpTree::from_parts(original.items().to_vec(), Euclidean, parts).unwrap_err();
        assert!(matches!(err, VantageError::CorruptSnapshot { .. }), "{err}");
    }

    #[test]
    fn unsorted_cutoffs_are_rejected() {
        let original = tree();
        let mut parts = original.to_parts();
        match &mut parts.nodes[0] {
            RawVpNode::Internal { cutoffs, .. } => cutoffs.reverse(),
            RawVpNode::Leaf { .. } => panic!("root of a 120-item tree is internal"),
        }
        let err = VpTree::from_parts(original.items().to_vec(), Euclidean, parts);
        // Reversing sorted cutoffs breaks ordering unless all were equal.
        assert!(err.is_err());
    }

    #[test]
    fn arena_round_trip_preserves_answers() {
        let original = tree();
        let arena = VpArena::from_raw_arrays(
            original.params().order as u32,
            original.arena().meta().to_vec(),
            original.arena().vantage().to_vec(),
            original.arena().children().to_vec(),
            original.arena().cutoffs().to_vec(),
            original.arena().leaf_spans().to_vec(),
            original.arena().leaf_items().to_vec(),
        );
        let rebuilt = VpTree::from_arena(
            original.items().to_vec(),
            Euclidean,
            original.params().clone(),
            original.root(),
            arena,
        )
        .unwrap();
        let q = vec![17.0, 3.0];
        assert_eq!(original.range(&q, 5.0), rebuilt.range(&q, 5.0));
        assert_eq!(original.knn(&q, 9), rebuilt.knn(&q, 9));
    }
}
