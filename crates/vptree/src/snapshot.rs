//! Structural introspection for persistence.
//!
//! A built [`VpTree`] is a pure function of `(items, params)` — the node
//! arena holds only ids, cutoff distances and child links. This module
//! exposes that structure as plain public data ([`VpTreeParts`]) so a
//! persistence layer can serialize it without reaching into crate
//! internals, and rebuilds a tree from parts while **validating every
//! structural invariant that the search paths rely on** — a corrupted or
//! hand-crafted snapshot yields a typed error, never an out-of-bounds
//! panic or an unterminated traversal.

use vantage_core::{Result, VantageError};

use crate::node::{Node, NodeId};
use crate::params::VpTreeParams;
use crate::tree::VpTree;

/// One vp-tree node in the public mirror of the arena layout.
#[derive(Debug, Clone, PartialEq)]
pub enum RawVpNode {
    /// Interior node: vantage point, `order − 1` cutoffs, `order` child
    /// slots (arena indexes; `None` for empty partitions).
    Internal {
        /// Item id of the node's vantage point.
        vantage: u32,
        /// Partition boundaries, non-decreasing.
        cutoffs: Vec<f64>,
        /// Child arena ids, one slot per partition.
        children: Vec<Option<u32>>,
    },
    /// Leaf bucket of item ids.
    Leaf {
        /// Item ids stored in this bucket.
        items: Vec<u32>,
    },
}

/// The structural skeleton of a vp-tree: everything except the item
/// payloads and the metric value itself.
#[derive(Debug, Clone, PartialEq)]
pub struct VpTreeParts {
    /// The construction parameters the tree was built with.
    pub params: VpTreeParams,
    /// Arena id of the root node (`None` for an empty tree).
    pub root: Option<u32>,
    /// The node arena in DFS preorder (parents precede children).
    pub nodes: Vec<RawVpNode>,
}

fn corrupt(detail: impl Into<String>) -> VantageError {
    VantageError::corrupt(detail)
}

impl<T, M> VpTree<T, M> {
    /// Copies the tree's structural skeleton out as plain data.
    pub fn to_parts(&self) -> VpTreeParts {
        VpTreeParts {
            params: self.params.clone(),
            root: self.root,
            nodes: self
                .nodes
                .iter()
                .map(|node| match node {
                    Node::Internal {
                        vantage,
                        cutoffs,
                        children,
                    } => RawVpNode::Internal {
                        vantage: *vantage,
                        cutoffs: cutoffs.clone(),
                        children: children.clone(),
                    },
                    Node::Leaf { items } => RawVpNode::Leaf {
                        items: items.clone(),
                    },
                })
                .collect(),
        }
    }

    /// Reassembles a tree from `items`, a `metric` and a previously
    /// exported (or deserialized) skeleton.
    ///
    /// The skeleton is fully validated first: parameter sanity, node-id
    /// and item-id ranges, arena preorder (every child id exceeds its
    /// parent's, which also rules out cycles), cutoff shapes and ordering,
    /// leaf capacities, reachability of every node from the root, and
    /// exactly-once coverage of every item. No distances are recomputed —
    /// validation is `O(n + nodes)`.
    ///
    /// # Errors
    ///
    /// [`VantageError::CorruptSnapshot`] describing the first violated
    /// invariant, or an [`VantageError::InvalidParameter`] from the
    /// embedded params.
    pub fn from_parts(items: Vec<T>, metric: M, parts: VpTreeParts) -> Result<Self> {
        let VpTreeParts {
            params,
            root,
            nodes,
        } = parts;
        params.validate()?;

        let n_items = items.len();
        let n_nodes = nodes.len();
        match root {
            None => {
                if n_items != 0 || n_nodes != 0 {
                    return Err(corrupt(format!(
                        "rootless tree carries {n_items} items and {n_nodes} nodes"
                    )));
                }
            }
            Some(root) => {
                if (root as usize) >= n_nodes {
                    return Err(corrupt(format!(
                        "root id {root} out of range ({n_nodes} nodes)"
                    )));
                }
            }
        }

        let mut seen = vec![false; n_items];
        let mark = |id: u32, seen: &mut Vec<bool>| -> Result<()> {
            let slot = seen
                .get_mut(id as usize)
                .ok_or_else(|| corrupt(format!("item id {id} out of range ({n_items} items)")))?;
            if *slot {
                return Err(corrupt(format!("item id {id} appears more than once")));
            }
            *slot = true;
            Ok(())
        };
        // Child links into a node must come from exactly one parent and
        // point strictly forward; with the root at the front this makes
        // the arena an acyclic preorder forest rooted at `root`.
        let mut referenced = vec![false; n_nodes];
        for (node_id, node) in nodes.iter().enumerate() {
            match node {
                RawVpNode::Internal {
                    vantage,
                    cutoffs,
                    children,
                } => {
                    mark(*vantage, &mut seen)?;
                    if children.len() != params.order {
                        return Err(corrupt(format!(
                            "node {node_id}: {} child slots, order is {}",
                            children.len(),
                            params.order
                        )));
                    }
                    if cutoffs.len() + 1 != params.order {
                        return Err(corrupt(format!(
                            "node {node_id}: {} cutoffs, expected {}",
                            cutoffs.len(),
                            params.order - 1
                        )));
                    }
                    if cutoffs.iter().any(|c| c.is_nan()) {
                        return Err(corrupt(format!("node {node_id}: NaN cutoff")));
                    }
                    if cutoffs.windows(2).any(|w| w[0] > w[1]) {
                        return Err(corrupt(format!(
                            "node {node_id}: cutoffs not sorted: {cutoffs:?}"
                        )));
                    }
                    for &child in children.iter().flatten() {
                        if (child as usize) >= n_nodes {
                            return Err(corrupt(format!(
                                "node {node_id}: child id {child} out of range ({n_nodes} nodes)"
                            )));
                        }
                        if (child as usize) <= node_id {
                            return Err(corrupt(format!(
                                "node {node_id}: child id {child} does not follow its parent"
                            )));
                        }
                        if referenced[child as usize] {
                            return Err(corrupt(format!(
                                "node {child} is referenced by more than one parent"
                            )));
                        }
                        referenced[child as usize] = true;
                    }
                }
                RawVpNode::Leaf { items: bucket } => {
                    if bucket.is_empty() {
                        return Err(corrupt(format!("node {node_id}: empty leaf bucket")));
                    }
                    if bucket.len() > params.leaf_capacity {
                        return Err(corrupt(format!(
                            "node {node_id}: leaf holds {} items, capacity is {}",
                            bucket.len(),
                            params.leaf_capacity
                        )));
                    }
                    for &id in bucket {
                        mark(id, &mut seen)?;
                    }
                }
            }
        }
        if let Some(root) = root {
            if referenced[root as usize] {
                return Err(corrupt("root node is also referenced as a child"));
            }
        }
        // Every non-root node must be someone's child: single-reference
        // plus exactly-once item coverage then imply the whole arena is
        // reachable from the root.
        if let Some(orphan) = referenced
            .iter()
            .enumerate()
            .position(|(id, &linked)| !linked && Some(id as u32) != root)
        {
            return Err(corrupt(format!(
                "node {orphan} is unreachable from the root"
            )));
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(corrupt(format!("item {missing} appears in no node")));
        }

        let nodes: Vec<Node> = nodes
            .into_iter()
            .map(|node| match node {
                RawVpNode::Internal {
                    vantage,
                    cutoffs,
                    children,
                } => Node::Internal {
                    vantage,
                    cutoffs,
                    children: children as Vec<Option<NodeId>>,
                },
                RawVpNode::Leaf { items } => Node::Leaf { items },
            })
            .collect();
        Ok(VpTree {
            items,
            metric,
            nodes,
            root,
            params,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vantage_core::prelude::*;

    fn points(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| vec![i as f64, (i * 7 % 13) as f64])
            .collect()
    }

    fn tree() -> VpTree<Vec<f64>, Euclidean> {
        VpTree::build(
            points(120),
            Euclidean,
            VpTreeParams::with_order(3).leaf_capacity(4).seed(7),
        )
        .unwrap()
    }

    #[test]
    fn parts_round_trip_is_identical() {
        let original = tree();
        let parts = original.to_parts();
        let rebuilt =
            VpTree::from_parts(original.items().to_vec(), Euclidean, parts.clone()).unwrap();
        assert_eq!(rebuilt.to_parts(), parts);
        let q = vec![17.0, 3.0];
        assert_eq!(original.range(&q, 5.0), rebuilt.range(&q, 5.0));
        assert_eq!(original.knn(&q, 9), rebuilt.knn(&q, 9));
        rebuilt.check_invariants().unwrap();
    }

    #[test]
    fn empty_tree_round_trips() {
        let original =
            VpTree::build(Vec::<Vec<f64>>::new(), Euclidean, VpTreeParams::binary()).unwrap();
        let rebuilt =
            VpTree::from_parts(Vec::<Vec<f64>>::new(), Euclidean, original.to_parts()).unwrap();
        assert!(rebuilt.is_empty());
    }

    #[test]
    fn out_of_range_item_id_is_rejected() {
        let original = tree();
        let parts = original.to_parts();
        // Fewer items than the skeleton references.
        let err = VpTree::from_parts(points(10), Euclidean, parts).unwrap_err();
        assert!(matches!(err, VantageError::CorruptSnapshot { .. }), "{err}");
    }

    #[test]
    fn backward_child_link_is_rejected() {
        let original = tree();
        let mut parts = original.to_parts();
        // Point some internal node's first live child back at the root.
        let node = parts
            .nodes
            .iter_mut()
            .skip(1)
            .find_map(|n| match n {
                RawVpNode::Internal { children, .. } => {
                    children.iter_mut().find_map(|c| c.as_mut())
                }
                RawVpNode::Leaf { .. } => None,
            })
            .expect("tree has a non-root internal node");
        *node = 0;
        let err = VpTree::from_parts(original.items().to_vec(), Euclidean, parts).unwrap_err();
        assert!(matches!(err, VantageError::CorruptSnapshot { .. }), "{err}");
    }

    #[test]
    fn duplicated_item_is_rejected() {
        let original = tree();
        let mut parts = original.to_parts();
        let leaf = parts
            .nodes
            .iter_mut()
            .find_map(|n| match n {
                RawVpNode::Leaf { items } if items.len() >= 2 => Some(items),
                _ => None,
            })
            .expect("tree has a multi-item leaf");
        leaf[0] = leaf[1];
        let err = VpTree::from_parts(original.items().to_vec(), Euclidean, parts).unwrap_err();
        assert!(matches!(err, VantageError::CorruptSnapshot { .. }), "{err}");
    }

    #[test]
    fn unsorted_cutoffs_are_rejected() {
        let original = tree();
        let mut parts = original.to_parts();
        match &mut parts.nodes[0] {
            RawVpNode::Internal { cutoffs, .. } => cutoffs.reverse(),
            RawVpNode::Leaf { .. } => panic!("root of a 120-item tree is internal"),
        }
        let err = VpTree::from_parts(original.items().to_vec(), Euclidean, parts);
        // Reversing sorted cutoffs breaks ordering unless all were equal.
        assert!(err.is_err());
    }
}
