//! Structural statistics.

use crate::arena::{VpArenaView, VpNodeView, NO_CHILD};
use crate::tree::VpTree;

/// Shape summary of a built vp-tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VpTreeStats {
    /// Number of interior nodes (= number of vantage points).
    pub internal_nodes: usize,
    /// Number of leaf buckets.
    pub leaf_nodes: usize,
    /// Number of data points living in leaves.
    pub leaf_items: usize,
    /// Number of data points serving as vantage points.
    pub vantage_points: usize,
    /// Height: edges on the longest root-to-leaf path (0 for a single
    /// leaf, 0 for an empty tree).
    pub height: usize,
    /// Largest leaf bucket.
    pub max_leaf_len: usize,
}

impl<T, M> VpTree<T, M> {
    /// Computes structural statistics by walking the tree.
    pub fn stats(&self) -> VpTreeStats {
        let mut s = VpTreeStats {
            internal_nodes: 0,
            leaf_nodes: 0,
            leaf_items: 0,
            vantage_points: 0,
            height: 0,
            max_leaf_len: 0,
        };
        if let Some(root) = self.root {
            s.height = walk(self.arena.view(), root, &mut s);
        }
        s
    }
}

fn walk(view: VpArenaView<'_>, node: u32, s: &mut VpTreeStats) -> usize {
    match view.node(node) {
        VpNodeView::Leaf { items } => {
            s.leaf_nodes += 1;
            s.leaf_items += items.len();
            s.max_leaf_len = s.max_leaf_len.max(items.len());
            0
        }
        VpNodeView::Internal { children, .. } => {
            s.internal_nodes += 1;
            s.vantage_points += 1;
            1 + children
                .iter()
                .filter(|&&c| c != NO_CHILD)
                .map(|&c| walk(view, c, s))
                .max()
                .unwrap_or(0)
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::params::VpTreeParams;
    use crate::tree::VpTree;
    use vantage_core::prelude::*;

    fn points(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64]).collect()
    }

    #[test]
    fn empty_tree_stats() {
        let t = VpTree::build(points(0), Euclidean, VpTreeParams::binary()).unwrap();
        let s = t.stats();
        assert_eq!(s.internal_nodes, 0);
        assert_eq!(s.leaf_nodes, 0);
        assert_eq!(s.height, 0);
    }

    #[test]
    fn counts_partition_items() {
        let t = VpTree::build(
            points(100),
            Euclidean,
            VpTreeParams::with_order(3).leaf_capacity(4).seed(2),
        )
        .unwrap();
        let s = t.stats();
        assert_eq!(s.leaf_items + s.vantage_points, 100);
        assert!(s.max_leaf_len <= 4);
        assert!(s.height >= 3); // 3-way with capacity 4 over 100 points
    }

    #[test]
    fn binary_leaf1_height_is_logarithmic() {
        let t = VpTree::build(points(256), Euclidean, VpTreeParams::binary().seed(1)).unwrap();
        let s = t.stats();
        // Perfectly balanced would be 8; allow slack for the
        // vantage-point removals.
        assert!(s.height >= 7 && s.height <= 12, "height {}", s.height);
    }

    #[test]
    fn higher_order_is_shorter() {
        let bin = VpTree::build(points(500), Euclidean, VpTreeParams::binary().seed(1))
            .unwrap()
            .stats();
        let wide = VpTree::build(points(500), Euclidean, VpTreeParams::with_order(5).seed(1))
            .unwrap()
            .stats();
        assert!(wide.height < bin.height);
    }
}
