//! The [`VpTree`] type and its public surface.

use vantage_core::{MetricIndex, Neighbor};

use crate::node::{Node, NodeId};
use crate::params::VpTreeParams;

/// An m-way vantage-point tree over items of type `T` under metric `M`.
///
/// Built once from a dataset ([`VpTree::build`]); answers range and
/// k-nearest-neighbor queries through [`MetricIndex`]. See the crate docs
/// for the algorithm and the faithfulness notes.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VpTree<T, M> {
    pub(crate) items: Vec<T>,
    pub(crate) metric: M,
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: Option<NodeId>,
    pub(crate) params: VpTreeParams,
}

impl<T, M> VpTree<T, M> {
    /// The construction parameters.
    pub fn params(&self) -> &VpTreeParams {
        &self.params
    }

    /// The metric in use.
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// All indexed items, in insertion order (ids index into this slice).
    pub fn items(&self) -> &[T] {
        &self.items
    }

    pub(crate) fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id as usize]
    }
}

impl<T, M: vantage_core::BoundedMetric<T>> MetricIndex<T> for VpTree<T, M> {
    fn len(&self) -> usize {
        self.items.len()
    }

    fn get(&self, id: usize) -> Option<&T> {
        self.items.get(id)
    }

    fn range(&self, query: &T, radius: f64) -> Vec<Neighbor> {
        self.range_search(query, radius)
    }

    fn knn(&self, query: &T, k: usize) -> Vec<Neighbor> {
        self.knn_search(query, k)
    }
}
