//! The [`VpTree`] type and its public surface.

use vantage_core::{MetricIndex, Neighbor, Result};

use crate::arena::{VpArena, VpArenaView};
use crate::params::VpTreeParams;
use crate::treeref::VpTreeRef;
use crate::validate::validate_arena;

/// An m-way vantage-point tree over items of type `T` under metric `M`.
///
/// Built once from a dataset ([`VpTree::build`]); answers range and
/// k-nearest-neighbor queries through [`MetricIndex`]. Nodes live in a
/// flat, index-addressed [`VpArena`]; see the crate docs for the
/// algorithm and the faithfulness notes.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VpTree<T, M> {
    pub(crate) items: Vec<T>,
    pub(crate) metric: M,
    pub(crate) arena: VpArena,
    pub(crate) root: Option<u32>,
    pub(crate) params: VpTreeParams,
}

impl<T, M> VpTree<T, M> {
    /// The construction parameters.
    pub fn params(&self) -> &VpTreeParams {
        &self.params
    }

    /// The metric in use.
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// All indexed items, in insertion order (ids index into this slice).
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// The flat node arena.
    pub fn arena(&self) -> VpArenaView<'_> {
        self.arena.view()
    }

    /// Arena id of the root node (`None` for an empty tree).
    pub fn root(&self) -> Option<u32> {
        self.root
    }

    /// Borrows the tree as a [`VpTreeRef`] — the same view type the
    /// zero-copy snapshot path serves queries through.
    pub fn as_view(&self) -> VpTreeRef<'_, &[T], M> {
        VpTreeRef::new(
            self.arena.view(),
            self.root,
            self.items.as_slice(),
            &self.metric,
        )
    }

    /// Assembles a tree from items, a metric, parameters and a flat node
    /// arena, validating every structural invariant the search paths rely
    /// on — the decode path of the persistence layer.
    ///
    /// # Errors
    ///
    /// [`CorruptSnapshot`](vantage_core::VantageError::CorruptSnapshot)
    /// describing the first violated invariant, or an
    /// [`InvalidParameter`](vantage_core::VantageError::InvalidParameter)
    /// from the embedded params.
    pub fn from_arena(
        items: Vec<T>,
        metric: M,
        params: VpTreeParams,
        root: Option<u32>,
        arena: VpArena,
    ) -> Result<Self> {
        params.validate()?;
        validate_arena(arena.view(), root, items.len(), &params)?;
        Ok(VpTree {
            items,
            metric,
            arena,
            root,
            params,
        })
    }
}

impl<T, M: vantage_core::BoundedMetric<T>> MetricIndex<T> for VpTree<T, M> {
    fn len(&self) -> usize {
        self.items.len()
    }

    fn get(&self, id: usize) -> Option<&T> {
        self.items.get(id)
    }

    fn range(&self, query: &T, radius: f64) -> Vec<Neighbor> {
        self.range_search(query, radius)
    }

    fn knn(&self, query: &T, k: usize) -> Vec<Neighbor> {
        self.knn_search(query, k)
    }
}
