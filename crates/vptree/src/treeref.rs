//! Borrowed vp-tree views: answer every query form without owning
//! nodes or items.
//!
//! A [`VpTreeRef`] is the zero-copy counterpart of
//! [`VpTree`](crate::VpTree): the node arena is a borrowed
//! [`VpArenaView`] (typically resolved inside a memory-mapped snapshot
//! section) and the items come from any [`ItemStore`] — a plain slice,
//! or a flat offset-indexed buffer such as
//! [`FlatF64s`](vantage_core::FlatF64s). Both forms drive the exact same
//! kernels in [`crate::kernel`], so a borrowed view answers
//! bit-identically to the materialized tree it mirrors.

use vantage_core::budget::{BudgetedKnn, SearchBudget};
use vantage_core::farthest::KfnCollector;
use vantage_core::trace::{NoTrace, TraceSink};
use vantage_core::{BoundedMetric, ItemStore, KnnCollector, Metric, Neighbor};

use crate::arena::VpArenaView;
use crate::kernel::Kernel;

/// A borrowed vp-tree: arena view + item store + metric.
///
/// Construction performs no validation — the arena and store must
/// describe a structurally valid tree (every id in range, spans in
/// bounds). The owned-tree path guarantees this by construction; the
/// snapshot path validates once at open time, before any view is built.
#[derive(Debug, Clone, Copy)]
pub struct VpTreeRef<'a, S, M> {
    arena: VpArenaView<'a>,
    root: Option<u32>,
    store: S,
    metric: &'a M,
}

impl<'a, S: ItemStore, M> VpTreeRef<'a, S, M> {
    /// Binds a validated arena view, root, item store and metric.
    pub fn new(arena: VpArenaView<'a>, root: Option<u32>, store: S, metric: &'a M) -> Self {
        VpTreeRef {
            arena,
            root,
            store,
            metric,
        }
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the tree indexes no items.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// The item named by `id`.
    pub fn item(&self, id: u32) -> &S::Item {
        self.store.get(id)
    }

    /// The metric in use.
    pub fn metric(&self) -> &'a M {
        self.metric
    }

    /// The underlying arena view.
    pub fn arena(&self) -> VpArenaView<'a> {
        self.arena
    }

    fn kernel<'k>(&'k self, query: &'k S::Item) -> Kernel<'k, S, M, S::Item> {
        Kernel {
            arena: self.arena,
            root: self.root,
            items: &self.store,
            metric: self.metric,
            query,
        }
    }

    /// Range search: all items within `radius` of `query`.
    pub fn range(&self, query: &S::Item, radius: f64) -> Vec<Neighbor>
    where
        M: BoundedMetric<S::Item>,
    {
        self.range_traced(query, radius, &mut NoTrace)
    }

    /// [`range`](VpTreeRef::range) with instrumentation into `sink`.
    pub fn range_traced<Sink: TraceSink>(
        &self,
        query: &S::Item,
        radius: f64,
        sink: &mut Sink,
    ) -> Vec<Neighbor>
    where
        M: BoundedMetric<S::Item>,
    {
        self.kernel(query).range(radius, sink)
    }

    /// Best-first k-nearest-neighbor search.
    pub fn knn(&self, query: &S::Item, k: usize) -> Vec<Neighbor>
    where
        M: BoundedMetric<S::Item>,
    {
        self.knn_traced(query, k, &mut NoTrace)
    }

    /// [`knn`](VpTreeRef::knn) with instrumentation into `sink`.
    pub fn knn_traced<Sink: TraceSink>(
        &self,
        query: &S::Item,
        k: usize,
        sink: &mut Sink,
    ) -> Vec<Neighbor>
    where
        M: BoundedMetric<S::Item>,
    {
        let mut collector = KnnCollector::new(k);
        self.kernel(query).knn_into(&mut collector, sink);
        collector.into_sorted()
    }

    /// Far-range search: all items at distance ≥ `radius` from `query`.
    pub fn range_beyond(&self, query: &S::Item, radius: f64) -> Vec<Neighbor>
    where
        M: Metric<S::Item>,
    {
        self.beyond_traced(query, radius, &mut NoTrace)
    }

    /// [`range_beyond`](VpTreeRef::range_beyond) with instrumentation.
    pub fn beyond_traced<Sink: TraceSink>(
        &self,
        query: &S::Item,
        radius: f64,
        sink: &mut Sink,
    ) -> Vec<Neighbor>
    where
        M: Metric<S::Item>,
    {
        self.kernel(query).beyond(radius, sink)
    }

    /// The k items farthest from `query`.
    pub fn k_farthest(&self, query: &S::Item, k: usize) -> Vec<Neighbor>
    where
        M: Metric<S::Item>,
    {
        self.kfn_traced(query, k, &mut NoTrace)
    }

    /// [`k_farthest`](VpTreeRef::k_farthest) with instrumentation.
    pub fn kfn_traced<Sink: TraceSink>(
        &self,
        query: &S::Item,
        k: usize,
        sink: &mut Sink,
    ) -> Vec<Neighbor>
    where
        M: Metric<S::Item>,
    {
        let mut collector = KfnCollector::new(k);
        if k > 0 {
            self.kernel(query).kfn_into(&mut collector, sink);
        }
        collector.into_sorted()
    }

    /// Budgeted best-effort kNN; see
    /// [`BudgetedSearch`](vantage_core::BudgetedSearch).
    pub fn knn_budgeted(&self, query: &S::Item, k: usize, budget: SearchBudget) -> BudgetedKnn
    where
        M: BoundedMetric<S::Item>,
    {
        self.kernel(query).knn_budgeted(k, budget)
    }
}
