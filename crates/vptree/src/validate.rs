//! Structural invariant checking (used by tests and debug assertions).

use vantage_core::Metric;

use crate::node::{Node, NodeId};
use crate::tree::VpTree;

impl<T, M: Metric<T>> VpTree<T, M> {
    /// Verifies the tree's structural invariants, returning a description
    /// of the first violation found:
    ///
    /// 1. every item id appears exactly once (as a vantage point or in a
    ///    leaf);
    /// 2. every point in child `i`'s subtree lies inside the spherical
    ///    shell `[lo_i, hi_i]` around the node's vantage point;
    /// 3. cutoff sequences are non-decreasing;
    /// 4. leaf buckets respect the configured capacity.
    ///
    /// This re-computes `O(n · height)` distances, so it is strictly a
    /// test/diagnostic facility.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut seen = vec![false; self.items.len()];
        if let Some(root) = self.root {
            self.check_node(root, &mut seen)?;
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(format!("item {missing} not reachable from the root"));
        }
        Ok(())
    }

    fn mark(&self, id: u32, seen: &mut [bool]) -> Result<(), String> {
        let slot = seen
            .get_mut(id as usize)
            .ok_or_else(|| format!("item id {id} out of bounds"))?;
        if *slot {
            return Err(format!("item {id} appears more than once"));
        }
        *slot = true;
        Ok(())
    }

    fn check_node(&self, node: NodeId, seen: &mut [bool]) -> Result<(), String> {
        match self.node(node) {
            Node::Leaf { items } => {
                if items.len() > self.params.leaf_capacity {
                    return Err(format!(
                        "leaf holds {} items, capacity is {}",
                        items.len(),
                        self.params.leaf_capacity
                    ));
                }
                for &id in items {
                    self.mark(id, seen)?;
                }
                Ok(())
            }
            Node::Internal {
                vantage,
                cutoffs,
                children,
            } => {
                self.mark(*vantage, seen)?;
                if children.len() != self.params.order {
                    return Err(format!(
                        "internal node has {} child slots, order is {}",
                        children.len(),
                        self.params.order
                    ));
                }
                if cutoffs.len() + 1 != self.params.order {
                    return Err(format!(
                        "internal node has {} cutoffs, expected {}",
                        cutoffs.len(),
                        self.params.order - 1
                    ));
                }
                if cutoffs.windows(2).any(|w| w[0] > w[1]) {
                    return Err(format!("cutoffs not sorted: {cutoffs:?}"));
                }
                for (i, child) in children.iter().enumerate() {
                    let Some(child) = child else { continue };
                    let lo = if i == 0 { 0.0 } else { cutoffs[i - 1] };
                    let hi = if i == cutoffs.len() {
                        f64::INFINITY
                    } else {
                        cutoffs[i]
                    };
                    let mut subtree = Vec::new();
                    self.collect_subtree(*child, &mut subtree);
                    for id in subtree {
                        let d = self
                            .metric
                            .distance(&self.items[*vantage as usize], &self.items[id as usize]);
                        // Tolerance-free: cutoffs are exact stored
                        // distances and the metric is deterministic.
                        if d < lo || d > hi {
                            return Err(format!(
                                "item {id} at distance {d} outside shell [{lo}, {hi}] of child {i}"
                            ));
                        }
                    }
                    self.check_node(*child, seen)?;
                }
                Ok(())
            }
        }
    }

    fn collect_subtree(&self, node: NodeId, out: &mut Vec<u32>) {
        match self.node(node) {
            Node::Leaf { items } => out.extend_from_slice(items),
            Node::Internal {
                vantage, children, ..
            } => {
                out.push(*vantage);
                for child in children.iter().flatten() {
                    self.collect_subtree(*child, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::params::VpTreeParams;
    use crate::tree::VpTree;
    use vantage_core::prelude::*;
    use vantage_core::select::VantageSelector;

    #[test]
    fn built_trees_satisfy_invariants() {
        let points: Vec<Vec<f64>> = (0..300)
            .map(|i| vec![f64::from(i % 17), f64::from(i % 23)])
            .collect();
        for order in [2, 3, 4] {
            for leaf in [1, 5] {
                for selector in [
                    VantageSelector::Random,
                    VantageSelector::FirstItem,
                    VantageSelector::SampledSpread {
                        candidates: 3,
                        sample: 5,
                    },
                ] {
                    let t = VpTree::build(
                        points.clone(),
                        Euclidean,
                        VpTreeParams::with_order(order)
                            .leaf_capacity(leaf)
                            .selector(selector)
                            .seed(7),
                    )
                    .unwrap();
                    t.check_invariants().unwrap();
                }
            }
        }
    }

    #[test]
    fn empty_tree_is_valid() {
        let t = VpTree::build(Vec::<Vec<f64>>::new(), Euclidean, VpTreeParams::binary()).unwrap();
        t.check_invariants().unwrap();
    }
}
