//! Structural validation of flat arenas.
//!
//! [`validate_arena`] is the gate every untrusted arena passes through
//! (snapshot decode, mmap open, [`VpTree::from_arena`]): it proves all
//! the invariants the search kernels rely on for memory safety and
//! termination, in `O(n + nodes)` with no distance computations. The
//! distance-recomputing [`VpTree::check_invariants`] remains a
//! test/diagnostic facility.

use vantage_core::{Metric, Result, VantageError};

use crate::arena::{VpArenaView, VpNodeView, NO_CHILD};
use crate::params::VpTreeParams;
use crate::tree::VpTree;

fn corrupt(detail: impl Into<String>) -> VantageError {
    VantageError::corrupt(detail)
}

/// Validates every structural invariant of a flat arena: meta/rank
/// consistency, array strides, id ranges, arena preorder (every child id
/// exceeds its parent's, which also rules out cycles), cutoff shapes and
/// ordering, leaf spans tiling the bucket buffer, leaf capacities,
/// reachability of every node from the root, and exactly-once coverage
/// of every item.
///
/// A search over a view that passed this check can neither panic, index
/// out of bounds, nor fail to terminate — the contract the zero-copy
/// snapshot path relies on to run queries straight over mapped bytes.
///
/// # Errors
///
/// [`CorruptSnapshot`](VantageError::CorruptSnapshot) describing the
/// first violated invariant.
pub fn validate_arena(
    arena: VpArenaView<'_>,
    root: Option<u32>,
    item_count: usize,
    params: &VpTreeParams,
) -> Result<()> {
    let order = params.order;
    if arena.order() != order {
        return Err(corrupt(format!(
            "arena order {} does not match params order {order}",
            arena.order()
        )));
    }
    let n_nodes = arena.len();
    if n_nodes >= (1usize << 31) {
        return Err(corrupt("node arena exceeds 2^31 - 1 nodes"));
    }

    // Meta ranks must equal the running count of each node class, so the
    // class-segregated arrays are addressed densely and in arena order.
    let (mut internals, mut leaves) = (0usize, 0usize);
    for (node_id, &meta) in arena.meta().iter().enumerate() {
        let is_leaf = meta & (1 << 31) != 0;
        let rank = (meta & !(1u32 << 31)) as usize;
        let expected = if is_leaf { leaves } else { internals };
        if rank != expected {
            return Err(corrupt(format!(
                "node {node_id}: class rank {rank}, expected {expected}"
            )));
        }
        if is_leaf {
            leaves += 1;
        } else {
            internals += 1;
        }
    }
    if arena.vantage().len() != internals {
        return Err(corrupt(format!(
            "{} vantage entries for {internals} internal nodes",
            arena.vantage().len()
        )));
    }
    if arena.children().len() != internals * order {
        return Err(corrupt(format!(
            "{} child slots for {internals} internal nodes of order {order}",
            arena.children().len()
        )));
    }
    if arena.cutoffs().len() != internals * (order - 1) {
        return Err(corrupt(format!(
            "{} cutoffs for {internals} internal nodes of order {order}",
            arena.cutoffs().len()
        )));
    }
    if arena.leaf_spans().len() != leaves * 2 {
        return Err(corrupt(format!(
            "{} leaf-span words for {leaves} leaves",
            arena.leaf_spans().len()
        )));
    }

    // Leaf spans must tile the shared bucket buffer contiguously.
    let mut running = 0usize;
    for (leaf, span) in arena.leaf_spans().chunks_exact(2).enumerate() {
        let (start, len) = (span[0] as usize, span[1] as usize);
        if start != running {
            return Err(corrupt(format!(
                "leaf {leaf}: bucket starts at {start}, expected {running}"
            )));
        }
        if len == 0 {
            return Err(corrupt(format!("leaf {leaf}: empty leaf bucket")));
        }
        if len > params.leaf_capacity {
            return Err(corrupt(format!(
                "leaf {leaf}: holds {len} items, capacity is {}",
                params.leaf_capacity
            )));
        }
        running += len;
    }
    if running != arena.leaf_items().len() {
        return Err(corrupt(format!(
            "leaf spans cover {running} items, bucket buffer holds {}",
            arena.leaf_items().len()
        )));
    }

    match root {
        None => {
            if item_count != 0 || n_nodes != 0 {
                return Err(corrupt(format!(
                    "rootless tree carries {item_count} items and {n_nodes} nodes"
                )));
            }
        }
        Some(root) => {
            if (root as usize) >= n_nodes {
                return Err(corrupt(format!(
                    "root id {root} out of range ({n_nodes} nodes)"
                )));
            }
        }
    }

    let mut seen = vec![false; item_count];
    let mut mark = |id: u32| -> Result<()> {
        let slot = seen
            .get_mut(id as usize)
            .ok_or_else(|| corrupt(format!("item id {id} out of range ({item_count} items)")))?;
        if *slot {
            return Err(corrupt(format!("item id {id} appears more than once")));
        }
        *slot = true;
        Ok(())
    };
    // Child links into a node must come from exactly one parent and
    // point strictly forward; with the root at the front this makes
    // the arena an acyclic preorder forest rooted at `root`.
    let mut referenced = vec![false; n_nodes];
    for node_id in 0..n_nodes {
        match arena.node(node_id as u32) {
            VpNodeView::Internal {
                vantage,
                cutoffs,
                children,
            } => {
                mark(vantage)?;
                if cutoffs.iter().any(|c| c.is_nan()) {
                    return Err(corrupt(format!("node {node_id}: NaN cutoff")));
                }
                if cutoffs.windows(2).any(|w| w[0] > w[1]) {
                    return Err(corrupt(format!(
                        "node {node_id}: cutoffs not sorted: {cutoffs:?}"
                    )));
                }
                for &child in children.iter().filter(|&&c| c != NO_CHILD) {
                    if (child as usize) >= n_nodes {
                        return Err(corrupt(format!(
                            "node {node_id}: child id {child} out of range ({n_nodes} nodes)"
                        )));
                    }
                    if (child as usize) <= node_id {
                        return Err(corrupt(format!(
                            "node {node_id}: child id {child} does not follow its parent"
                        )));
                    }
                    if referenced[child as usize] {
                        return Err(corrupt(format!(
                            "node {child} is referenced by more than one parent"
                        )));
                    }
                    referenced[child as usize] = true;
                }
            }
            VpNodeView::Leaf { items } => {
                for &id in items {
                    mark(id)?;
                }
            }
        }
    }
    if let Some(root) = root {
        if referenced[root as usize] {
            return Err(corrupt("root node is also referenced as a child"));
        }
    }
    // Every non-root node must be someone's child: single-reference
    // plus exactly-once item coverage then imply the whole arena is
    // reachable from the root.
    if let Some(orphan) = referenced
        .iter()
        .enumerate()
        .position(|(id, &linked)| !linked && Some(id as u32) != root)
    {
        return Err(corrupt(format!(
            "node {orphan} is unreachable from the root"
        )));
    }
    if let Some(missing) = seen.iter().position(|&s| !s) {
        return Err(corrupt(format!("item {missing} appears in no node")));
    }
    Ok(())
}

impl<T, M: Metric<T>> VpTree<T, M> {
    /// Verifies the tree's structural invariants, returning a description
    /// of the first violation found:
    ///
    /// 1. every item id appears exactly once (as a vantage point or in a
    ///    leaf);
    /// 2. every point in child `i`'s subtree lies inside the spherical
    ///    shell `[lo_i, hi_i]` around the node's vantage point;
    /// 3. cutoff sequences are non-decreasing;
    /// 4. leaf buckets respect the configured capacity.
    ///
    /// This re-computes `O(n · height)` distances, so it is strictly a
    /// test/diagnostic facility.
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        let view = self.arena.view();
        let mut seen = vec![false; self.items.len()];
        if let Some(root) = self.root {
            self.check_node(view, root, &mut seen)?;
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(format!("item {missing} not reachable from the root"));
        }
        Ok(())
    }

    fn mark(&self, id: u32, seen: &mut [bool]) -> std::result::Result<(), String> {
        let slot = seen
            .get_mut(id as usize)
            .ok_or_else(|| format!("item id {id} out of bounds"))?;
        if *slot {
            return Err(format!("item {id} appears more than once"));
        }
        *slot = true;
        Ok(())
    }

    fn check_node(
        &self,
        view: VpArenaView<'_>,
        node: u32,
        seen: &mut [bool],
    ) -> std::result::Result<(), String> {
        match view.node(node) {
            VpNodeView::Leaf { items } => {
                if items.len() > self.params.leaf_capacity {
                    return Err(format!(
                        "leaf holds {} items, capacity is {}",
                        items.len(),
                        self.params.leaf_capacity
                    ));
                }
                for &id in items {
                    self.mark(id, seen)?;
                }
                Ok(())
            }
            VpNodeView::Internal {
                vantage,
                cutoffs,
                children,
            } => {
                self.mark(vantage, seen)?;
                if children.len() != self.params.order {
                    return Err(format!(
                        "internal node has {} child slots, order is {}",
                        children.len(),
                        self.params.order
                    ));
                }
                if cutoffs.len() + 1 != self.params.order {
                    return Err(format!(
                        "internal node has {} cutoffs, expected {}",
                        cutoffs.len(),
                        self.params.order - 1
                    ));
                }
                if cutoffs.windows(2).any(|w| w[0] > w[1]) {
                    return Err(format!("cutoffs not sorted: {cutoffs:?}"));
                }
                for (i, &child) in children.iter().enumerate() {
                    if child == NO_CHILD {
                        continue;
                    }
                    let lo = if i == 0 { 0.0 } else { cutoffs[i - 1] };
                    let hi = if i == cutoffs.len() {
                        f64::INFINITY
                    } else {
                        cutoffs[i]
                    };
                    let mut subtree = Vec::new();
                    collect_subtree(view, child, &mut subtree);
                    for id in subtree {
                        let d = self
                            .metric
                            .distance(&self.items[vantage as usize], &self.items[id as usize]);
                        // Tolerance-free: cutoffs are exact stored
                        // distances and the metric is deterministic.
                        if d < lo || d > hi {
                            return Err(format!(
                                "item {id} at distance {d} outside shell [{lo}, {hi}] of child {i}"
                            ));
                        }
                    }
                    self.check_node(view, child, seen)?;
                }
                Ok(())
            }
        }
    }
}

fn collect_subtree(view: VpArenaView<'_>, node: u32, out: &mut Vec<u32>) {
    match view.node(node) {
        VpNodeView::Leaf { items } => out.extend_from_slice(items),
        VpNodeView::Internal {
            vantage, children, ..
        } => {
            out.push(vantage);
            for &child in children.iter().filter(|&&c| c != NO_CHILD) {
                collect_subtree(view, child, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::params::VpTreeParams;
    use crate::tree::VpTree;
    use vantage_core::prelude::*;
    use vantage_core::select::VantageSelector;

    #[test]
    fn built_trees_satisfy_invariants() {
        let points: Vec<Vec<f64>> = (0..300)
            .map(|i| vec![f64::from(i % 17), f64::from(i % 23)])
            .collect();
        for order in [2, 3, 4] {
            for leaf in [1, 5] {
                for selector in [
                    VantageSelector::Random,
                    VantageSelector::FirstItem,
                    VantageSelector::SampledSpread {
                        candidates: 3,
                        sample: 5,
                    },
                ] {
                    let t = VpTree::build(
                        points.clone(),
                        Euclidean,
                        VpTreeParams::with_order(order)
                            .leaf_capacity(leaf)
                            .selector(selector)
                            .seed(7),
                    )
                    .unwrap();
                    t.check_invariants().unwrap();
                }
            }
        }
    }

    #[test]
    fn built_trees_pass_arena_validation() {
        let points: Vec<Vec<f64>> = (0..250)
            .map(|i| vec![f64::from(i % 13), f64::from(i % 29)])
            .collect();
        for order in [2, 3, 5] {
            let t = VpTree::build(
                points.clone(),
                Euclidean,
                VpTreeParams::with_order(order).leaf_capacity(3).seed(9),
            )
            .unwrap();
            super::validate_arena(t.arena(), t.root(), t.items().len(), t.params()).unwrap();
        }
    }

    #[test]
    fn empty_tree_is_valid() {
        let t = VpTree::build(Vec::<Vec<f64>>::new(), Euclidean, VpTreeParams::binary()).unwrap();
        t.check_invariants().unwrap();
        super::validate_arena(t.arena(), t.root(), 0, t.params()).unwrap();
    }
}
