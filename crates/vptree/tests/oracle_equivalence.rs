//! Property tests: vp-trees return exactly the linear-scan answer for
//! arbitrary datasets, queries and radii, across orders, leaf capacities
//! and selectors — the load-bearing correctness property (paper Appendix).

use proptest::prelude::*;
use vantage_core::prelude::*;
use vantage_core::MetricIndex;
use vantage_vptree::{VantageSelector, VpTree, VpTreeParams};

fn point_strategy(dim: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-10.0f64..10.0, dim)
}

fn dataset_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(point_strategy(3), 0..120)
}

fn sorted_ids(mut v: Vec<Neighbor>) -> Vec<usize> {
    v.sort_unstable_by_key(|n| n.id);
    v.into_iter().map(|n| n.id).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn range_matches_linear_scan(
        points in dataset_strategy(),
        query in point_strategy(3),
        radius in 0.0f64..20.0,
        order in 2usize..5,
        leaf in 1usize..8,
        seed in 0u64..4,
    ) {
        let oracle = LinearScan::new(points.clone(), Euclidean);
        let tree = VpTree::build(
            points,
            Euclidean,
            VpTreeParams::with_order(order).leaf_capacity(leaf).seed(seed),
        )
        .unwrap();
        prop_assert_eq!(
            sorted_ids(tree.range(&query, radius)),
            sorted_ids(oracle.range(&query, radius))
        );
    }

    #[test]
    fn knn_matches_brute_force(
        points in dataset_strategy(),
        query in point_strategy(3),
        k in 0usize..15,
        order in 2usize..5,
        seed in 0u64..4,
    ) {
        let oracle = LinearScan::new(points.clone(), Euclidean);
        let tree = VpTree::build(
            points,
            Euclidean,
            VpTreeParams::with_order(order).seed(seed),
        )
        .unwrap();
        let got = tree.knn(&query, k);
        let want = oracle.knn(&query, k);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            // Ties may resolve to different ids; distances must agree.
            prop_assert!((g.distance - w.distance).abs() < 1e-12);
        }
    }

    #[test]
    fn invariants_hold_for_random_datasets(
        points in dataset_strategy(),
        order in 2usize..5,
        leaf in 1usize..8,
        seed in 0u64..4,
    ) {
        let tree = VpTree::build(
            points,
            Euclidean,
            VpTreeParams::with_order(order)
                .leaf_capacity(leaf)
                .selector(VantageSelector::SampledSpread { candidates: 3, sample: 4 })
                .seed(seed),
        )
        .unwrap();
        tree.check_invariants().unwrap();
    }

    #[test]
    fn string_metric_range_matches_oracle(
        words in proptest::collection::vec("[a-c]{0,8}".prop_map(String::from), 0..60),
        query in "[a-c]{0,8}".prop_map(String::from),
        radius in 0u32..6,
    ) {
        let oracle = LinearScan::new(words.clone(), Levenshtein);
        let tree =
            VpTree::build(words, Levenshtein, VpTreeParams::binary().seed(1)).unwrap();
        prop_assert_eq!(
            sorted_ids(tree.range(&query, f64::from(radius))),
            sorted_ids(oracle.range(&query, f64::from(radius)))
        );
    }

    /// Far-neighbor queries (paper §2's variations) also match the
    /// oracle exactly.
    #[test]
    fn farthest_queries_match_oracle(
        points in dataset_strategy(),
        query in point_strategy(3),
        radius in 0.0f64..25.0,
        k in 0usize..12,
        order in 2usize..4,
        seed in 0u64..3,
    ) {
        use vantage_core::farthest::FarthestIndex;
        let oracle = LinearScan::new(points.clone(), Euclidean);
        let tree = VpTree::build(
            points,
            Euclidean,
            VpTreeParams::with_order(order).seed(seed),
        )
        .unwrap();
        prop_assert_eq!(
            sorted_ids(tree.range_beyond(&query, radius)),
            sorted_ids(oracle.range_beyond(&query, radius))
        );
        let got = tree.k_farthest(&query, k);
        let want = oracle.k_farthest(&query, k);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g.distance - w.distance).abs() < 1e-12);
        }
    }

    /// Search never computes more distances than a linear scan would
    /// (paper §4.3's worst-case claim holds for vp-trees because every
    /// data point is evaluated at most once per query).
    #[test]
    fn never_worse_than_linear_scan(
        points in proptest::collection::vec(point_strategy(2), 1..80),
        query in point_strategy(2),
        radius in 0.0f64..10.0,
    ) {
        let n = points.len() as u64;
        let metric = Counted::new(Euclidean);
        let probe = metric.clone();
        let tree =
            VpTree::build(points, metric, VpTreeParams::binary().seed(2)).unwrap();
        probe.reset();
        tree.range(&query, radius);
        prop_assert!(probe.count() <= n);
    }
}
