//! Dynamic updates — the paper's §6 future work, closed by
//! [`DynamicMvpTree`]'s amortized-rebuilding wrapper.
//!
//! Simulates a live feature store: vectors stream in, stale ones are
//! evicted, and similarity queries keep returning exactly the live set
//! throughout (verified against a brute-force shadow copy).
//!
//! Run with: `cargo run --release --example dynamic_updates`

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use vantage::prelude::*;

fn random_point(rng: &mut StdRng) -> Vec<f64> {
    (0..16).map(|_| rng.random_range(0.0..1.0)).collect()
}

fn main() -> vantage::Result<()> {
    let mut rng = StdRng::seed_from_u64(99);
    let metric = Counted::new(Euclidean);
    let probe = metric.clone();
    let mut index = DynamicMvpTree::new(metric, MvpParams::paper(3, 40, 5))?;

    // Shadow copy for verification.
    let mut live: Vec<(usize, Vec<f64>)> = Vec::new();

    println!("streaming 5 000 inserts with eviction of the oldest 40%...");
    for step in 0..5000 {
        let point = random_point(&mut rng);
        let id = index.insert(point.clone());
        live.push((id, point));
        // Evict an old entry 40% of the time once warm.
        if step > 100 && rng.random_range(0..10) < 4 {
            let victim = live.remove(rng.random_range(0..live.len() / 2));
            assert!(index.remove(victim.0));
        }
    }
    println!(
        "done: {} live items, {} in overflow buffer, {} total distance computations",
        index.len(),
        index.overflow_len(),
        probe.count()
    );
    assert_eq!(index.len(), live.len());

    // Queries stay exact through all the churn.
    let query = vec![0.5; 16];
    let radius = 0.8;
    probe.reset();
    let mut got: Vec<usize> = index
        .range(&query, radius)
        .into_iter()
        .map(|n| n.id)
        .collect();
    let query_cost = probe.take();
    got.sort_unstable();
    let mut want: Vec<usize> = live
        .iter()
        .filter(|(_, v)| Euclidean.distance(&query, v) <= radius)
        .map(|(id, _)| *id)
        .collect();
    want.sort_unstable();
    assert_eq!(got, want, "index must match brute force exactly");
    println!(
        "\nrange query: {} matches, {query_cost} distance computations \
         ({:.1}% of scanning all {} live items) — exact vs brute force",
        got.len(),
        100.0 * query_cost as f64 / live.len() as f64,
        live.len()
    );

    // Nearest neighbors keep working too.
    let nn = index.knn(&query, 3);
    println!(
        "3 nearest live items: {:?}",
        nn.iter().map(|n| n.id).collect::<Vec<_>>()
    );
    Ok(())
}
