//! Two-stage filter-and-refine image retrieval — the QBIC architecture
//! the paper reviews in §3.1: index a cheap *distance-preserving
//! projection* (QBIC: average color; here: total intensity) and refine
//! survivors with the expensive full-image metric.
//!
//! Compares three ways to answer the same image range query:
//!   1. linear scan (every comparison is a full-image L1),
//!   2. mvp-tree directly on images,
//!   3. TwoStage: mvp-tree on 1-d intensity projections + refinement.
//!
//! Run with: `cargo run --release --example filter_refine`

use vantage::baselines::twostage::projections::image_l1_intensity;
use vantage::prelude::*;
use vantage_datasets::{synthetic_mri_images, MriConfig};

fn main() -> vantage::Result<()> {
    let images = synthetic_mri_images(&MriConfig {
        subjects: 10,
        images_per_subject: 40,
        total: None,
        width: 64,
        height: 64,
        noise: 10,
        seed: 5,
    })?;
    println!(
        "{} images of 64x64 (4096-dimensional comparisons)\n",
        images.len()
    );
    let query = images[175].clone();
    let radius = 2.5;

    // 1. Linear scan.
    let metric = Counted::new(ImageL1::paper());
    let probe = metric.clone();
    let scan = LinearScan::new(images.clone(), metric.clone());
    let baseline = scan.range(&query, radius);
    let scan_cost = probe.take();

    // 2. mvp-tree on the images themselves.
    let tree = MvpTree::build(images.clone(), metric.clone(), MvpParams::paper(3, 13, 4))?;
    probe.reset();
    let via_tree = tree.range(&query, radius);
    let tree_cost = probe.take();

    // 3. Two-stage: 1-d intensity projection (provably lower-bounds L1)
    //    indexed by an mvp-tree; full-image L1 only for survivors.
    let project = image_l1_intensity(ImageL1::PAPER_NORM)?;
    let two_stage = TwoStage::build(
        images,
        metric,
        &project,
        Manhattan,
        MvpParams::paper(2, 10, 3),
    )?;
    two_stage
        .spot_check(&project, 25)
        .expect("projection must be distance-preserving");
    probe.reset();
    let via_two_stage = two_stage.range(&query, &project(&query), radius);
    let expensive_cost = probe.take();

    assert_eq!(baseline.len(), via_tree.len());
    assert_eq!(baseline.len(), via_two_stage.len());
    println!(
        "range query (L1/10000 <= {radius}): {} matches, three ways:\n",
        baseline.len()
    );
    println!(
        "  {:<28} {:>8} full-image comparisons",
        "linear scan", scan_cost
    );
    println!(
        "  {:<28} {:>8} full-image comparisons",
        "mvp-tree on images", tree_cost
    );
    println!(
        "  {:<28} {:>8} full-image comparisons (plus cheap 1-d filtering)",
        "two-stage filter+refine", expensive_cost
    );
    println!(
        "\nthe projection collapses 4096 dimensions to 1, so its index\n\
         does almost-free filtering; only {expensive_cost} candidates survive to pay\n\
         the full-image price — exactly the QBIC trade the paper describes.\n\
         Caveat: a 1-d shadow can't separate everything; the direct\n\
         mvp-tree wins when the expensive metric itself is indexable."
    );
    Ok(())
}
