//! Content-based image retrieval — the paper's motivating application
//! (§1: *"given an image database, one may want to retrieve all images
//! that are similar to a given query image"*).
//!
//! Builds an mvp-tree over a synthetic gray-level head-scan collection
//! (the §5.1-B substitute) under the pixel-wise L1 metric with the
//! paper's /10 000 normalization, then answers similarity queries while
//! counting how many full 4 096-dimensional image comparisons each query
//! needs — versus the linear-scan baseline that compares against every
//! image.
//!
//! Run with: `cargo run --release --example image_search`

use vantage::prelude::*;
use vantage_datasets::{synthetic_mri_images, MriConfig};

fn main() -> vantage::Result<()> {
    // A small in-memory "hospital archive": 10 subjects × 24 slices.
    let config = MriConfig {
        subjects: 10,
        images_per_subject: 24,
        total: None,
        width: 64,
        height: 64,
        noise: 10,
        seed: 7,
    };
    let images = synthetic_mri_images(&config)?;
    println!(
        "archive: {} gray-level images of {}x{} ({} subjects)",
        images.len(),
        config.width,
        config.height,
        config.subjects
    );

    let metric = Counted::new(ImageL1::paper());
    let probe = metric.clone();
    let tree = MvpTree::build(images.clone(), metric, MvpParams::paper(3, 13, 4))?;
    println!(
        "built mvpt(3, 13, p=4) using {} image comparisons",
        probe.take()
    );

    // Query: a scan of subject 3 (image 3*24+12). A radiologist wants
    // every archived slice that looks like it.
    let query_id = 3 * 24 + 12;
    let query = images[query_id].clone();

    // Pick a radius from the data: slightly above the typical
    // within-subject distance (see the Figure 6 reproduction).
    let radius = 2.0;
    let hits = tree.range(&query, radius);
    let cost = probe.take();
    println!(
        "\nrange query (L1/10000 <= {radius}): {} similar images found",
        hits.len()
    );
    println!(
        "cost: {cost} image comparisons vs {} for a linear scan ({:.0}% saved)",
        images.len(),
        100.0 * (1.0 - cost as f64 / images.len() as f64)
    );

    // All hits should come from the same subject — the bimodal distance
    // distribution (paper Figures 6-7) separates subjects cleanly.
    let same_subject = hits.iter().filter(|n| n.id / 24 == query_id / 24).count();
    println!(
        "{same_subject}/{} hits are slices of the query's subject",
        hits.len()
    );

    // "Show me the 5 most similar scans" — the browsing UI the paper
    // describes (users refine results visually).
    let nn = tree.knn(&query, 5);
    let knn_cost = probe.take();
    println!("\n5 nearest scans (cost {knn_cost} comparisons):");
    for n in &nn {
        println!(
            "  image #{:3} (subject {:2}, slice {:2})  L1/10000 = {:.3}",
            n.id,
            n.id / 24,
            n.id % 24,
            n.distance
        );
    }
    Ok(())
}
