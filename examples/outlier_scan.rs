//! Outlier triage with far-neighbor queries — the inverse similarity
//! queries of paper §2 (*"objects that are farther than a given range …
//! as well as the farthest, or the k farthest objects"*).
//!
//! A sensor fleet emits 12-dimensional health fingerprints. Most units
//! cluster around the healthy profile; a few drift. `k_farthest` surfaces
//! the most anomalous units, and `range_beyond` lists everything outside
//! the acceptance ball — without scanning the whole fleet.
//!
//! Run with: `cargo run --release --example outlier_scan`

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use vantage::core::FarthestIndex;
use vantage::prelude::*;

fn main() -> vantage::Result<()> {
    let mut rng = StdRng::seed_from_u64(17);
    // 4 000 healthy units near the nominal profile (0.5, …, 0.5)…
    let mut fleet: Vec<Vec<f64>> = (0..4000)
        .map(|_| {
            (0..12)
                .map(|_| 0.5 + rng.random_range(-0.08..0.08))
                .collect()
        })
        .collect();
    // …and 12 drifting units injected at known ids.
    let mut drifted: Vec<usize> = Vec::new();
    for i in 0..12 {
        let id = i * 317; // scattered through the fleet
        let magnitude = 0.5 + 0.1 * i as f64;
        fleet[id] = (0..12)
            .map(|_| 0.5 + rng.random_range(-0.08..0.08) + magnitude / 3.46)
            .collect();
        drifted.push(id);
    }

    let metric = Counted::new(Euclidean);
    let probe = metric.clone();
    let tree = MvpTree::build(fleet, metric, MvpParams::paper(3, 40, 5))?;
    probe.reset();

    let nominal = vec![0.5; 12];

    // The 12 most anomalous units.
    let worst = tree.k_farthest(&nominal, 12);
    let kfn_cost = probe.take();
    println!("12 farthest units from nominal ({kfn_cost} distance computations):");
    let mut found = 0;
    for n in &worst {
        let injected = drifted.contains(&n.id);
        found += usize::from(injected);
        println!(
            "  unit {:>4}  deviation {:.3}  {}",
            n.id,
            n.distance,
            if injected { "(injected drift)" } else { "" }
        );
    }
    println!("recovered {found}/12 injected drifters\n");

    // Everything outside the acceptance ball.
    let threshold = 0.45;
    let outliers = tree.range_beyond(&nominal, threshold);
    let beyond_cost = probe.take();
    println!(
        "{} units beyond deviation {threshold} ({beyond_cost} distance computations, \
         {:.1}% of a full scan)",
        outliers.len(),
        100.0 * beyond_cost as f64 / tree.len() as f64
    );
    assert!(
        outliers.iter().all(|n| drifted.contains(&n.id)),
        "only injected drifters should exceed the threshold"
    );
    Ok(())
}
