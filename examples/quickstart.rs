//! Quickstart: index a high-dimensional vector dataset with an mvp-tree,
//! run range and k-nearest-neighbor queries, and see the paper's cost
//! model (distance computations) in action.
//!
//! Run with: `cargo run --release --example quickstart`

use vantage::prelude::*;
use vantage_datasets::uniform_vectors;

fn main() -> vantage::Result<()> {
    // 10 000 random 20-dimensional points — the paper's "highly
    // synthetic" hard case where everything is nearly equidistant.
    let points = uniform_vectors(10_000, 20, 42);
    let query = vec![0.5; 20];

    // Wrap the metric in a counter so we can watch the cost model.
    let metric = Counted::new(Euclidean);
    let probe = metric.clone();

    // The paper's best configuration: m = 3 partitions per vantage point
    // (fanout 9), leaf capacity k = 80, p = 5 path distances per leaf
    // point.
    let tree = MvpTree::build(points, metric, MvpParams::paper(3, 80, 5))?;
    let build_cost = probe.take();
    println!(
        "built mvpt(3, 80, p=5) over {} points using {build_cost} distance computations",
        tree.len()
    );
    let stats = tree.stats();
    println!(
        "tree shape: height {}, {} internal nodes, {} leaves, {:.1}% of points in leaves",
        stats.height,
        stats.internal_nodes,
        stats.leaf_nodes,
        100.0 * stats.leaf_fraction()
    );

    // Range query: everything within distance 0.85 of the center. (In
    // 20-d uniform data almost all pairs sit near distance 1.75 — the
    // paper's hard case — so useful query radii are small.)
    let near = tree.range(&query, 0.85);
    let range_cost = probe.take();
    println!(
        "\nrange(center, r=0.85): {} results using {range_cost} distance computations \
         ({:.1}% of a linear scan)",
        near.len(),
        100.0 * range_cost as f64 / tree.len() as f64
    );

    // kNN query: the 10 nearest neighbors.
    let nn = tree.knn(&query, 10);
    let knn_cost = probe.take();
    println!(
        "knn(center, 10): nearest at {:.4}, 10th at {:.4}, using {knn_cost} distance \
         computations",
        nn[0].distance, nn[9].distance
    );

    // Every answer can be joined back to the original dataset by id.
    let best = &nn[0];
    let item = tree.get(best.id).expect("result ids are valid");
    println!(
        "nearest neighbor is item #{} (first coords: {:.3}, {:.3}, ...)",
        best.id, item[0], item[1]
    );
    Ok(())
}
