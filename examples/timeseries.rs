//! Time-series pattern matching — another of the paper's motivating
//! domains (§1: *"In time-series analysis, we would like to find similar
//! patterns among a given collection of sequences"*).
//!
//! Generates a collection of daily load curves (a few recurring regimes
//! plus noise), indexes the *whole curves* as 48-dimensional vectors
//! under Euclidean distance, and answers "which historical days looked
//! like today?" — the building block of similarity-based forecasting.
//!
//! Run with: `cargo run --release --example timeseries`

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use vantage::prelude::*;

/// One synthetic "day": 48 half-hourly samples from one of three regimes
/// (weekday double peak, weekend flat, holiday low) plus noise.
fn make_day(regime: usize, rng: &mut StdRng) -> Vec<f64> {
    (0..48)
        .map(|i| {
            let t = i as f64 / 48.0;
            let base = match regime {
                0 => {
                    // weekday: morning + evening peaks
                    1.0 + 0.8 * (-((t - 0.35) * 12.0).powi(2)).exp()
                        + 1.0 * (-((t - 0.8) * 10.0).powi(2)).exp()
                }
                1 => 0.9 + 0.4 * (std::f64::consts::TAU * t).sin().max(0.0), // weekend
                _ => 0.5 + 0.1 * t,                                          // holiday
            };
            base + rng.random_range(-0.05..0.05)
        })
        .collect()
}

fn main() -> vantage::Result<()> {
    let mut rng = StdRng::seed_from_u64(3);
    // Three years of days with a weekly regime structure.
    let days: Vec<Vec<f64>> = (0..1095)
        .map(|d| {
            let regime = match d % 7 {
                5 | 6 => 1,
                _ if d % 97 == 0 => 2, // occasional holidays
                _ => 0,
            };
            make_day(regime, &mut rng)
        })
        .collect();
    println!("history: {} days x 48 samples", days.len());

    let metric = Counted::new(Euclidean);
    let probe = metric.clone();
    let tree = MvpTree::build(days.clone(), metric, MvpParams::paper(3, 40, 5))?;
    println!("indexed with {} distance computations", probe.take());

    // "Today" is a fresh weekday.
    let today = make_day(0, &mut rng);

    // Find all historical days within distance 0.5 of today's curve.
    let similar = tree.range(&today, 0.5);
    let cost = probe.take();
    println!(
        "\n{} similar days found with {cost} distance computations \
         ({:.1}% of linear scan)",
        similar.len(),
        100.0 * cost as f64 / days.len() as f64
    );

    // The analog method: forecast from the 5 closest historical days.
    let analogs = tree.knn(&today, 5);
    println!("\n5 closest analog days:");
    for n in &analogs {
        let weekday = matches!(n.id % 7, 0..=4);
        println!(
            "  day {:4} ({}) at distance {:.3}",
            n.id,
            if weekday { "weekday" } else { "weekend" },
            n.distance
        );
    }
    // Regime separation: every analog of a weekday curve is a weekday.
    assert!(
        analogs.iter().all(|n| matches!(n.id % 7, 0..=4)),
        "weekday analogs should be weekdays"
    );
    println!("\nall analogs are weekdays — regimes separate cleanly in metric space");
    Ok(())
}
