//! Approximate string matching — the non-spatial domain the paper calls
//! out (§3.1: *"text databases which generally use the edit distance
//! (which is metric)"*), and the original application of Burkhard &
//! Keller's 1973 structure.
//!
//! Indexes a dictionary under Levenshtein edit distance three ways —
//! BK-tree (the classic for discrete metrics), mvp-tree (the paper's
//! contribution), and linear scan (the baseline) — and compares how many
//! edit-distance computations a spell-correction query needs in each.
//!
//! Run with: `cargo run --release --example word_lookup`

use vantage::prelude::*;
use vantage_datasets::perturbed_words;

fn lookup<I: MetricIndex<String>>(
    index: &I,
    probe: &Counted<Levenshtein>,
    query: &str,
    r: f64,
) -> (usize, u64) {
    probe.reset();
    let hits = index.range(&query.to_string(), r);
    (hits.len(), probe.take())
}

fn main() -> vantage::Result<()> {
    // A 5 500-word dictionary: 500 base words, each with 10 variants one
    // edit apart (misspellings, inflections).
    let mut words = perturbed_words(500, 10, 1, 11);
    words.push("vantage".to_string()); // make sure our demo word exists
    println!("dictionary: {} words", words.len());

    let metric = Counted::new(Levenshtein);
    let probe = metric.clone();

    let bk = BkTree::build(words.clone(), metric.clone());
    let mvp = MvpTree::build(words.clone(), metric.clone(), MvpParams::paper(2, 40, 4))?;
    let linear = LinearScan::new(words.clone(), metric);

    // Spell-correction queries: find every word within 2 edits.
    let queries = ["vantoge", "xqzzjw", &words[42].clone(), "aaaaaaaaaa"];
    println!(
        "\n{:<14} {:>8} {:>10} {:>10} {:>10}",
        "query", "matches", "linear", "bk-tree", "mvp-tree"
    );
    for q in queries {
        let (n_lin, c_lin) = lookup(&linear, &probe, q, 2.0);
        let (n_bk, c_bk) = lookup(&bk, &probe, q, 2.0);
        let (n_mvp, c_mvp) = lookup(&mvp, &probe, q, 2.0);
        assert_eq!(n_lin, n_bk, "indexes must agree");
        assert_eq!(n_lin, n_mvp, "indexes must agree");
        println!("{q:<14} {n_lin:>8} {c_lin:>10} {c_bk:>10} {c_mvp:>10}");
    }

    // Nearest-word suggestion ("did you mean ...?").
    probe.reset();
    let suggestion = bk.knn(&"vantoge".to_string(), 3);
    println!("\ndid you mean (BK-tree, {} computations):", probe.take());
    for n in &suggestion {
        println!(
            "  {:?} at edit distance {}",
            bk.get(n.id).expect("valid id"),
            n.distance
        );
    }
    Ok(())
}
