//! # vantage
//!
//! Distance-based indexing for high-dimensional metric spaces — a
//! production-quality Rust reproduction of Bozkaya & Özsoyoğlu,
//! *"Distance-Based Indexing for High-Dimensional Metric Spaces"*,
//! SIGMOD 1997 (the **mvp-tree** paper).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — the [`Metric`] trait, a metric library
//!   (Lp, edit, Hamming, image, histogram), distance counting, linear
//!   scan, pairwise statistics;
//! * [`mvptree`] — the paper's contribution: the
//!   [`MvpTree`] with `(m, k, p)` parameters, plus a dynamic wrapper;
//! * [`vptree`] — the [`VpTree`] baseline;
//! * [`baselines`] — BK-tree, GH-tree, GNAT,
//!   AESA/LAESA;
//! * [`datasets`] — seeded workload generators
//!   reproducing the paper's datasets;
//! * [`telemetry`] — always-on serving telemetry: the
//!   [`Instrumented`] index wrapper, a lock-free
//!   [`MetricsRegistry`] of latency/distance histograms, and JSON +
//!   Prometheus exporters (see DESIGN.md §Telemetry);
//! * [`persist`] — versioned, checksummed on-disk
//!   snapshots of built indexes: save with `vantage build --save`, reload
//!   with `--index` for bit-identical query behavior without paying the
//!   construction cost again (see DESIGN.md §Persistence).
//!
//! ## Quick start
//!
//! ```
//! use vantage::prelude::*;
//!
//! // Index 1 000 points from a metric space (here: 8-d Euclidean).
//! let points: Vec<Vec<f64>> = (0..1000)
//!     .map(|i| (0..8).map(|d| ((i * (d + 3)) % 97) as f64 / 97.0).collect())
//!     .collect();
//! let tree = MvpTree::build(points, Euclidean, MvpParams::default()).unwrap();
//!
//! // All points within distance 0.25 of a query object:
//! let near = tree.range(&vec![0.5; 8], 0.25);
//!
//! // The 5 nearest neighbors:
//! let nn = tree.knn(&vec![0.5; 8], 5);
//! assert_eq!(nn.len(), 5);
//! assert!(nn[0].distance <= nn[4].distance);
//! # let _ = near;
//! ```
//!
//! ## Choosing parameters
//!
//! The paper's guidance, confirmed by the reproduced experiments
//! (EXPERIMENTS.md):
//!
//! * **`m` (partition order)**: 3 is the sweet spot for the evaluated
//!   workloads; each node uses two vantage points and has fanout `m²`.
//! * **`k` (leaf capacity)**: large — most points should live in leaves
//!   where the pre-computed-distance filters apply. `mvpt(3, 80)` beat
//!   `mvpt(3, 9)` everywhere in the paper.
//! * **`p` (path distances)**: 5 for the vector workloads, 4 for images;
//!   more is better until the filters stop discriminating.
//!
//! ## Cost model
//!
//! Everything here is designed around the paper's assumption that the
//! metric dominates all other costs (a 65 536-dimensional image L2 is
//! *much* slower than tree bookkeeping). Wrap any metric in
//! [`Counted`] to measure exactly how many evaluations construction and
//! queries perform.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use vantage_baselines as baselines;
pub use vantage_core as core;
pub use vantage_datasets as datasets;
pub use vantage_mvptree as mvptree;
pub use vantage_persist as persist;
pub use vantage_telemetry as telemetry;
pub use vantage_vptree as vptree;

pub use vantage_baselines::{
    Aesa, BkTree, FqTree, FqTreeParams, GhTree, GhTreeParams, Gnat, GnatParams, Laesa, TwoStage,
};
pub use vantage_core::{
    BatchIndex, BoundStats, Counted, DiscreteMetric, DistanceHistogram, DistanceRole, KnnCollector,
    LevelStats, LinearScan, Metric, MetricIndex, Neighbor, NoTrace, PruneReason, QueryProfile,
    Result, SearchProfiler, Threads, TraceSink, VantageError, VantageSelector,
};
pub use vantage_mvptree::{DynamicMvpTree, MvpParams, MvpTree, MvpTreeStats, SecondVantage};
pub use vantage_telemetry::{Instrumented, MetricsRegistry, OpKind, RegistrySnapshot};
pub use vantage_vptree::{VpTree, VpTreeParams, VpTreeStats};

/// One-stop imports for applications.
pub mod prelude {
    pub use vantage_baselines::{
        Aesa, BkTree, FqTree, FqTreeParams, GhTree, GhTreeParams, Gnat, GnatParams, Laesa, TwoStage,
    };
    pub use vantage_core::prelude::*;
    pub use vantage_mvptree::{DynamicMvpTree, MvpParams, MvpTree, MvpTreeStats, SecondVantage};
    pub use vantage_telemetry::{Instrumented, MetricsRegistry, OpKind, RegistrySnapshot};
    pub use vantage_vptree::{VpTree, VpTreeParams, VpTreeStats};
}
