//! Adversarial differential sweep: every index structure × degenerate
//! datasets (duplicates, all-identical points, a single point, an empty
//! index) × degenerate queries (zero radius, radius past the dataset
//! diameter), all checked against the [`LinearScan`] oracle.

use vantage::prelude::*;

fn sorted_ids(mut v: Vec<Neighbor>) -> Vec<usize> {
    v.sort_unstable_by_key(|n| n.id);
    v.into_iter().map(|n| n.id).collect()
}

fn sorted_distances(v: &[Neighbor]) -> Vec<f64> {
    let mut d: Vec<f64> = v.iter().map(|n| n.distance).collect();
    d.sort_unstable_by(f64::total_cmp);
    d
}

type NamedIndexes = Vec<(&'static str, Box<dyn MetricIndex<Vec<f64>>>)>;

/// Every vector-capable structure over the same dataset.
fn vector_indexes(points: &[Vec<f64>]) -> NamedIndexes {
    vec![
        (
            "linear",
            Box::new(LinearScan::new(points.to_vec(), Euclidean)),
        ),
        (
            "vpt(2)",
            Box::new(
                VpTree::build(points.to_vec(), Euclidean, VpTreeParams::binary().seed(3)).unwrap(),
            ),
        ),
        (
            "vpt(3) bucketed",
            Box::new(
                VpTree::build(
                    points.to_vec(),
                    Euclidean,
                    VpTreeParams::with_order(3).leaf_capacity(4).seed(4),
                )
                .unwrap(),
            ),
        ),
        (
            "mvpt(3,8,5)",
            Box::new(
                MvpTree::build(
                    points.to_vec(),
                    Euclidean,
                    MvpParams::paper(3, 8, 5).seed(5),
                )
                .unwrap(),
            ),
        ),
        (
            "mvpt(2,5,2)",
            Box::new(
                MvpTree::build(
                    points.to_vec(),
                    Euclidean,
                    MvpParams::paper(2, 5, 2).seed(6),
                )
                .unwrap(),
            ),
        ),
        (
            "gh-tree",
            Box::new(GhTree::build(points.to_vec(), Euclidean, GhTreeParams::default()).unwrap()),
        ),
        (
            "gnat",
            Box::new(Gnat::build(points.to_vec(), Euclidean, GnatParams::default()).unwrap()),
        ),
        (
            "fq-tree",
            Box::new(FqTree::build(points.to_vec(), Euclidean, FqTreeParams::default()).unwrap()),
        ),
        (
            "laesa(4)",
            Box::new(Laesa::build(points.to_vec(), Euclidean, 4).unwrap()),
        ),
        ("aesa", Box::new(Aesa::build(points.to_vec(), Euclidean))),
    ]
}

/// The adversarial dataset zoo. Each dataset pairs with queries probing
/// its pathologies: members (so duplicates tie), near-misses, and points
/// far outside the populated region.
fn datasets() -> Vec<(&'static str, Vec<Vec<f64>>)> {
    // Ten distinct points, each duplicated five times, deterministically
    // interleaved.
    let mut duplicates = Vec::new();
    for _rep in 0..5 {
        for i in 0..10 {
            let x = f64::from(i) * 0.7;
            let y = f64::from((i * 3) % 7);
            duplicates.push(vec![x, y]);
        }
    }
    vec![
        ("empty", Vec::new()),
        ("single point", vec![vec![0.3, 0.7]]),
        ("all identical", vec![vec![0.5, 0.5]; 37]),
        ("duplicates", duplicates),
    ]
}

fn queries() -> Vec<Vec<f64>> {
    vec![
        vec![0.5, 0.5],  // exact member of several datasets
        vec![0.3, 0.7],  // the single point
        vec![0.51, 0.5], // near miss
        vec![1e6, -1e6], // far outside every dataset
        vec![0.0, 0.0],
    ]
}

/// Radii per dataset: zero, and one safely past the dataset diameter.
fn radii(points: &[Vec<f64>]) -> Vec<f64> {
    let mut diameter = 0.0f64;
    for a in points {
        for b in points {
            let d: f64 = a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt();
            diameter = diameter.max(d);
        }
    }
    vec![0.0, diameter * 2.0 + 10.0]
}

#[test]
fn every_index_matches_linear_scan_on_degenerate_range_queries() {
    for (dataset_name, points) in datasets() {
        let indexes = vector_indexes(&points);
        let oracle = &indexes[0].1;
        for q in &queries() {
            // Far-away queries at huge radius still need to see everything:
            // include a radius that swallows the query-to-dataset distance.
            let mut rs = radii(&points);
            rs.push(1e7);
            for r in rs {
                let want = sorted_ids(oracle.range(q, r));
                for (name, index) in &indexes[1..] {
                    assert_eq!(
                        sorted_ids(index.range(q, r)),
                        want,
                        "{name} disagrees with linear scan on '{dataset_name}' q={q:?} r={r}"
                    );
                }
            }
        }
    }
}

#[test]
fn every_index_matches_linear_scan_on_degenerate_knn() {
    for (dataset_name, points) in datasets() {
        let n = points.len();
        let indexes = vector_indexes(&points);
        let oracle = &indexes[0].1;
        for q in &queries() {
            for k in [0, 1, n.saturating_sub(1), n, n + 5] {
                let want = oracle.knn(q, k);
                for (name, index) in &indexes[1..] {
                    let got = index.knn(q, k);
                    assert_eq!(
                        got.len(),
                        want.len(),
                        "{name} wrong answer count on '{dataset_name}' q={q:?} k={k}"
                    );
                    assert_eq!(
                        sorted_distances(&got),
                        sorted_distances(&want),
                        "{name} wrong distance multiset on '{dataset_name}' q={q:?} k={k}"
                    );
                }
            }
        }
    }
}

#[test]
fn string_indexes_match_linear_scan_on_degenerate_inputs() {
    let datasets: Vec<(&str, Vec<String>)> = vec![
        ("empty", Vec::new()),
        ("single word", vec!["word".to_string()]),
        ("all identical", vec!["same".to_string(); 23]),
        (
            "duplicates",
            ["abc", "abd", "xyz", "abc", "xyz", "abc", "", "a", "abc"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        ),
    ];
    for (dataset_name, words) in datasets {
        let oracle = LinearScan::new(words.clone(), Levenshtein);
        let bk = BkTree::build(words.clone(), Levenshtein);
        let vp = VpTree::build(words.clone(), Levenshtein, VpTreeParams::binary().seed(1)).unwrap();
        let mvp = MvpTree::build(
            words.clone(),
            Levenshtein,
            MvpParams::paper(2, 4, 2).seed(2),
        )
        .unwrap();
        for q in ["abc", "same", "", "completely-unrelated"] {
            let q = q.to_string();
            // 0 = exact-match radius; 64 exceeds any edit distance here.
            for r in [0.0, 64.0] {
                let want = sorted_ids(oracle.range(&q, r));
                assert_eq!(
                    sorted_ids(bk.range(&q, r)),
                    want,
                    "bk disagrees on '{dataset_name}' q={q:?} r={r}"
                );
                assert_eq!(
                    sorted_ids(vp.range(&q, r)),
                    want,
                    "vp disagrees on '{dataset_name}' q={q:?} r={r}"
                );
                assert_eq!(
                    sorted_ids(mvp.range(&q, r)),
                    want,
                    "mvp disagrees on '{dataset_name}' q={q:?} r={r}"
                );
            }
        }
    }
}

#[test]
fn traced_searches_agree_on_degenerate_inputs_too() {
    // The trace layer must not disturb degenerate-input behavior either.
    for (dataset_name, points) in datasets() {
        let oracle = LinearScan::new(points.clone(), Euclidean);
        let vp = VpTree::build(points.clone(), Euclidean, VpTreeParams::binary().seed(3)).unwrap();
        let mvp =
            MvpTree::build(points.clone(), Euclidean, MvpParams::paper(2, 5, 2).seed(6)).unwrap();
        for q in &queries() {
            for r in radii(&points) {
                let want = sorted_ids(oracle.range(q, r));
                let mut p1 = QueryProfile::new();
                let mut p2 = QueryProfile::new();
                assert_eq!(
                    sorted_ids(vp.range_traced(q, r, &mut p1)),
                    want,
                    "traced vp disagrees on '{dataset_name}' q={q:?} r={r}"
                );
                assert_eq!(
                    sorted_ids(mvp.range_traced(q, r, &mut p2)),
                    want,
                    "traced mvp disagrees on '{dataset_name}' q={q:?} r={r}"
                );
            }
        }
    }
}
