//! Integration tests for the batch-query extension and the parallel
//! construction guarantee, exercised through the public facade: answers
//! from `batch_range`/`batch_knn` must equal the single-query answers,
//! and neither the batch worker count nor the construction worker count
//! may change any observable result.

use vantage::prelude::*;
use vantage_datasets::uniform_vectors;

fn workload() -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    (uniform_vectors(2000, 12, 21), uniform_vectors(40, 12, 22))
}

fn assert_batches_match_single<I: MetricIndex<Vec<f64>> + Sync>(index: &I, queries: &[Vec<f64>]) {
    for threads in [Threads::SEQUENTIAL, Threads::Fixed(4), Threads::Auto] {
        let ranges = index.batch_range(queries, 0.4, threads);
        let knns = index.batch_knn(queries, 7, threads);
        assert_eq!(ranges.len(), queries.len());
        assert_eq!(knns.len(), queries.len());
        for (i, q) in queries.iter().enumerate() {
            let mut batch_range = ranges[i].clone();
            let mut single_range = index.range(q, 0.4);
            batch_range.sort_unstable();
            single_range.sort_unstable();
            assert_eq!(batch_range, single_range, "query {i}, {threads:?}");
            assert_eq!(knns[i], index.knn(q, 7), "query {i}, {threads:?}");
        }
    }
}

#[test]
fn batch_queries_equal_single_queries_on_every_structure() {
    let (points, queries) = workload();
    let linear = LinearScan::new(points.clone(), Euclidean);
    let vp = VpTree::build(points.clone(), Euclidean, VpTreeParams::binary().seed(5)).unwrap();
    let mvp = MvpTree::build(points, Euclidean, MvpParams::paper(3, 20, 5).seed(5)).unwrap();
    assert_batches_match_single(&linear, &queries);
    assert_batches_match_single(&vp, &queries);
    assert_batches_match_single(&mvp, &queries);
}

#[test]
fn batch_answers_agree_with_the_linear_oracle() {
    let (points, queries) = workload();
    let oracle = LinearScan::new(points.clone(), Euclidean);
    let mvp = MvpTree::build(points, Euclidean, MvpParams::default().seed(3)).unwrap();
    let expected = oracle.batch_knn(&queries, 5, Threads::SEQUENTIAL);
    let got = mvp.batch_knn(&queries, 5, Threads::Auto);
    for (i, (e, g)) in expected.iter().zip(&got).enumerate() {
        let e_dists: Vec<f64> = e.iter().map(|n| n.distance).collect();
        let g_dists: Vec<f64> = g.iter().map(|n| n.distance).collect();
        assert_eq!(e_dists, g_dists, "query {i}: knn distances diverge");
    }
}

#[test]
fn batch_of_empty_queries_is_empty() {
    let (points, _) = workload();
    let vp = VpTree::build(points, Euclidean, VpTreeParams::binary()).unwrap();
    assert!(vp.batch_range(&[], 1.0, Threads::Auto).is_empty());
    assert!(vp.batch_knn(&[], 3, Threads::Fixed(8)).is_empty());
}

#[test]
fn construction_worker_count_is_observably_irrelevant() {
    // The in-crate unit tests pin node-for-node arena equality; this
    // pins the same guarantee end-to-end through the public API: every
    // query answer, and the distance-computation cost of answering it,
    // is identical whatever `threads` built the index.
    let (points, queries) = workload();
    for workers in [1usize, 2, 8] {
        let threads = Threads::Fixed(workers);
        let metric = Counted::new(Euclidean);
        let probe = metric.clone();
        let mvp = MvpTree::build(
            points.clone(),
            metric,
            MvpParams::paper(2, 10, 4).seed(11).threads(threads),
        )
        .unwrap();
        probe.reset();
        let answers = mvp.batch_knn(&queries, 5, Threads::SEQUENTIAL);
        let cost = probe.take();

        let base_metric = Counted::new(Euclidean);
        let base_probe = base_metric.clone();
        let base = MvpTree::build(
            points.clone(),
            base_metric,
            MvpParams::paper(2, 10, 4)
                .seed(11)
                .threads(Threads::SEQUENTIAL),
        )
        .unwrap();
        base_probe.reset();
        let base_answers = base.batch_knn(&queries, 5, Threads::SEQUENTIAL);
        let base_cost = base_probe.take();

        assert_eq!(answers, base_answers, "{workers} workers changed answers");
        assert_eq!(cost, base_cost, "{workers} workers changed search cost");
    }
}
