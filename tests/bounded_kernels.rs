//! The bounded-kernel contract, swept across every shipped metric:
//!
//! 1. **exactness** — whenever `distance(a, b) ≤ bound`, the bounded
//!    kernel must run to completion and return exactly `Some(distance)`
//!    (bit-identical, not merely close: search paths substitute it for
//!    the plain kernel);
//! 2. **soundness** — `None` may only be returned when
//!    `distance(a, b) > bound` (abandoning is allowed solely past the
//!    bound);
//! 3. **work fraction** — `distance_within_frac` reports a fraction in
//!    `[0, 1]`, `1.0` exactly when the evaluation completed.
//!
//! Bounds are driven through the interesting band around the true
//! distance (0, ¼d, ½d, d − ε, d, d + ε, 2d, ∞) plus negative and NaN
//! edge cases where meaningful.

use vantage::prelude::*;
use vantage_core::metrics::angular::Angular;
use vantage_core::metrics::histogram::{gray_histogram, GrayHistogram, ImageHistogramL1};
use vantage_core::metrics::jaccard::{sorted_set, Jaccard};
use vantage_datasets::{synthetic_mri_images, uniform_vectors, MriConfig};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The probe bounds for a pair at true distance `d`.
fn bounds_for(d: f64) -> Vec<f64> {
    let mut b = vec![0.0, d * 0.25, d * 0.5, d, d * 2.0, f64::INFINITY];
    if d > 0.0 {
        // Nudge by one representable step where possible.
        b.push(d - d * 1e-9);
        b.push(d + d * 1e-9);
    }
    b.push(-1.0);
    b
}

/// Checks the three contract clauses for one metric over one pair.
fn check_pair<T: ?Sized, M: BoundedMetric<T>>(metric: &M, a: &T, b: &T, label: &str) {
    let d = metric.distance(a, b);
    for bound in bounds_for(d) {
        let (via, frac) = metric.distance_within_frac(a, b, bound);
        assert!(
            (0.0..=1.0).contains(&frac),
            "{label}: work fraction {frac} outside [0, 1] at bound {bound}"
        );
        if d <= bound {
            assert_eq!(
                via,
                Some(d),
                "{label}: bounded kernel not exact at bound {bound} (d = {d})"
            );
            assert_eq!(
                frac, 1.0,
                "{label}: completed evaluation must report full work"
            );
        } else if via.is_none() {
            // Sound: abandoned only past the bound — already implied by
            // the branch condition, but keep the polarity explicit.
            assert!(d > bound, "{label}: abandoned inside the bound {bound}");
        } else {
            // Completing without abandoning is always allowed; the value
            // must still be exact.
            assert_eq!(via, Some(d), "{label}: inexact completion at {bound}");
        }
        // The plain trait method must agree with the frac-reporting one.
        assert_eq!(
            metric.distance_within(a, b, bound),
            via,
            "{label}: distance_within disagrees with distance_within_frac"
        );
    }
}

fn vector_pairs(dim: usize, n: usize, seed: u64) -> Vec<(Vec<f64>, Vec<f64>)> {
    let v = uniform_vectors(2 * n, dim, seed);
    v.chunks_exact(2)
        .map(|c| (c[0].clone(), c[1].clone()))
        .collect()
}

#[test]
fn vector_metrics_honor_the_contract() {
    // Odd dims exercise the chunked kernels' remainder handling.
    for dim in [1, 7, 8, 9, 64, 100, 1023] {
        for (i, (a, b)) in vector_pairs(dim, 4, dim as u64).into_iter().enumerate() {
            let label = format!("dim {dim} pair {i}");
            check_pair(&Manhattan, &a, &b, &format!("l1 {label}"));
            check_pair(&Euclidean, &a, &b, &format!("l2 {label}"));
            check_pair(&Chebyshev, &a, &b, &format!("linf {label}"));
            check_pair(
                &Minkowski::new(3.0).unwrap(),
                &a,
                &b,
                &format!("l3 {label}"),
            );
            let weights: Vec<f64> = (0..dim).map(|j| 0.5 + (j % 5) as f64).collect();
            check_pair(
                &WeightedLp::new(weights, 2.0).unwrap(),
                &a,
                &b,
                &format!("weighted-l2 {label}"),
            );
            check_pair(&Angular, &a, &b, &format!("angular {label}"));
        }
    }
    // Identical pair: d = 0, every bound ≥ 0 must complete.
    let a = vec![0.25; 33];
    check_pair(&Manhattan, &a, &a, "l1 identical");
    check_pair(&Euclidean, &a, &a, "l2 identical");
}

#[test]
fn string_metrics_honor_the_contract() {
    let mut rng = StdRng::seed_from_u64(42);
    let alphabet = b"abcd";
    for len_a in [0usize, 1, 5, 17, 64] {
        for len_b in [0usize, 3, 17, 80] {
            let a: String = (0..len_a)
                .map(|_| alphabet[rng.random_range(0..alphabet.len())] as char)
                .collect();
            let b: String = (0..len_b)
                .map(|_| alphabet[rng.random_range(0..alphabet.len())] as char)
                .collect();
            let label = format!("{len_a}x{len_b}");
            check_pair(&Levenshtein, &a, &b, &format!("edit {label}"));
            if len_a == len_b {
                check_pair(&Hamming, &a, &b, &format!("hamming {label}"));
            }
        }
    }
    // Byte-slice Hamming on longer inputs.
    let xs: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
    let ys: Vec<u8> = (0..1000u32).map(|i| (i % 241) as u8).collect();
    check_pair(&Hamming, &xs, &ys, "hamming bytes");
}

#[test]
fn image_metrics_honor_the_contract() {
    let images = synthetic_mri_images(&MriConfig {
        subjects: 3,
        images_per_subject: 2,
        total: None,
        width: 32,
        height: 32,
        noise: 20,
        seed: 9,
    })
    .unwrap();
    for (i, a) in images.iter().enumerate() {
        for b in &images[i + 1..] {
            check_pair(&ImageL1::paper(), a, b, "image l1");
            check_pair(&ImageL2::paper(), a, b, "image l2");
            check_pair(&ImageHistogramL1::new(), a, b, "image histogram l1");
            let (ha, hb): (GrayHistogram, GrayHistogram) = (gray_histogram(a), gray_histogram(b));
            check_pair(&HistogramL1::new(), &ha, &hb, "histogram l1");
        }
    }
}

#[test]
fn set_metric_honors_the_contract() {
    let mut rng = StdRng::seed_from_u64(3);
    for n in [0usize, 1, 10, 100] {
        let a = sorted_set((0..n).map(|_| rng.random_range(0..64u64)));
        let b = sorted_set((0..n).map(|_| rng.random_range(0..64u64)));
        check_pair(&Jaccard, &a, &b, &format!("jaccard n={n}"));
    }
}

#[test]
fn counted_wrapper_preserves_the_contract_and_charges_one_computation() {
    let counted = Counted::new(Euclidean);
    // Enough dimensions that the first bounded checkpoint (element 64)
    // lands well before the end, so an abandon has fractional work.
    let (a, b) = (
        &uniform_vectors(2, 1024, 5)[0],
        &uniform_vectors(2, 1024, 5)[1],
    );
    check_pair(&counted, a, b, "counted l2");
    let d = counted.distance(a, b);
    counted.reset();
    // A completed bounded evaluation: one computation, no abandon.
    assert_eq!(counted.distance_within(a, b, d * 2.0), Some(d));
    assert_eq!(counted.count(), 1);
    assert_eq!(counted.abandoned(), 0);
    // An abandoned one: still one computation (the paper's cost model),
    // plus an abandon tick with fractional work.
    assert_eq!(counted.distance_within(a, b, d * 0.25), None);
    assert_eq!(counted.count(), 2);
    assert_eq!(counted.abandoned(), 1);
    assert!(counted.abandoned_work() < 1.0);
}

#[test]
fn nan_and_negative_bounds_never_produce_false_hits() {
    let (a, b) = (&vec![0.0; 16], &vec![1.0; 16]);
    for metric in [&Manhattan as &dyn BoundedMetric<Vec<f64>>, &Chebyshev] {
        assert_eq!(metric.distance_within(a, b, -1.0), None);
        // NaN bound: all comparisons with NaN are false, so the kernel
        // must not report a hit (it may abandon or complete-and-reject).
        assert_eq!(metric.distance_within(a, b, f64::NAN), None);
    }
    assert_eq!(Euclidean.distance_within(a, b, -f64::INFINITY), None);
}
