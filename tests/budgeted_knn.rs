//! Property tests for budgeted (best-effort) kNN across every
//! [`BudgetedSearch`] implementation: linear scan, vp-tree, mvp-tree and
//! the sharded composition of all three.
//!
//! The contract under test (see `vantage_core::budget`):
//!
//! * an unlimited budget is the exact search, bit-identical;
//! * `spent` never exceeds the budget;
//! * `estimated_recall` is always in `[0, 1]`, and a reported `1.0`
//!   means the answer is *provably exact* — no returned neighbor may be
//!   farther than the true k-th distance, and a non-exhausted run must
//!   reproduce the exact answer outright.

use proptest::prelude::*;
use vantage::prelude::*;

/// Cases per property: each case builds four index structures, so keep
/// the datasets small rather than the case count.
const CASES: u32 = 96;

fn points_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(-10.0f64..10.0, 3), 0..48)
}

fn query_strategy() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-12.0f64..12.0, 3)
}

/// A labelled budget-capable index over owned points.
type NamedBudgeted = (&'static str, Box<dyn BudgetedSearch<Vec<f64>>>);

/// Every budgeted structure over the same dataset.
fn budgeted_indexes(points: &[Vec<f64>]) -> Vec<NamedBudgeted> {
    vec![
        (
            "linear",
            Box::new(LinearScan::new(points.to_vec(), Euclidean)),
        ),
        (
            "vpt(2)",
            Box::new(
                VpTree::build(points.to_vec(), Euclidean, VpTreeParams::binary().seed(3)).unwrap(),
            ),
        ),
        (
            "mvpt(2,5,2)",
            Box::new(
                MvpTree::build(
                    points.to_vec(),
                    Euclidean,
                    MvpParams::paper(2, 5, 2).seed(5),
                )
                .unwrap(),
            ),
        ),
        (
            "sharded vpt",
            Box::new(
                ShardedIndex::build(points.to_vec(), 3, Threads::SEQUENTIAL, |s, part| {
                    VpTree::build(part, Euclidean, VpTreeParams::binary().seed(s as u64))
                })
                .unwrap(),
            ),
        ),
    ]
}

fn is_canonically_sorted(v: &[Neighbor]) -> bool {
    v.windows(2).all(|w| {
        w[0].distance < w[1].distance || (w[0].distance == w[1].distance && w[0].id < w[1].id)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    #[test]
    fn unlimited_budget_is_bit_identical_to_exact_knn(
        points in points_strategy(),
        q in query_strategy(),
        k in 0usize..8,
    ) {
        for (name, index) in budgeted_indexes(&points) {
            let exact = index.knn(&q, k);
            let got = index.knn_budgeted(&q, k, SearchBudget::UNLIMITED);
            prop_assert_eq!(&got.neighbors, &exact, "{}", name);
            prop_assert_eq!(got.estimated_recall, 1.0, "{}", name);
            prop_assert!(!got.exhausted, "{}", name);
        }
    }

    #[test]
    fn budgeted_answers_obey_the_contract(
        points in points_strategy(),
        q in query_strategy(),
        k in 0usize..8,
        budget in 0u64..64,
    ) {
        for (name, index) in budgeted_indexes(&points) {
            let exact = index.knn(&q, k);
            let got = index.knn_budgeted(&q, k, SearchBudget::limited(budget));

            prop_assert!(got.spent <= budget, "{}: spent {} > budget {}", name, got.spent, budget);
            prop_assert!(
                (0.0..=1.0).contains(&got.estimated_recall),
                "{}: estimate {} outside [0, 1]", name, got.estimated_recall
            );
            prop_assert!(got.neighbors.len() <= k, "{}", name);
            prop_assert!(is_canonically_sorted(&got.neighbors), "{}", name);

            // A budget at least the dataset size can never be exceeded,
            // so the answer must be exact and not exhausted.
            if budget >= points.len() as u64 {
                prop_assert_eq!(&got.neighbors, &exact, "{}", name);
                prop_assert!(!got.exhausted, "{}", name);
                prop_assert_eq!(got.estimated_recall, 1.0, "{}", name);
            }

            // Prefix quality: a reported recall of 1.0 promises a
            // provably exact answer — same answer count, and no returned
            // neighbor farther than the true k-th distance.
            if got.estimated_recall == 1.0 {
                prop_assert_eq!(got.neighbors.len(), exact.len(), "{}", name);
                if let Some(kth) = exact.last() {
                    for n in &got.neighbors {
                        prop_assert!(
                            n.distance <= kth.distance,
                            "{}: claimed-exact neighbor {} at {} beyond true k-th {}",
                            name, n.id, n.distance, kth.distance
                        );
                    }
                }
                if !got.exhausted {
                    prop_assert_eq!(&got.neighbors, &exact, "{}", name);
                }
            }

            // Every returned neighbor is a real dataset point at its
            // true distance (best-effort never fabricates).
            for n in &got.neighbors {
                let item = index.get(n.id);
                prop_assert!(item.is_some(), "{}: id {} out of range", name, n.id);
                let d = Euclidean.distance(&q, item.unwrap());
                prop_assert_eq!(n.distance, d, "{}: id {}", name, n.id);
            }
        }
    }

    #[test]
    fn sharded_budget_split_is_deterministic(
        points in points_strategy(),
        q in query_strategy(),
        k in 1usize..6,
        budget in 0u64..48,
        shards in 1usize..5,
    ) {
        let build = |threads: Threads| {
            ShardedIndex::build(points.clone(), shards, threads, |s, part| {
                VpTree::build(part, Euclidean, VpTreeParams::binary().seed(s as u64))
            })
            .unwrap()
        };
        let seq = build(Threads::SEQUENTIAL);
        let par = build(Threads::Fixed(4));
        let a = seq.knn_budgeted(&q, k, SearchBudget::limited(budget));
        let b = seq.knn_budgeted(&q, k, SearchBudget::limited(budget));
        // Budgeted sharded search shares no cross-shard bound, so results
        // are identical run-to-run *and* independent of scatter threading.
        let c = par.knn_budgeted(&q, k, SearchBudget::limited(budget));
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
    }
}
