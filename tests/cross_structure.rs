//! Cross-crate integration: every index structure in the workspace
//! answers identically over shared workloads, under multiple metrics.

use vantage::prelude::*;
use vantage_datasets::{perturbed_words, uniform_vectors};

fn sorted_ids(mut v: Vec<Neighbor>) -> Vec<usize> {
    v.sort_unstable_by_key(|n| n.id);
    v.into_iter().map(|n| n.id).collect()
}

type NamedIndexes = Vec<(&'static str, Box<dyn MetricIndex<Vec<f64>>>)>;

/// Builds every vector-capable structure over the same dataset.
fn vector_indexes(points: &[Vec<f64>]) -> NamedIndexes {
    vec![
        (
            "linear",
            Box::new(LinearScan::new(points.to_vec(), Euclidean)),
        ),
        (
            "vpt(2)",
            Box::new(
                VpTree::build(points.to_vec(), Euclidean, VpTreeParams::binary().seed(3)).unwrap(),
            ),
        ),
        (
            "vpt(3) bucketed",
            Box::new(
                VpTree::build(
                    points.to_vec(),
                    Euclidean,
                    VpTreeParams::with_order(3).leaf_capacity(8).seed(4),
                )
                .unwrap(),
            ),
        ),
        (
            "mvpt(3,80,5)",
            Box::new(
                MvpTree::build(
                    points.to_vec(),
                    Euclidean,
                    MvpParams::paper(3, 80, 5).seed(5),
                )
                .unwrap(),
            ),
        ),
        (
            "mvpt(2,5,2)",
            Box::new(
                MvpTree::build(
                    points.to_vec(),
                    Euclidean,
                    MvpParams::paper(2, 5, 2).seed(6),
                )
                .unwrap(),
            ),
        ),
        (
            "gh-tree",
            Box::new(GhTree::build(points.to_vec(), Euclidean, GhTreeParams::default()).unwrap()),
        ),
        (
            "gnat",
            Box::new(Gnat::build(points.to_vec(), Euclidean, GnatParams::default()).unwrap()),
        ),
        (
            "fq-tree",
            Box::new(FqTree::build(points.to_vec(), Euclidean, FqTreeParams::default()).unwrap()),
        ),
        (
            "laesa(16)",
            Box::new(Laesa::build(points.to_vec(), Euclidean, 16).unwrap()),
        ),
        ("aesa", Box::new(Aesa::build(points.to_vec(), Euclidean))),
    ]
}

#[test]
fn all_structures_agree_on_range_queries() {
    let points = uniform_vectors(800, 8, 1);
    let queries = uniform_vectors(10, 8, 2);
    let indexes = vector_indexes(&points);
    let oracle = &indexes[0].1;
    for q in &queries {
        for r in [0.0, 0.3, 0.6, 1.2] {
            let want = sorted_ids(oracle.range(q, r));
            for (name, index) in &indexes[1..] {
                assert_eq!(
                    sorted_ids(index.range(q, r)),
                    want,
                    "{name} disagrees at r={r}"
                );
            }
        }
    }
}

#[test]
fn all_structures_agree_on_knn_distances() {
    let points = uniform_vectors(500, 6, 3);
    let queries = uniform_vectors(5, 6, 4);
    let indexes = vector_indexes(&points);
    let oracle = &indexes[0].1;
    for q in &queries {
        for k in [1, 7, 32] {
            let want = oracle.knn(q, k);
            for (name, index) in &indexes[1..] {
                let got = index.knn(q, k);
                assert_eq!(got.len(), want.len(), "{name} k={k}");
                for (g, w) in got.iter().zip(&want) {
                    assert!(
                        (g.distance - w.distance).abs() < 1e-12,
                        "{name} k={k}: {} vs {}",
                        g.distance,
                        w.distance
                    );
                }
            }
        }
    }
}

#[test]
fn string_indexes_agree_under_edit_distance() {
    let words = perturbed_words(60, 9, 1, 5);
    let oracle = LinearScan::new(words.clone(), Levenshtein);
    let bk = BkTree::build(words.clone(), Levenshtein);
    let vp = VpTree::build(words.clone(), Levenshtein, VpTreeParams::binary().seed(1)).unwrap();
    let mvp = MvpTree::build(
        words.clone(),
        Levenshtein,
        MvpParams::paper(2, 20, 3).seed(2),
    )
    .unwrap();
    for q in ["hello", &words[17].clone(), "", "zzzzzzzzzzzz"] {
        for r in [0.0, 1.0, 2.0, 4.0] {
            let want = sorted_ids(oracle.range(&q.to_string(), r));
            assert_eq!(
                sorted_ids(bk.range(&q.to_string(), r)),
                want,
                "bk q={q} r={r}"
            );
            assert_eq!(
                sorted_ids(vp.range(&q.to_string(), r)),
                want,
                "vp q={q} r={r}"
            );
            assert_eq!(
                sorted_ids(mvp.range(&q.to_string(), r)),
                want,
                "mvp q={q} r={r}"
            );
        }
    }
}

#[test]
fn no_structure_exceeds_linear_scan_cost() {
    let points = uniform_vectors(600, 10, 8);
    let n = points.len() as u64;
    let query = uniform_vectors(1, 10, 9).pop().unwrap();

    macro_rules! check {
        ($name:literal, $build:expr) => {{
            let metric = Counted::new(Euclidean);
            let probe = metric.clone();
            let index = $build(points.clone(), metric);
            probe.reset();
            index.range(&query, 0.8);
            assert!(
                probe.count() <= n,
                "{} used {} > {n} distance computations",
                $name,
                probe.count()
            );
        }};
    }
    check!("vpt(2)", |p, m| VpTree::build(
        p,
        m,
        VpTreeParams::binary().seed(1)
    )
    .unwrap());
    check!("mvpt", |p, m| MvpTree::build(
        p,
        m,
        MvpParams::paper(3, 40, 5).seed(1)
    )
    .unwrap());
    check!("gh", |p, m| GhTree::build(p, m, GhTreeParams::default())
        .unwrap());
    check!("gnat", |p, m| Gnat::build(p, m, GnatParams::default())
        .unwrap());
    check!("aesa", Aesa::build);
    check!("laesa", |p, m| Laesa::build(p, m, 16).unwrap());
}

#[test]
fn facade_prelude_covers_the_workflow() {
    // The README quickstart path, via the facade's prelude only.
    let points = uniform_vectors(300, 5, 10);
    let tree = MvpTree::build(points, Euclidean, MvpParams::default()).unwrap();
    let hits = tree.range(&vec![0.5; 5], 0.4);
    let nn = tree.knn(&vec![0.5; 5], 3);
    assert_eq!(nn.len(), 3);
    for n in hits {
        assert!(tree.get(n.id).is_some());
    }
}
