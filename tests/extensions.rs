//! Integration tests for the beyond-the-paper extensions, exercised
//! through the facade crate the way an application would.

use vantage::baselines::twostage::projections::image_l1_intensity;
use vantage::core::FarthestIndex;
use vantage::prelude::*;
use vantage_datasets::{synthetic_mri_images, uniform_vectors, MriConfig};

fn sorted_ids(mut v: Vec<Neighbor>) -> Vec<usize> {
    v.sort_unstable_by_key(|n| n.id);
    v.into_iter().map(|n| n.id).collect()
}

#[test]
fn farthest_queries_agree_across_structures() {
    let points = uniform_vectors(700, 6, 21);
    let query = vec![0.9; 6];
    let oracle = LinearScan::new(points.clone(), Euclidean);
    let vp = VpTree::build(
        points.clone(),
        Euclidean,
        VpTreeParams::with_order(3).seed(1),
    )
    .unwrap();
    let mvp = MvpTree::build(points, Euclidean, MvpParams::paper(3, 20, 4).seed(2)).unwrap();
    for r in [0.5, 1.0, 1.5] {
        let want = sorted_ids(oracle.range_beyond(&query, r));
        assert_eq!(sorted_ids(vp.range_beyond(&query, r)), want, "vp r={r}");
        assert_eq!(sorted_ids(mvp.range_beyond(&query, r)), want, "mvp r={r}");
    }
    for k in [1, 10, 50] {
        let want = oracle.k_farthest(&query, k);
        for (name, got) in [
            ("vp", vp.k_farthest(&query, k)),
            ("mvp", mvp.k_farthest(&query, k)),
        ] {
            assert_eq!(got.len(), want.len(), "{name} k={k}");
            for (g, w) in got.iter().zip(&want) {
                assert!((g.distance - w.distance).abs() < 1e-12, "{name} k={k}");
            }
        }
    }
}

#[test]
fn farthest_queries_prune_on_structured_data() {
    // Clustered data gives far-neighbor queries something to prune.
    let mut points = uniform_vectors(1000, 8, 3);
    for p in points.iter_mut().take(500) {
        for x in p.iter_mut() {
            *x *= 0.05; // tight cluster near the origin
        }
    }
    let metric = Counted::new(Euclidean);
    let probe = metric.clone();
    let tree = MvpTree::build(points, metric, MvpParams::paper(3, 40, 5).seed(1)).unwrap();
    probe.reset();
    let far = tree.range_beyond(&vec![0.0; 8], 0.4);
    assert!(far.len() >= 450, "most uniform points lie beyond 0.4");
    assert!(
        probe.count() < 1000,
        "upper-bound pruning should skip part of the cluster: {}",
        probe.count()
    );
}

#[test]
fn two_stage_image_pipeline_is_exact_end_to_end() {
    let images = synthetic_mri_images(&MriConfig {
        subjects: 5,
        images_per_subject: 16,
        total: None,
        width: 32,
        height: 32,
        noise: 8,
        seed: 4,
    })
    .unwrap();
    let project = image_l1_intensity(ImageL1::PAPER_NORM).unwrap();
    let two_stage = TwoStage::build(
        images.clone(),
        ImageL1::paper(),
        &project,
        Manhattan,
        MvpParams::paper(2, 6, 2).seed(1),
    )
    .unwrap();
    two_stage.spot_check(&project, 20).unwrap();
    let oracle = LinearScan::new(images.clone(), ImageL1::paper());
    for qid in [0, 33, 79] {
        let q = images[qid].clone();
        let pq = project(&q);
        for r in [0.2, 1.0, 3.0] {
            assert_eq!(
                sorted_ids(two_stage.range(&q, &pq, r)),
                sorted_ids(oracle.range(&q, r)),
                "qid={qid} r={r}"
            );
        }
        let got = two_stage.knn(&q, &pq, 4);
        let want = oracle.knn(&q, 4);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.distance - w.distance).abs() < 1e-12);
        }
    }
}

#[test]
fn fq_tree_shares_pivot_distances_across_a_level() {
    // The FQ-tree property the mvp-tree generalizes: a broad query
    // computes at most one distance per level beyond the leaf scans.
    let points = uniform_vectors(600, 4, 9);
    let metric = Counted::new(Euclidean);
    let probe = metric.clone();
    let tree = FqTree::build(
        points,
        metric,
        FqTreeParams {
            order: 3,
            leaf_capacity: 1,
            max_depth: 24,
            seed: 2,
        },
    )
    .unwrap();
    probe.reset();
    let hits = tree.range(&vec![0.5; 4], 1e9);
    assert_eq!(hits.len(), 600);
    assert!(
        probe.count() <= 600 + tree.pivots().len() as u64,
        "cost {} exceeds n + one distance per level",
        probe.count()
    );
}

#[test]
fn dynamic_tree_supports_the_full_update_lifecycle() {
    let mut tree = DynamicMvpTree::with_items(
        uniform_vectors(300, 5, 11),
        Euclidean,
        MvpParams::paper(2, 8, 3),
    )
    .unwrap();
    let added: Vec<usize> = uniform_vectors(100, 5, 12)
        .into_iter()
        .map(|p| tree.insert(p))
        .collect();
    for id in added.iter().take(50) {
        assert!(tree.remove(*id));
    }
    assert_eq!(tree.len(), 350);
    // Farthest/nearest/range all stay available and consistent.
    let q = vec![0.5; 5];
    let nn = tree.knn(&q, 5);
    assert_eq!(nn.len(), 5);
    let in_range = tree.range(&q, nn[4].distance);
    assert!(in_range.len() >= 5);
}
