//! kNN tie handling: when the k-th and (k+1)-th nearest neighbors are
//! exactly equidistant, any distance-equivalent answer set is valid — but
//! every index must return *some* valid set: exactly `k` answers, the
//! right distance multiset, honest per-answer distances, and every point
//! strictly closer than the tie included.

use vantage::prelude::*;

type NamedIndexes = Vec<(&'static str, Box<dyn MetricIndex<Vec<f64>>>)>;

/// A dataset engineered for exact distance ties under L2: Pythagorean
/// points at distance exactly 5 from the origin in 12 directions, plus
/// strictly closer points (distances 1 and 2) and strictly farther ones.
/// All coordinates are small integers, so the distances are exact in
/// floating point — the ties are bit-exact, not approximate.
fn tie_dataset() -> Vec<Vec<f64>> {
    let mut pts: Vec<Vec<f64>> = vec![
        vec![1.0, 0.0],  // d = 1
        vec![0.0, -2.0], // d = 2
    ];
    // 12 points at d = 5: (±3, ±4), (±4, ±3), (±5, 0), (0, ±5).
    for (x, y) in [
        (3.0, 4.0),
        (3.0, -4.0),
        (-3.0, 4.0),
        (-3.0, -4.0),
        (4.0, 3.0),
        (4.0, -3.0),
        (-4.0, 3.0),
        (-4.0, -3.0),
        (5.0, 0.0),
        (-5.0, 0.0),
        (0.0, 5.0),
        (0.0, -5.0),
    ] {
        pts.push(vec![x, y]);
    }
    // Strictly farther points.
    for (x, y) in [(6.0, 8.0), (-6.0, 8.0), (12.0, 0.0), (0.0, -13.0)] {
        pts.push(vec![x, y]);
    }
    pts
}

fn indexes(points: &[Vec<f64>]) -> NamedIndexes {
    vec![
        (
            "linear",
            Box::new(LinearScan::new(points.to_vec(), Euclidean)),
        ),
        (
            "vpt(2)",
            Box::new(
                VpTree::build(points.to_vec(), Euclidean, VpTreeParams::binary().seed(3)).unwrap(),
            ),
        ),
        (
            "vpt(3)",
            Box::new(
                VpTree::build(
                    points.to_vec(),
                    Euclidean,
                    VpTreeParams::with_order(3).leaf_capacity(3).seed(4),
                )
                .unwrap(),
            ),
        ),
        (
            "mvpt(2,5,2)",
            Box::new(
                MvpTree::build(
                    points.to_vec(),
                    Euclidean,
                    MvpParams::paper(2, 5, 2).seed(5),
                )
                .unwrap(),
            ),
        ),
        (
            "mvpt(3,4,3)",
            Box::new(
                MvpTree::build(
                    points.to_vec(),
                    Euclidean,
                    MvpParams::paper(3, 4, 3).seed(6),
                )
                .unwrap(),
            ),
        ),
        (
            "gh-tree",
            Box::new(GhTree::build(points.to_vec(), Euclidean, GhTreeParams::default()).unwrap()),
        ),
        (
            "gnat",
            Box::new(Gnat::build(points.to_vec(), Euclidean, GnatParams::default()).unwrap()),
        ),
        (
            "fq-tree",
            Box::new(FqTree::build(points.to_vec(), Euclidean, FqTreeParams::default()).unwrap()),
        ),
        (
            "laesa(3)",
            Box::new(Laesa::build(points.to_vec(), Euclidean, 3).unwrap()),
        ),
        ("aesa", Box::new(Aesa::build(points.to_vec(), Euclidean))),
    ]
}

fn exact_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[test]
fn every_index_returns_a_valid_answer_set_at_the_tie_boundary() {
    let points = tie_dataset();
    let query = vec![0.0, 0.0];
    let oracle = LinearScan::new(points.clone(), Euclidean);

    // k values that cut *through* the 12-way tie at distance 5: with 2
    // closer points, the k-th and (k+1)-th neighbors are equidistant for
    // every k in 3..=13.
    for k in [3, 5, 8, 13] {
        let want = oracle.knn(&query, k);
        let want_distances: Vec<f64> = want.iter().map(|n| n.distance).collect();
        // Sanity: this workload really does tie at the boundary.
        assert_eq!(want_distances[k - 1], 5.0);
        assert_eq!(want_distances[2], 5.0);

        for (name, index) in &indexes(&points) {
            let got = index.knn(&query, k);
            assert_eq!(got.len(), k, "{name} returned wrong count at k={k}");
            // Distance multiset must match the oracle exactly (sorted
            // output, bit-exact integer-coordinate distances).
            let got_distances: Vec<f64> = got.iter().map(|n| n.distance).collect();
            assert_eq!(
                got_distances, want_distances,
                "{name} distance multiset differs at k={k}"
            );
            // Each reported (id, distance) pair must be honest…
            let mut seen = std::collections::HashSet::new();
            for n in &got {
                assert!(seen.insert(n.id), "{name} returned id {} twice", n.id);
                let true_d = exact_distance(&query, &points[n.id]);
                assert_eq!(n.distance, true_d, "{name} lied about id {}", n.id);
            }
            // …and everything strictly closer than the tie must be there.
            for (id, p) in points.iter().enumerate() {
                if exact_distance(&query, p) < 5.0 {
                    assert!(
                        seen.contains(&id),
                        "{name} dropped strictly-closer id {id} at k={k}"
                    );
                }
            }
        }
    }
}

#[test]
fn tie_sets_are_valid_for_every_index_under_edit_distance() {
    // Levenshtein ties are pervasive: every single-substitution variant
    // of "cat" is at distance 1. k cuts through that tie.
    let words: Vec<String> = [
        "cat", "bat", "hat", "rat", "mat", "car", "cot", "cut", "dog", "dig", "doge", "catalog",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let query = "cat".to_string();
    let oracle = LinearScan::new(words.clone(), Levenshtein);
    let bk = BkTree::build(words.clone(), Levenshtein);
    let vp = VpTree::build(words.clone(), Levenshtein, VpTreeParams::binary().seed(1)).unwrap();
    let mvp = MvpTree::build(
        words.clone(),
        Levenshtein,
        MvpParams::paper(2, 4, 2).seed(2),
    )
    .unwrap();

    for k in [2, 4, 6] {
        let want: Vec<f64> = oracle.knn(&query, k).iter().map(|n| n.distance).collect();
        // The boundary must actually tie (7 words at distance ≤ 1).
        assert_eq!(want[k - 1], 1.0);
        for (name, got) in [
            ("bk", bk.knn(&query, k)),
            ("vp", vp.knn(&query, k)),
            ("mvp", mvp.knn(&query, k)),
        ] {
            let got_d: Vec<f64> = got.iter().map(|n| n.distance).collect();
            assert_eq!(got_d, want, "{name} distance multiset differs at k={k}");
            for n in &got {
                let true_d = Levenshtein.distance(&query, &words[n.id]);
                assert_eq!(n.distance, true_d, "{name} lied about id {}", n.id);
            }
        }
    }
}
