//! Integration tests pinning the paper's qualitative claims at reduced
//! scale — the same shapes EXPERIMENTS.md records at full scale.

use vantage::prelude::*;
use vantage_datasets::{
    clustered_vectors, synthetic_mri_images, uniform_vectors, ClusteredConfig, MriConfig,
};

/// Average search-time distance computations for one built index over a
/// query batch.
fn avg_cost<T: Clone, I: MetricIndex<T>>(
    index: &I,
    probe: &Counted<impl Metric<T>>,
    queries: &[T],
    radius: f64,
) -> f64 {
    probe.reset();
    for q in queries {
        index.range(q, radius);
    }
    probe.take() as f64 / queries.len() as f64
}

fn uniform_workload() -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    (uniform_vectors(4000, 20, 1), uniform_vectors(25, 20, 2))
}

/// Abstract: "mvp tree outperforms the vp-tree 20% to 80% for varying
/// query ranges".
#[test]
fn mvp_outperforms_vp_across_ranges() {
    let (points, queries) = uniform_workload();

    let vp_metric = Counted::new(Euclidean);
    let vp_probe = vp_metric.clone();
    let vp = VpTree::build(points.clone(), vp_metric, VpTreeParams::binary().seed(9)).unwrap();

    let mvp_metric = Counted::new(Euclidean);
    let mvp_probe = mvp_metric.clone();
    let mvp = MvpTree::build(points, mvp_metric, MvpParams::paper(3, 40, 5).seed(9)).unwrap();

    let mut savings_by_range = Vec::new();
    for r in [0.15, 0.3, 0.5] {
        let vp_cost = avg_cost(&vp, &vp_probe, &queries, r);
        let mvp_cost = avg_cost(&mvp, &mvp_probe, &queries, r);
        let savings = 1.0 - mvp_cost / vp_cost;
        assert!(
            savings > 0.15,
            "r={r}: mvp saved only {:.0}% ({mvp_cost:.0} vs {vp_cost:.0})",
            100.0 * savings
        );
        savings_by_range.push(savings);
    }
    // §5.2: "the gap closes slowly when the query range increases". At
    // this reduced scale adjacent radii can jitter, so pin the trend
    // across the whole sweep rather than pairwise.
    let (first, last) = (savings_by_range[0], *savings_by_range.last().unwrap());
    assert!(
        last <= first + 0.05,
        "savings should shrink across the range sweep: {savings_by_range:?}"
    );
}

/// §4.2: "It is a good idea to keep k large so that most of the data
/// items are kept in the leaves" — larger k ⇒ cheaper searches at small
/// ranges and a higher leaf fraction.
#[test]
fn larger_leaf_capacity_pays_off() {
    let (points, queries) = uniform_workload();
    let mut costs = Vec::new();
    for k in [1, 9, 80] {
        let metric = Counted::new(Euclidean);
        let probe = metric.clone();
        let tree =
            MvpTree::build(points.clone(), metric, MvpParams::paper(3, k, 5).seed(4)).unwrap();
        costs.push((
            k,
            avg_cost(&tree, &probe, &queries, 0.15),
            tree.stats().leaf_fraction(),
        ));
    }
    assert!(
        costs[2].1 < costs[0].1,
        "k=80 {:?} should beat k=1 {:?}",
        costs[2],
        costs[0]
    );
    assert!(
        costs[2].2 > costs[1].2 && costs[1].2 > costs[0].2,
        "leaf fraction grows with k: {costs:?}"
    );
}

/// Observation 2 (§4.1): keeping more pre-computed path distances never
/// hurts and usually helps.
#[test]
fn path_distances_reduce_cost_monotonically_ish() {
    let (points, queries) = uniform_workload();
    let cost_for = |p: usize| {
        let metric = Counted::new(Euclidean);
        let probe = metric.clone();
        let tree =
            MvpTree::build(points.clone(), metric, MvpParams::paper(3, 80, p).seed(4)).unwrap();
        avg_cost(&tree, &probe, &queries, 0.3)
    };
    let p0 = cost_for(0);
    let p2 = cost_for(2);
    let p5 = cost_for(5);
    assert!(p2 <= p0, "p=2 ({p2}) worse than p=0 ({p0})");
    assert!(p5 <= p2, "p=5 ({p5}) worse than p=2 ({p2})");
    assert!(p5 < 0.95 * p0, "path filtering should help: {p5} vs {p0}");
}

/// §5.2 on clustered data: the wider distance distribution lets indexes
/// keep filtering at larger radii; mvp still wins.
#[test]
fn clustered_vectors_preserve_the_mvp_advantage() {
    let config = ClusteredConfig {
        clusters: 4,
        cluster_size: 1000,
        dim: 20,
        epsilon: 0.15,
        seed: 3,
    };
    let points = clustered_vectors(&config).unwrap();
    let queries = uniform_vectors(25, 20, 5);

    let vp_metric = Counted::new(Euclidean);
    let vp_probe = vp_metric.clone();
    let vp = VpTree::build(
        points.clone(),
        vp_metric,
        VpTreeParams::with_order(3).seed(2),
    )
    .unwrap();
    let mvp_metric = Counted::new(Euclidean);
    let mvp_probe = mvp_metric.clone();
    let mvp = MvpTree::build(points, mvp_metric, MvpParams::paper(3, 40, 5).seed(2)).unwrap();

    // At this reduced scale individual radii can tie; the paper's claim
    // is about the trend, so compare total cost across the range sweep.
    let radii = [0.2, 0.4, 0.6, 0.8, 1.0];
    let vp_total: f64 = radii
        .iter()
        .map(|&r| avg_cost(&vp, &vp_probe, &queries, r))
        .sum();
    let mvp_total: f64 = radii
        .iter()
        .map(|&r| avg_cost(&mvp, &mvp_probe, &queries, r))
        .sum();
    assert!(
        mvp_total < vp_total,
        "mvp total {mvp_total} should beat vp total {vp_total}"
    );
}

/// Figures 6–7: the image collection's distance distribution is bimodal
/// (same-subject vs cross-subject), unlike the unimodal vector sets.
#[test]
fn image_distance_distribution_is_bimodal() {
    let config = MriConfig::quick(1);
    let images = synthetic_mri_images(&config).unwrap();
    let metric = ImageL1::paper();
    let per = config.images_per_subject;
    // Split pairwise distances into within-subject and cross-subject
    // populations — the two modes of paper Figures 6–7.
    let (mut within, mut cross) = (Vec::new(), Vec::new());
    for i in 0..images.len() {
        for j in 0..i {
            let d = metric.distance(&images[i], &images[j]);
            if i / per == j / per {
                within.push(d);
            } else {
                cross.push(d);
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (mw, mc) = (mean(&within), mean(&cross));
    assert!(
        mw * 2.0 < mc,
        "within-subject mean {mw} should be far below cross-subject mean {mc}"
    );
    // The combined histogram has real mass around both population means.
    let hist = DistanceHistogram::pairwise(&images, &metric, 0.25, 2).unwrap();
    let mass_near = |center: f64| {
        hist.rows()
            .filter(|(edge, _)| (edge - center).abs() < (mc - mw) / 4.0)
            .map(|(_, c)| c)
            .sum::<u64>()
    };
    assert!(mass_near(mw) > 0, "no mass near the within-subject mode");
    assert!(mass_near(mc) > 0, "no mass near the cross-subject mode");
}

/// §3.3/§4.2: construction costs O(n log_m n) distance computations; the
/// mvp-tree's is comparable to the vp-tree's (same asymptotic, two
/// vantage points per node but half the levels).
#[test]
fn construction_costs_scale_log_linearly() {
    let cost_at = |n: usize| {
        let points = uniform_vectors(n, 10, 6);
        let metric = Counted::new(Euclidean);
        let probe = metric.clone();
        MvpTree::build(points, metric, MvpParams::paper(2, 1, 0).seed(1)).unwrap();
        probe.count() as f64
    };
    let c1 = cost_at(1000);
    let c4 = cost_at(4000);
    // n log n growth: 4x points → slightly more than 4x cost, far less
    // than the 16x of quadratic construction.
    let ratio = c4 / c1;
    assert!(
        (3.5..8.0).contains(&ratio),
        "cost ratio {ratio} not n·log n-like (c1={c1}, c4={c4})"
    );
}

/// §4.3 worst case: even adversarial queries never exceed N distance
/// computations, "making it a significant improvement over linear
/// search" on average.
#[test]
fn worst_case_never_exceeds_linear() {
    let points = uniform_vectors(2000, 20, 7);
    let metric = Counted::new(Euclidean);
    let probe = metric.clone();
    let tree = MvpTree::build(points, metric, MvpParams::paper(3, 80, 5).seed(7)).unwrap();
    // A huge radius forces visiting everything.
    probe.reset();
    let hits = tree.range(&vec![0.5; 20], 1e6);
    assert_eq!(hits.len(), 2000);
    assert!(probe.count() <= 2000);
}
