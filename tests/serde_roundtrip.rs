//! Serialization roundtrips (feature `serde`): built indexes serialize,
//! deserialize, and answer queries identically afterwards.
//!
//! Run with: `cargo test --features serde --test serde_roundtrip`

#![cfg(feature = "serde")]

use vantage::prelude::*;
use vantage_datasets::uniform_vectors;

fn sorted_ids(mut v: Vec<Neighbor>) -> Vec<usize> {
    v.sort_unstable_by_key(|n| n.id);
    v.into_iter().map(|n| n.id).collect()
}

fn roundtrip<S: serde::Serialize + serde::de::DeserializeOwned>(value: &S) -> S {
    let json = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn mvp_tree_roundtrips() {
    let points = uniform_vectors(500, 6, 1);
    let tree = MvpTree::build(points, Euclidean, MvpParams::paper(3, 13, 4).seed(2)).unwrap();
    let restored: MvpTree<Vec<f64>, Euclidean> = roundtrip(&tree);
    let q = vec![0.4; 6];
    assert_eq!(
        sorted_ids(tree.range(&q, 0.5)),
        sorted_ids(restored.range(&q, 0.5))
    );
    assert_eq!(tree.knn(&q, 7), restored.knn(&q, 7));
    restored.check_invariants().unwrap();
}

#[test]
fn vp_tree_roundtrips() {
    let points = uniform_vectors(400, 5, 3);
    let tree = VpTree::build(
        points,
        Euclidean,
        VpTreeParams::with_order(3).leaf_capacity(4).seed(1),
    )
    .unwrap();
    let restored: VpTree<Vec<f64>, Euclidean> = roundtrip(&tree);
    let q = vec![0.6; 5];
    assert_eq!(
        sorted_ids(tree.range(&q, 0.4)),
        sorted_ids(restored.range(&q, 0.4))
    );
    restored.check_invariants().unwrap();
}

#[test]
fn baseline_structures_roundtrip() {
    let points = uniform_vectors(200, 4, 5);
    let q = vec![0.5; 4];

    let gh = GhTree::build(points.clone(), Euclidean, GhTreeParams::default()).unwrap();
    let gh2: GhTree<Vec<f64>, Euclidean> = roundtrip(&gh);
    assert_eq!(
        sorted_ids(gh.range(&q, 0.4)),
        sorted_ids(gh2.range(&q, 0.4))
    );

    let gnat = Gnat::build(points.clone(), Euclidean, GnatParams::default()).unwrap();
    let gnat2: Gnat<Vec<f64>, Euclidean> = roundtrip(&gnat);
    assert_eq!(
        sorted_ids(gnat.range(&q, 0.4)),
        sorted_ids(gnat2.range(&q, 0.4))
    );

    let aesa = Aesa::build(points.clone(), Euclidean);
    let aesa2: Aesa<Vec<f64>, Euclidean> = roundtrip(&aesa);
    assert_eq!(
        sorted_ids(aesa.range(&q, 0.4)),
        sorted_ids(aesa2.range(&q, 0.4))
    );

    let laesa = Laesa::build(points, Euclidean, 8).unwrap();
    let laesa2: Laesa<Vec<f64>, Euclidean> = roundtrip(&laesa);
    assert_eq!(
        sorted_ids(laesa.range(&q, 0.4)),
        sorted_ids(laesa2.range(&q, 0.4))
    );
}

#[test]
fn bk_tree_roundtrips_with_strings() {
    let words: Vec<String> = ["alpha", "beta", "gamma", "delta", "epsilon"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let bk = BkTree::build(words, Levenshtein);
    let bk2: BkTree<String, Levenshtein> = roundtrip(&bk);
    let q = "betta".to_string();
    assert_eq!(
        sorted_ids(bk.range(&q, 2.0)),
        sorted_ids(bk2.range(&q, 2.0))
    );
}

#[test]
fn gray_images_and_metrics_roundtrip() {
    use vantage_core::metrics::image::GrayImage;
    let img = GrayImage::new(4, 2, vec![1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
    let img2: GrayImage = roundtrip(&img);
    assert_eq!(img, img2);
    let m = ImageL1::paper();
    let m2: ImageL1 = roundtrip(&m);
    assert_eq!(m.distance(&img, &img2), 0.0);
    assert_eq!(m2.norm(), ImageL1::PAPER_NORM);
}

#[test]
fn histograms_roundtrip() {
    let mut h = DistanceHistogram::new(0.5).unwrap();
    h.record(0.7);
    h.record(2.2);
    let h2: DistanceHistogram = roundtrip(&h);
    assert_eq!(h, h2);
}
