//! Concurrency stress for sharded scatter-gather search: the shared
//! pruning bounds must be monotone under contention, and a
//! [`ShardedIndex`] hammered by many client threads (each query itself
//! scattering across shard threads) must return exactly the answers a
//! single-threaded run produces.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use vantage::prelude::*;

/// Deterministic pseudo-random f64 in [0, scale) — no external RNG.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

fn lcg_f64(state: &mut u64, scale: f64) -> f64 {
    lcg(state) as f64 / (1u64 << 31) as f64 * scale
}

#[test]
fn shared_upper_bound_only_tightens_under_contention() {
    let bound = Arc::new(SharedUpperBound::new());
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        // A reader samples the bound continuously: every observed value
        // must be <= the previous one (the bound never relaxes).
        let reader = {
            let bound = Arc::clone(&bound);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut last = f64::INFINITY;
                let mut samples = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let v = bound.get();
                    assert!(v <= last, "bound relaxed from {last} to {v}");
                    last = v;
                    samples += 1;
                }
                samples
            })
        };
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let bound = Arc::clone(&bound);
                scope.spawn(move || {
                    let mut state = 0x9e3779b97f4a7c15u64 ^ (t as u64);
                    for _ in 0..20_000 {
                        let candidate = lcg_f64(&mut state, 1000.0);
                        let before = bound.get();
                        let changed = bound.tighten(candidate);
                        // tighten returns true only for strict improvements.
                        if changed {
                            assert!(candidate < before);
                        }
                        assert!(bound.get() <= before);
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        assert!(reader.join().unwrap() > 0);
    });
    // 4 writers × 20k draws from the same range: the floor is tiny.
    assert!(bound.get() < 1.0, "final bound {}", bound.get());
}

#[test]
fn shared_lower_bound_only_rises_under_contention() {
    let bound = Arc::new(SharedLowerBound::new());
    std::thread::scope(|scope| {
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let bound = Arc::clone(&bound);
                scope.spawn(move || {
                    let mut state = 0xdeadbeefcafef00du64 ^ (t as u64);
                    let mut last = f64::NEG_INFINITY;
                    for _ in 0..20_000 {
                        let candidate = lcg_f64(&mut state, 1000.0);
                        bound.tighten(candidate);
                        let v = bound.get();
                        assert!(v >= last, "bound fell from {last} to {v}");
                        assert!(v >= candidate, "bound {v} below published {candidate}");
                        last = v;
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
    });
    assert!(bound.get() > 999.0, "final bound {}", bound.get());
}

#[test]
fn concurrent_queries_match_single_threaded_answers() {
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 12;

    // A dataset with plenty of exact ties so canonical tie-breaking is
    // actually load-bearing under every interleaving.
    let points: Vec<Vec<f64>> = (0..400)
        .map(|i| vec![(i % 13) as f64 * 0.25, (i % 7) as f64 * 0.5, (i % 5) as f64])
        .collect();
    let index = Arc::new(
        ShardedIndex::build(points.clone(), 4, Threads::Fixed(4), |s, part| {
            VpTree::build(part, Euclidean, VpTreeParams::binary().seed(s as u64))
        })
        .unwrap(),
    );

    let queries: Vec<Vec<f64>> = (0..24)
        .map(|i| {
            let mut state = 0x1234_5678u64 ^ (i as u64) << 7;
            vec![
                lcg_f64(&mut state, 3.5),
                lcg_f64(&mut state, 3.5),
                lcg_f64(&mut state, 4.5),
            ]
        })
        .collect();

    // Single-threaded ground truth, computed before any contention.
    let expected: Vec<(Vec<Neighbor>, Vec<Neighbor>, Vec<Neighbor>)> = queries
        .iter()
        .map(|q| {
            (
                index.knn(q, 9),
                index.range(q, 1.25),
                index.k_farthest(q, 6),
            )
        })
        .collect();

    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let index = Arc::clone(&index);
                let queries = &queries;
                let expected = &expected;
                scope.spawn(move || {
                    // Each client walks the workload from a different
                    // offset so distinct queries contend at any instant.
                    for round in 0..ROUNDS {
                        for j in 0..queries.len() {
                            let i = (j + c * 5 + round) % queries.len();
                            let q = &queries[i];
                            let (knn, range, kfn) = &expected[i];
                            assert_eq!(&index.knn(q, 9), knn, "client {c} query {i}");
                            assert_eq!(&index.range(q, 1.25), range, "client {c} query {i}");
                            assert_eq!(&index.k_farthest(q, 6), kfn, "client {c} query {i}");
                        }
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
    });
}

#[test]
fn concurrent_budgeted_queries_are_deterministic() {
    // Budgeted sharded search shares no cross-shard bound, so even under
    // heavy thread contention every client sees the same best-effort
    // answer (and the same spend) for the same query.
    let points: Vec<Vec<f64>> = (0..300)
        .map(|i| vec![(i % 17) as f64, (i % 11) as f64])
        .collect();
    let index = Arc::new(
        ShardedIndex::build(points, 3, Threads::Fixed(3), |s, part| {
            MvpTree::build(part, Euclidean, MvpParams::paper(2, 5, 2).seed(s as u64))
        })
        .unwrap(),
    );
    let q = vec![4.2, 5.1];
    // 4 distance computations per 100-point shard: guaranteed to run dry.
    let expected = index.knn_budgeted(&q, 8, SearchBudget::limited(12));
    assert!(expected.exhausted);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..8)
            .map(|_| {
                let index = Arc::clone(&index);
                let q = &q;
                let expected = &expected;
                scope.spawn(move || {
                    for _ in 0..25 {
                        let got = index.knn_budgeted(q, 8, SearchBudget::limited(12));
                        assert_eq!(&got, expected);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
    });
}
