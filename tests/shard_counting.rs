//! Distance-computation accounting under sharded execution.
//!
//! [`Counted`] clones share one tally through an `Arc`, so cloning a
//! single probe into every shard of a [`ShardedIndex`] must make
//! `Counted::totals()` read the *cross-shard* query total — each
//! distance charged exactly once, with no double-counting from the
//! shared-bound fast path and no drift between the budget meter's
//! `spent` and the metric-level tally.

use vantage::prelude::*;

fn tie_points(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| vec![(i % 5) as f64, (i % 3) as f64])
        .collect()
}

#[test]
fn sharded_linear_knn_counts_each_distance_exactly_once() {
    let n = 120;
    for shards in [1, 2, 4, 7] {
        for threads in [Threads::SEQUENTIAL, Threads::Fixed(4)] {
            let counted = Counted::new(Euclidean);
            let probe = counted.clone();
            let idx = ShardedIndex::build(tie_points(n), shards, threads, |_, part| {
                Ok(LinearScan::new(part, counted.clone()))
            })
            .unwrap();
            probe.reset();
            // A linear scan evaluates every item exactly once per query —
            // the shared kNN bound changes early-abandon cutoffs, never
            // whether an item is charged. Repeat to catch any
            // interleaving-dependent double-count.
            for rep in 0..5 {
                probe.reset();
                idx.knn(&vec![1.1, 0.6], 9);
                assert_eq!(
                    probe.totals().computations,
                    n as u64,
                    "knn S={shards} {threads:?} rep={rep}"
                );
            }
            probe.reset();
            idx.range(&vec![1.1, 0.6], 1.5);
            assert_eq!(
                probe.totals().computations,
                n as u64,
                "range S={shards} {threads:?}"
            );
            probe.reset();
            idx.k_farthest(&vec![1.1, 0.6], 9);
            assert_eq!(
                probe.totals().computations,
                n as u64,
                "k_farthest S={shards} {threads:?}"
            );
        }
    }
}

#[test]
fn sharded_total_matches_the_unsharded_oracle_cost() {
    // For linear shards the scatter-gather query total must equal the
    // unsharded scan's cost: sharding redistributes work, it never adds
    // or hides distance computations.
    let n = 90;
    let oracle_counted = Counted::new(Euclidean);
    let oracle_probe = oracle_counted.clone();
    let oracle = LinearScan::new(tie_points(n), oracle_counted);
    oracle_probe.reset();
    oracle.knn(&vec![2.2, 1.4], 7);
    let oracle_cost = oracle_probe.take();
    assert_eq!(oracle_cost, n as u64);

    for shards in [2, 3, 7] {
        let counted = Counted::new(Euclidean);
        let probe = counted.clone();
        let idx = ShardedIndex::build(tie_points(n), shards, Threads::SEQUENTIAL, |_, part| {
            Ok(LinearScan::new(part, counted.clone()))
        })
        .unwrap();
        probe.reset();
        idx.knn(&vec![2.2, 1.4], 7);
        assert_eq!(probe.take(), oracle_cost, "S={shards}");
    }
}

#[test]
fn per_shard_counters_sum_to_the_shared_query_total() {
    // Two identical sharded vp-tree layouts (same seeds, same parts):
    // one where every shard shares a single probe, one where each shard
    // owns its own. Under sequential scatter both executions are
    // deterministic, so the shared tally must equal the per-shard sum at
    // every step.
    let points = tie_points(100);
    let shards = 4;

    let shared_counted = Counted::new(Euclidean);
    let shared_probe = shared_counted.clone();
    let shared = ShardedIndex::build(points.clone(), shards, Threads::SEQUENTIAL, |s, part| {
        VpTree::build(
            part,
            shared_counted.clone(),
            VpTreeParams::binary().seed(s as u64),
        )
    })
    .unwrap();

    let probes: Vec<Counted<Euclidean>> = (0..shards).map(|_| Counted::new(Euclidean)).collect();
    let split = ShardedIndex::build(points, shards, Threads::SEQUENTIAL, |s, part| {
        VpTree::build(
            part,
            probes[s].clone(),
            VpTreeParams::binary().seed(s as u64),
        )
    })
    .unwrap();

    let per_shard_sum = |probes: &[Counted<Euclidean>]| -> u64 {
        probes.iter().map(|p| p.totals().computations).sum()
    };

    // Construction costs the same distances either way.
    assert_eq!(shared_probe.totals().computations, per_shard_sum(&probes));

    shared_probe.reset();
    for p in &probes {
        p.reset();
    }
    for q in [vec![0.3, 0.3], vec![2.0, 1.0], vec![9.0, -9.0]] {
        shared_probe.reset();
        for p in &probes {
            p.reset();
        }
        assert_eq!(shared.knn(&q, 6), split.knn(&q, 6));
        assert_eq!(
            shared_probe.totals().computations,
            per_shard_sum(&probes),
            "knn q={q:?}"
        );

        shared_probe.reset();
        for p in &probes {
            p.reset();
        }
        assert_eq!(shared.range(&q, 1.2), split.range(&q, 1.2));
        assert_eq!(
            shared_probe.totals().computations,
            per_shard_sum(&probes),
            "range q={q:?}"
        );
    }
}

#[test]
fn budget_meter_spend_matches_the_metric_tally() {
    // The budget counts the paper's cost model — metric distance
    // evaluations, exactly what `Counted` tallies. The meter's `spent`
    // and the probe's delta must agree for every structure and budget.
    let points = tie_points(80);
    let q = vec![1.7, 0.9];
    for budget in [0u64, 5, 17, 60, 200, u64::MAX] {
        let b = if budget == u64::MAX {
            SearchBudget::UNLIMITED
        } else {
            SearchBudget::limited(budget)
        };

        let counted = Counted::new(Euclidean);
        let probe = counted.clone();
        let scan = LinearScan::new(points.clone(), counted.clone());
        probe.reset();
        let out = scan.knn_budgeted(&q, 6, b);
        assert_eq!(probe.take(), out.spent, "linear budget={budget}");

        let tree = VpTree::build(
            points.clone(),
            counted.clone(),
            VpTreeParams::binary().seed(9),
        )
        .unwrap();
        probe.reset();
        let out = tree.knn_budgeted(&q, 6, b);
        assert_eq!(probe.take(), out.spent, "vpt budget={budget}");

        let sharded = ShardedIndex::build(points.clone(), 3, Threads::SEQUENTIAL, |s, part| {
            VpTree::build(part, counted.clone(), VpTreeParams::binary().seed(s as u64))
        })
        .unwrap();
        probe.reset();
        let out = sharded.knn_budgeted(&q, 6, b);
        assert_eq!(probe.take(), out.spent, "sharded budget={budget}");
    }
}
