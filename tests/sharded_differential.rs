//! Adversarial differential sweep for [`ShardedIndex`]: every shard type
//! (linear scan, vp-tree, mvp-tree) × every metric family (three
//! Minkowski vector metrics plus edit distance on strings) × shard
//! counts S ∈ {1, 2, 3, 7} × degenerate datasets (empty, singleton,
//! all-identical, tie-heavy), checked bit-for-bit against the unsharded
//! [`LinearScan`] oracle under both sequential and threaded scatter.

use vantage::prelude::*;

/// A shard type that supports every sharded query form.
trait FullIndex<T>: MetricIndex<T> + FarthestIndex<T> {}
impl<T, I: MetricIndex<T> + FarthestIndex<T>> FullIndex<T> for I {}

/// How closely a variant must match the [`LinearScan`] oracle.
///
/// Linear shards are `Exact`: every distance is computed by the same
/// accumulation as the oracle's, so the scatter-gather merge must
/// reproduce the oracle bit-for-bit, canonical tie ids included. Tree
/// shards are `Distances` on inexact-arithmetic data: a pruning bound
/// like `d(q, v) + hi` can round a hair below a tied point's true
/// distance (e.g. at coordinate magnitude 1e6), making the *unsharded*
/// tree resolve a tie differently from the scan — so, matching the
/// repo's adversarial suite, trees are held to the exact distance
/// multiset, and canonical tie ids are pinned separately on
/// exact-arithmetic data (`knn_ties_at_shard_boundaries_pick_canonical_ids`).
#[derive(Clone, Copy, PartialEq)]
enum Match {
    Exact,
    Distances,
}

type Sharded<T> = Box<dyn FullIndex<T>>;

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 7];

/// Every shard type over the same round-robin partition.
fn sharded_variants<M>(
    points: &[Vec<f64>],
    metric: M,
    shards: usize,
    threads: Threads,
) -> Vec<(&'static str, Match, Sharded<Vec<f64>>)>
where
    M: BoundedMetric<Vec<f64>> + Clone + Send + Sync + 'static,
{
    vec![
        (
            "linear shards",
            Match::Exact,
            Box::new(
                ShardedIndex::build(points.to_vec(), shards, threads, |_, part| {
                    Ok(LinearScan::new(part, metric.clone()))
                })
                .unwrap(),
            ),
        ),
        (
            "vpt shards",
            Match::Distances,
            Box::new(
                ShardedIndex::build(points.to_vec(), shards, threads, |s, part| {
                    VpTree::build(
                        part,
                        metric.clone(),
                        VpTreeParams::binary().seed(7 + s as u64),
                    )
                })
                .unwrap(),
            ),
        ),
        (
            "mvpt shards",
            Match::Distances,
            Box::new(
                ShardedIndex::build(points.to_vec(), shards, threads, |s, part| {
                    MvpTree::build(
                        part,
                        metric.clone(),
                        MvpParams::paper(2, 5, 2).seed(11 + s as u64),
                    )
                })
                .unwrap(),
            ),
        ),
    ]
}

fn sorted_distances(v: &[Neighbor]) -> Vec<f64> {
    let mut d: Vec<f64> = v.iter().map(|n| n.distance).collect();
    d.sort_unstable_by(f64::total_cmp);
    d
}

/// The adversarial dataset zoo. "tie grid" repeats each coordinate value
/// every 5 ids, so under round-robin partitioning equal-distance answers
/// straddle shard boundaries for every S in [`SHARD_COUNTS`] — the merge
/// must still pick the canonical (smaller-id) winners.
fn datasets() -> Vec<(&'static str, Vec<Vec<f64>>)> {
    let mut duplicates = Vec::new();
    for _rep in 0..5 {
        for i in 0..10 {
            duplicates.push(vec![f64::from(i) * 0.7, f64::from((i * 3) % 7)]);
        }
    }
    vec![
        ("empty", Vec::new()),
        ("single point", vec![vec![0.3, 0.7]]),
        ("all identical", vec![vec![0.5, 0.5]; 37]),
        ("duplicates", duplicates),
        (
            "tie grid",
            (0..41)
                .map(|i| vec![(i % 5) as f64, (i % 3) as f64])
                .collect(),
        ),
    ]
}

fn queries() -> Vec<Vec<f64>> {
    vec![
        vec![0.5, 0.5],
        vec![0.3, 0.7],
        vec![2.0, 1.0],  // lands on several tie-grid points exactly
        vec![1e6, -1e6], // far outside every dataset
        vec![0.0, 0.0],
    ]
}

/// Radii per dataset under the worst-case (L1) diameter: zero (boundary
/// inclusion at exactly-computed member distances), a mid-scale value
/// that splits every dataset without landing *exactly* on an
/// inexactly-computed distance (a tree path filter can round such a
/// boundary out; see [`Match`]), and radii past everything.
fn radii(points: &[Vec<f64>]) -> Vec<f64> {
    let mut diameter = 0.0f64;
    for a in points {
        for b in points {
            let d: f64 = a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum();
            diameter = diameter.max(d);
        }
    }
    vec![0.0, 1.45, diameter * 2.0 + 10.0, 1e7]
}

fn check_all_query_forms<T: Clone>(
    context: &str,
    oracle: &LinearScan<T, impl BoundedMetric<T>>,
    index: &dyn FullIndex<T>,
    strictness: Match,
    queries: &[T],
    radii: &[f64],
    n: usize,
) {
    for (qi, q) in queries.iter().enumerate() {
        for &r in radii {
            // Range predicates have no ties to resolve (membership is a
            // per-point comparison of identically-computed distances), so
            // they are held to exact equality for every variant.
            assert_eq!(
                index.range(q, r),
                oracle.range(q, r),
                "{context}: range q#{qi} r={r}"
            );
            assert_eq!(
                index.range_beyond(q, r),
                oracle.range_beyond(q, r),
                "{context}: range_beyond q#{qi} r={r}"
            );
        }
        for k in [0, 1, n.saturating_sub(1), n, n + 5] {
            let (knn, kfn) = (index.knn(q, k), index.k_farthest(q, k));
            let (want_knn, want_kfn) = (oracle.knn(q, k), oracle.k_farthest(q, k));
            match strictness {
                Match::Exact => {
                    assert_eq!(knn, want_knn, "{context}: knn q#{qi} k={k}");
                    assert_eq!(kfn, want_kfn, "{context}: k_farthest q#{qi} k={k}");
                }
                Match::Distances => {
                    assert_eq!(
                        sorted_distances(&knn),
                        sorted_distances(&want_knn),
                        "{context}: knn distances q#{qi} k={k}"
                    );
                    assert_eq!(
                        sorted_distances(&kfn),
                        sorted_distances(&want_kfn),
                        "{context}: k_farthest distances q#{qi} k={k}"
                    );
                }
            }
        }
    }
}

fn sweep_vector_metric<M>(metric: M, metric_name: &str)
where
    M: BoundedMetric<Vec<f64>> + Clone + Send + Sync + 'static,
{
    for (dataset_name, points) in datasets() {
        let oracle = LinearScan::new(points.clone(), metric.clone());
        let qs = queries();
        let rs = radii(&points);
        for shards in SHARD_COUNTS {
            for threads in [Threads::SEQUENTIAL, Threads::Fixed(4)] {
                for (shard_type, strictness, index) in
                    sharded_variants(&points, metric.clone(), shards, threads)
                {
                    let context = format!(
                        "{metric_name} '{dataset_name}' {shard_type} S={shards} {threads:?}"
                    );
                    check_all_query_forms(
                        &context,
                        &oracle,
                        &*index,
                        strictness,
                        &qs,
                        &rs,
                        points.len(),
                    );
                }
            }
        }
    }
}

#[test]
fn sharded_answers_are_bit_identical_under_euclidean() {
    sweep_vector_metric(Euclidean, "l2");
}

#[test]
fn sharded_answers_are_bit_identical_under_manhattan() {
    sweep_vector_metric(Manhattan, "l1");
}

#[test]
fn sharded_answers_are_bit_identical_under_chebyshev() {
    sweep_vector_metric(Chebyshev, "linf");
}

#[test]
fn sharded_answers_are_bit_identical_on_strings() {
    let datasets: Vec<(&str, Vec<String>)> = vec![
        ("empty", Vec::new()),
        ("single word", vec!["word".to_string()]),
        ("all identical", vec!["same".to_string(); 23]),
        (
            "duplicates",
            [
                "abc", "abd", "xyz", "abc", "xyz", "abc", "", "a", "abc", "ab", "abcd",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        ),
    ];
    for (dataset_name, words) in datasets {
        let oracle = LinearScan::new(words.clone(), Levenshtein);
        let qs: Vec<String> = ["abc", "same", "", "completely-unrelated"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let rs = [0.0, 1.0, 64.0];
        for shards in SHARD_COUNTS {
            for threads in [Threads::SEQUENTIAL, Threads::Fixed(4)] {
                let variants: Vec<(&'static str, Sharded<String>)> = vec![
                    (
                        "linear shards",
                        Box::new(
                            ShardedIndex::build(words.clone(), shards, threads, |_, part| {
                                Ok(LinearScan::new(part, Levenshtein))
                            })
                            .unwrap(),
                        ),
                    ),
                    (
                        "vpt shards",
                        Box::new(
                            ShardedIndex::build(words.clone(), shards, threads, |s, part| {
                                VpTree::build(
                                    part,
                                    Levenshtein,
                                    VpTreeParams::binary().seed(1 + s as u64),
                                )
                            })
                            .unwrap(),
                        ),
                    ),
                    (
                        "mvpt shards",
                        Box::new(
                            ShardedIndex::build(words.clone(), shards, threads, |s, part| {
                                MvpTree::build(
                                    part,
                                    Levenshtein,
                                    MvpParams::paper(2, 4, 2).seed(2 + s as u64),
                                )
                            })
                            .unwrap(),
                        ),
                    ),
                ];
                for (shard_type, index) in variants {
                    // Edit distance is integer-valued: every bound is
                    // exact, so trees are held to full bit-identity too.
                    let context =
                        format!("edit '{dataset_name}' {shard_type} S={shards} {threads:?}");
                    check_all_query_forms(
                        &context,
                        &oracle,
                        &*index,
                        Match::Exact,
                        &qs,
                        &rs,
                        words.len(),
                    );
                }
            }
        }
    }
}

#[test]
fn knn_ties_at_shard_boundaries_pick_canonical_ids() {
    // 30 identical points over 7 shards: the true 5-NN are ids 0..5 by
    // canonical tie-breaking, and those ids live in *different* shards —
    // the merge itself must re-establish the canonical order.
    let points = vec![vec![1.0, 2.0]; 30];
    let oracle = LinearScan::new(points.clone(), Euclidean);
    for shards in SHARD_COUNTS {
        let idx = ShardedIndex::build(points.clone(), shards, Threads::Fixed(4), |s, part| {
            VpTree::build(part, Euclidean, VpTreeParams::binary().seed(s as u64))
        })
        .unwrap();
        let got = idx.knn(&vec![1.0, 2.0], 5);
        assert_eq!(got, oracle.knn(&vec![1.0, 2.0], 5), "S={shards}");
        let ids: Vec<usize> = got.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4], "S={shards}");
        let far = idx.k_farthest(&vec![0.0, 0.0], 4);
        let far_ids: Vec<usize> = far.iter().map(|n| n.id).collect();
        assert_eq!(far_ids, vec![0, 1, 2, 3], "S={shards}");
    }
}
