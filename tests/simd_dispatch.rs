//! Differential tests for the SIMD dispatch layer (`vantage_core::simd`).
//!
//! The scalar-identical contract under test:
//!
//! * every kernel produces **bit-identical** results on every supported
//!   dispatch path — for the integer kernels trivially (exact integer
//!   accumulation), for the float kernels because both paths use the
//!   same 16-lane summation order and the same scalar reduction;
//! * abandon decisions and reported work fractions also agree exactly
//!   (shared geometric checkpoint schedule);
//! * on every path, `distance_within` obeys the `BoundedMetric`
//!   contract: never a false abandon at or above the true distance, a
//!   completed value bit-identical to the full distance, work fraction
//!   in `[0, 1]`.
//!
//! Lengths deliberately straddle the dispatch threshold and the 16-lane
//! chunking (0, 1, 15, 16, 17, 31, 32, 33, 63, 64, 65, …), and the value
//! strategy mixes adversarial magnitudes (1e-12 … 1e12) so any
//! reassociation between paths would show up as a bit difference.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::RngExt;
use vantage_core::simd::{self, SimdPath};

const CASES: u32 = 64;

/// Lengths around every boundary that matters: empty, sub-lane, the
/// 16-lane chunk edges, the 32-dim dispatch threshold, the first
/// bounded checkpoint at 64, and ragged larger sizes.
const EDGE_LENGTHS: [usize; 13] = [0, 1, 15, 16, 17, 31, 32, 33, 63, 64, 65, 127, 129];

/// A NaN-free adversarial magnitude: tiny, huge, negative, power-of-two
/// and zero components in one vector exercise every rounding path.
fn adversarial_value(rng: &mut StdRng) -> f64 {
    match rng.random_range(0..7u32) {
        0 => 0.0,
        1 => rng.random_range(-1e12..1e12f64),
        2 => rng.random_range(-1.0..1.0f64),
        3 => f64::powi(2.0, rng.random_range(-60..60i32)),
        4 => -f64::powi(3.0, rng.random_range(-15..15i32)),
        5 => 1e-12,
        _ => -1e-12,
    }
}

/// Equal-length f64 vector pairs over [`EDGE_LENGTHS`] plus random
/// lengths, filled with [`adversarial_value`]s. (The vendored proptest
/// has no `prop_flat_map`/`prop_oneof`, so this is a direct `Strategy`.)
#[derive(Debug, Clone, Copy)]
struct VecPair;

impl Strategy for VecPair {
    type Value = (Vec<f64>, Vec<f64>);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let n = if rng.random_range(0..2u32) == 0 {
            EDGE_LENGTHS[rng.random_range(0..EDGE_LENGTHS.len())]
        } else {
            rng.random_range(2..300usize)
        };
        let a = (0..n).map(|_| adversarial_value(rng)).collect();
        let b = (0..n).map(|_| adversarial_value(rng)).collect();
        (a, b)
    }
}

fn vec_pair() -> VecPair {
    VecPair
}

/// Bounds worth probing relative to a true distance `d`.
fn bounds_for(d: f64) -> Vec<f64> {
    vec![
        -1.0,
        0.0,
        d * 0.25,
        d * 0.5,
        d * 0.999,
        d,
        d * 1.001,
        d * 2.0,
        f64::INFINITY,
    ]
}

type FloatKernel = fn(SimdPath, &[f64], &[f64], f64) -> (Option<f64>, f64);

fn float_kernels() -> Vec<(&'static str, FloatKernel, FloatKernel)> {
    vec![
        ("l1", simd::l1::<false>, simd::l1::<true>),
        ("l2", simd::l2::<false>, simd::l2::<true>),
        ("linf", simd::linf::<false>, simd::linf::<true>),
    ]
}

/// Asserts two `(Option<f64>, f64)` kernel results are bit-identical.
fn assert_bits_eq(
    got: (Option<f64>, f64),
    want: (Option<f64>, f64),
    ctx: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        got.0.map(f64::to_bits),
        want.0.map(f64::to_bits),
        "{}: value differs",
        ctx
    );
    prop_assert_eq!(
        got.1.to_bits(),
        want.1.to_bits(),
        "{}: work fraction differs",
        ctx
    );
    Ok(())
}

// Bodies live in plain functions (the `proptest!` macro recurses over
// every token of its body; long bodies overflow the recursion limit).

/// Full + bounded float kernels agree bitwise across paths, at every
/// probe bound (identical values, abandon decisions and fractions).
fn check_float_kernels(a: &[f64], b: &[f64]) -> Result<(), TestCaseError> {
    for (name, full, bounded) in float_kernels() {
        let reference = full(SimdPath::Portable, a, b, f64::INFINITY);
        let d = reference.0.unwrap();
        prop_assert!(!d.is_nan(), "{}: NaN distance from finite inputs", name);
        for path in simd::test_paths() {
            let ctx = format!("{name} via {path} (n={})", a.len());
            assert_bits_eq(full(path, a, b, f64::INFINITY), reference, &ctx)?;
            for bound in bounds_for(d) {
                let want = bounded(SimdPath::Portable, a, b, bound);
                let got = bounded(path, a, b, bound);
                assert_bits_eq(got, want, &format!("{ctx} bound={bound}"))?;
            }
        }
    }
    Ok(())
}

/// Weighted L1/L2 kernels: same cross-path bit-identity, with
/// non-negative weights as `WeightedLp` guarantees.
fn check_weighted_kernels(a: &[f64], b: &[f64], seed: u64) -> Result<(), TestCaseError> {
    let w: Vec<f64> = (0..a.len())
        .map(|i| ((i as u64 * 2654435761 + seed) % 97) as f64 / 7.0)
        .collect();
    for path in simd::test_paths() {
        let ctx = format!("weighted via {path} (n={})", a.len());
        let ref1 = simd::weighted_l1::<false>(SimdPath::Portable, &w, a, b, f64::INFINITY);
        assert_bits_eq(
            simd::weighted_l1::<false>(path, &w, a, b, f64::INFINITY),
            ref1,
            &format!("{ctx} l1 full"),
        )?;
        let ref2 = simd::weighted_l2::<false>(SimdPath::Portable, &w, a, b, f64::INFINITY);
        assert_bits_eq(
            simd::weighted_l2::<false>(path, &w, a, b, f64::INFINITY),
            ref2,
            &format!("{ctx} l2 full"),
        )?;
        for bound in bounds_for(ref2.0.unwrap()) {
            let want = simd::weighted_l2::<true>(SimdPath::Portable, &w, a, b, bound);
            let got = simd::weighted_l2::<true>(path, &w, a, b, bound);
            assert_bits_eq(got, want, &format!("{ctx} l2 bound={bound}"))?;
        }
    }
    Ok(())
}

/// Integer kernels (Hamming, byte L1/L2, histogram L1): exact
/// accumulation means any path must agree bitwise, including on
/// length-mismatched Hamming inputs.
fn check_integer_kernels(xs: &[u8], ys: &[u8]) -> Result<(), TestCaseError> {
    let n = xs.len().min(ys.len());
    let (xe, ye) = (&xs[..n], &ys[..n]);
    let hx: Vec<u32> = xs.iter().take(n).map(|&v| u32::from(v) * 37).collect();
    let hy: Vec<u32> = ys.iter().take(n).map(|&v| u32::from(v) * 11).collect();
    for path in simd::test_paths() {
        let ctx = format!("via {path} (n={n})");
        let want = simd::hamming_bytes::<false>(SimdPath::Portable, xs, ys, f64::INFINITY);
        let got = simd::hamming_bytes::<false>(path, xs, ys, f64::INFINITY);
        assert_bits_eq(got, want, &format!("hamming {ctx}"))?;
        let d = want.0.unwrap();
        for bound in bounds_for(d) {
            let want = simd::hamming_bytes::<true>(SimdPath::Portable, xs, ys, bound);
            let got = simd::hamming_bytes::<true>(path, xs, ys, bound);
            assert_bits_eq(got, want, &format!("hamming {ctx} bound={bound}"))?;
        }
        for norm in [1.0, 100.0, 10_000.0] {
            let want = simd::byte_l1::<false>(SimdPath::Portable, xe, ye, norm, f64::INFINITY);
            let got = simd::byte_l1::<false>(path, xe, ye, norm, f64::INFINITY);
            assert_bits_eq(got, want, &format!("byte_l1 {ctx} norm={norm}"))?;
            let want = simd::byte_l2::<false>(SimdPath::Portable, xe, ye, norm, f64::INFINITY);
            let got = simd::byte_l2::<false>(path, xe, ye, norm, f64::INFINITY);
            assert_bits_eq(got, want, &format!("byte_l2 {ctx} norm={norm}"))?;
            let d = want.0.unwrap();
            for bound in bounds_for(d) {
                let want = simd::byte_l2::<true>(SimdPath::Portable, xe, ye, norm, bound);
                let got = simd::byte_l2::<true>(path, xe, ye, norm, bound);
                assert_bits_eq(got, want, &format!("byte_l2 {ctx} bound={bound}"))?;
            }
        }
        let want = simd::u32_l1::<false>(SimdPath::Portable, &hx, &hy, 1.0, f64::INFINITY);
        let got = simd::u32_l1::<false>(path, &hx, &hy, 1.0, f64::INFINITY);
        assert_bits_eq(got, want, &format!("u32_l1 {ctx}"))?;
        let d = want.0.unwrap();
        for bound in bounds_for(d) {
            let want = simd::u32_l1::<true>(SimdPath::Portable, &hx, &hy, 1.0, bound);
            let got = simd::u32_l1::<true>(path, &hx, &hy, 1.0, bound);
            assert_bits_eq(got, want, &format!("u32_l1 {ctx} bound={bound}"))?;
        }
    }
    Ok(())
}

/// The `distance_within` soundness contract holds on every path:
/// a bound at or above the true distance must complete with the
/// bit-identical full value; below it, either abandon (`None`) or
/// complete-and-reject; work fraction always in `[0, 1]`.
fn check_distance_within_contract(a: &[f64], b: &[f64]) -> Result<(), TestCaseError> {
    for (name, full, bounded) in float_kernels() {
        for path in simd::test_paths() {
            let d = full(path, a, b, f64::INFINITY).0.unwrap();
            let ctx = format!("{name} via {path} (n={})", a.len());
            // At and above the true distance: must complete, bitwise.
            for bound in [d, d + f64::EPSILON, d * 2.0, f64::INFINITY] {
                let (got, frac) = bounded(path, a, b, bound);
                prop_assert_eq!(
                    got.map(f64::to_bits),
                    Some(d.to_bits()),
                    "{}: false abandon at bound {} >= d {}",
                    &ctx,
                    bound,
                    d
                );
                prop_assert!((0.0..=1.0).contains(&frac), "{}: frac {}", &ctx, frac);
            }
            // Below: never a reported value above the bound.
            for bound in [-1.0, 0.0, d * 0.25, d * 0.999] {
                let (got, frac) = bounded(path, a, b, bound);
                if let Some(v) = got {
                    prop_assert!(v <= bound, "{}: reported {} > bound {}", &ctx, v, bound);
                }
                prop_assert!((0.0..=1.0).contains(&frac), "{}: frac {}", &ctx, frac);
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    #[test]
    fn float_kernels_bit_identical_across_paths(ab in vec_pair()) {
        check_float_kernels(&ab.0, &ab.1)?;
    }

    #[test]
    fn weighted_kernels_bit_identical_across_paths(
        ab in vec_pair(),
        seed in 0u64..1000,
    ) {
        check_weighted_kernels(&ab.0, &ab.1, seed)?;
    }

    #[test]
    fn integer_kernels_bit_identical_across_paths(
        xs in proptest::collection::vec(any::<u8>(), 0..400),
        ys in proptest::collection::vec(any::<u8>(), 0..400),
    ) {
        check_integer_kernels(&xs, &ys)?;
    }

    #[test]
    fn distance_within_contract_holds_under_simd(ab in vec_pair()) {
        check_distance_within_contract(&ab.0, &ab.1)?;
    }
}

/// The 64-d serving-style hot path (below the dispatch threshold at 20-d,
/// above it at 64-d) agrees with the metric-layer entry points: routing
/// through `Manhattan`/`Euclidean`/`Chebyshev` uses the same kernels.
#[test]
fn metric_layer_matches_explicit_kernels() {
    use vantage_core::prelude::*;
    for n in [20usize, 64, 300] {
        let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() * 5.0).collect();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).cos() * 4.0).collect();
        let cases: [(f64, f64); 3] = [
            (
                Manhattan.distance(&a, &b),
                simd::l1::<false>(simd::active(), &a, &b, f64::INFINITY)
                    .0
                    .unwrap(),
            ),
            (
                Euclidean.distance(&a, &b),
                simd::l2::<false>(simd::active(), &a, &b, f64::INFINITY)
                    .0
                    .unwrap(),
            ),
            (
                Chebyshev.distance(&a, &b),
                simd::linf::<false>(simd::active(), &a, &b, f64::INFINITY)
                    .0
                    .unwrap(),
            ),
        ];
        for (metric_d, kernel_d) in cases {
            assert_eq!(metric_d.to_bits(), kernel_d.to_bits(), "n={n}");
        }
    }
}

/// Empty inputs are well-defined on every path and every kernel.
#[test]
fn empty_inputs_are_zero_distance() {
    let e: Vec<f64> = vec![];
    let eb: Vec<u8> = vec![];
    let eh: Vec<u32> = vec![];
    for path in simd::test_paths() {
        assert_eq!(simd::l1::<false>(path, &e, &e, f64::INFINITY).0, Some(0.0));
        assert_eq!(simd::l2::<true>(path, &e, &e, 0.0).0, Some(0.0));
        assert_eq!(simd::linf::<true>(path, &e, &e, -1.0).0, None);
        assert_eq!(
            simd::hamming_bytes::<false>(path, &eb, &eb, f64::INFINITY).0,
            Some(0.0)
        );
        assert_eq!(
            simd::byte_l1::<false>(path, &eb, &eb, 1.0, f64::INFINITY).0,
            Some(0.0)
        );
        assert_eq!(
            simd::u32_l1::<false>(path, &eh, &eh, 1.0, f64::INFINITY).0,
            Some(0.0)
        );
    }
}
