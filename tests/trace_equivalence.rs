//! Tracing must be observation-only: with any sink attached, a search
//! returns bit-identical answers and performs bit-identical distance
//! computations ([`Counted`] totals) compared to the untraced path, and
//! the [`QueryProfile`] role counts partition the [`Counted`] total
//! exactly.

use vantage::prelude::*;
use vantage_datasets::uniform_vectors;

const RADII: [f64; 4] = [0.0, 0.3, 0.7, 2.0];
const KS: [usize; 4] = [1, 5, 40, 500];

fn queries() -> Vec<Vec<f64>> {
    uniform_vectors(6, 8, 2)
}

/// Runs every (query, radius/k) workload twice — untraced through the
/// `MetricIndex` methods, traced into a fresh [`QueryProfile`] — and
/// checks answers, `Counted` totals and the role-sum identity.
fn assert_equivalent<I, R, K>(name: &str, probe: &Counted<Euclidean>, index: &I, run: (R, K))
where
    I: MetricIndex<Vec<f64>>,
    R: Fn(&I, &Vec<f64>, f64, &mut QueryProfile) -> Vec<Neighbor>,
    K: Fn(&I, &Vec<f64>, usize, &mut QueryProfile) -> Vec<Neighbor>,
{
    let (range_traced, knn_traced) = run;
    for q in &queries() {
        for r in RADII {
            probe.reset();
            let untraced = index.range(q, r);
            let untraced_cost = probe.take();

            let mut profile = QueryProfile::new();
            let traced = range_traced(index, q, r, &mut profile);
            let traced_cost = probe.take();

            assert_eq!(untraced, traced, "{name} range answers differ at r={r}");
            assert_eq!(
                untraced_cost, traced_cost,
                "{name} range cost differs at r={r}"
            );
            assert_eq!(
                profile.total_distances(),
                traced_cost,
                "{name} profile total != Counted total at r={r}"
            );
            assert_eq!(
                profile.distances(DistanceRole::Vantage)
                    + profile.distances(DistanceRole::Candidate),
                traced_cost,
                "{name} role counts don't partition the Counted total at r={r}"
            );
        }
        for k in KS {
            probe.reset();
            let untraced = index.knn(q, k);
            let untraced_cost = probe.take();

            let mut profile = QueryProfile::new();
            let traced = knn_traced(index, q, k, &mut profile);
            let traced_cost = probe.take();

            assert_eq!(untraced, traced, "{name} knn answers differ at k={k}");
            assert_eq!(
                untraced_cost, traced_cost,
                "{name} knn cost differs at k={k}"
            );
            assert_eq!(
                profile.total_distances(),
                traced_cost,
                "{name} knn profile total != Counted total at k={k}"
            );
        }
    }
}

#[test]
fn vp_tree_traced_is_bit_identical() {
    let metric = Counted::new(Euclidean);
    let probe = metric.clone();
    let tree = VpTree::build(
        uniform_vectors(400, 8, 1),
        metric,
        VpTreeParams::with_order(3).leaf_capacity(6).seed(7),
    )
    .unwrap();
    assert_equivalent(
        "vp",
        &probe,
        &tree,
        (
            |t: &VpTree<_, _>, q: &Vec<f64>, r, sink: &mut QueryProfile| t.range_traced(q, r, sink),
            |t: &VpTree<_, _>, q: &Vec<f64>, k, sink: &mut QueryProfile| t.knn_traced(q, k, sink),
        ),
    );
}

#[test]
fn mvp_tree_traced_is_bit_identical() {
    let metric = Counted::new(Euclidean);
    let probe = metric.clone();
    let tree = MvpTree::build(
        uniform_vectors(400, 8, 1),
        metric,
        MvpParams::paper(3, 20, 5).seed(7),
    )
    .unwrap();
    assert_equivalent(
        "mvp",
        &probe,
        &tree,
        (
            |t: &MvpTree<_, _>, q: &Vec<f64>, r, sink: &mut QueryProfile| {
                t.range_traced(q, r, sink)
            },
            |t: &MvpTree<_, _>, q: &Vec<f64>, k, sink: &mut QueryProfile| t.knn_traced(q, k, sink),
        ),
    );
}

#[test]
fn linear_scan_traced_is_bit_identical() {
    let metric = Counted::new(Euclidean);
    let probe = metric.clone();
    let scan = LinearScan::new(uniform_vectors(400, 8, 1), metric);
    assert_equivalent(
        "linear",
        &probe,
        &scan,
        (
            |s: &LinearScan<_, _>, q: &Vec<f64>, r, sink: &mut QueryProfile| {
                s.range_traced(q, r, sink)
            },
            |s: &LinearScan<_, _>, q: &Vec<f64>, k, sink: &mut QueryProfile| {
                s.knn_traced(q, k, sink)
            },
        ),
    );
}

#[test]
fn baseline_trees_traced_are_bit_identical() {
    let points = uniform_vectors(400, 8, 1);
    {
        let metric = Counted::new(Euclidean);
        let probe = metric.clone();
        let gh = GhTree::build(points.clone(), metric, GhTreeParams::default()).unwrap();
        assert_equivalent(
            "gh",
            &probe,
            &gh,
            (
                |t: &GhTree<_, _>, q: &Vec<f64>, r, sink: &mut QueryProfile| {
                    t.range_traced(q, r, sink)
                },
                |t: &GhTree<_, _>, q: &Vec<f64>, k, sink: &mut QueryProfile| {
                    t.knn_traced(q, k, sink)
                },
            ),
        );
    }
    {
        let metric = Counted::new(Euclidean);
        let probe = metric.clone();
        let gnat = Gnat::build(points, metric, GnatParams::default()).unwrap();
        assert_equivalent(
            "gnat",
            &probe,
            &gnat,
            (
                |t: &Gnat<_, _>, q: &Vec<f64>, r, sink: &mut QueryProfile| {
                    t.range_traced(q, r, sink)
                },
                |t: &Gnat<_, _>, q: &Vec<f64>, k, sink: &mut QueryProfile| t.knn_traced(q, k, sink),
            ),
        );
    }
}

#[test]
fn bk_tree_traced_is_bit_identical() {
    let words = vantage_datasets::perturbed_words(80, 9, 3, 4);
    let metric = Counted::new(Levenshtein);
    let probe = metric.clone();
    let bk = BkTree::build(words, metric);
    for q in ["hello", "", "zzzzzzzzzz"] {
        let q = q.to_string();
        for r in [0.0, 1.0, 3.0, 20.0] {
            probe.reset();
            let untraced = bk.range(&q, r);
            let untraced_cost = probe.take();
            let mut profile = QueryProfile::new();
            let traced = bk.range_traced(&q, r, &mut profile);
            assert_eq!(untraced, traced, "bk range answers differ at r={r}");
            assert_eq!(profile.total_distances(), probe.take());
            assert_eq!(profile.total_distances(), untraced_cost);
        }
        for k in [1, 7, 200] {
            probe.reset();
            let untraced = bk.knn(&q, k);
            let untraced_cost = probe.take();
            let mut profile = QueryProfile::new();
            let traced = bk.knn_traced(&q, k, &mut profile);
            assert_eq!(untraced, traced, "bk knn answers differ at k={k}");
            assert_eq!(profile.total_distances(), probe.take());
            assert_eq!(profile.total_distances(), untraced_cost);
        }
    }
}

#[test]
fn profiles_see_pruning_on_selective_queries() {
    // A selective query on a real tree must show both savings mechanisms.
    let points = uniform_vectors(600, 8, 11);
    let tree = MvpTree::build(
        points.clone(),
        Euclidean,
        MvpParams::paper(3, 40, 5).seed(1),
    )
    .unwrap();
    let mut profile = QueryProfile::new();
    tree.range_traced(&points[17], 0.05, &mut profile);
    assert!(profile.nodes_visited() > 0);
    assert!(profile.subtrees_pruned() > 0, "no subtree was pruned");
    assert!(
        profile.candidates_rejected() > 0,
        "no leaf candidate was filtered"
    );
    assert!(profile.total_distances() < points.len() as u64);
    // Per-level fanout: level 0 is the root, visited exactly once, and
    // the per-level visit counts partition the node total.
    assert_eq!(profile.levels()[0].visited, 1);
    let by_level: u64 = profile.levels().iter().map(|l| l.visited).sum();
    assert_eq!(by_level, profile.nodes_visited());
}

/// Telemetry and tracing observe the same queries without interfering:
/// an [`Instrumented`] index answers bit-identically to the traced path,
/// and the per-role `QueryProfile` counts (vantage-point + leaf-candidate)
/// sum exactly to the telemetry distance-histogram totals, op for op.
#[test]
fn instrumented_index_composes_with_query_profiles() {
    let metric = Counted::new(Euclidean);
    let probe = metric.clone();
    let tree = MvpTree::build(
        uniform_vectors(400, 8, 1),
        metric,
        MvpParams::paper(3, 20, 5).seed(7),
    )
    .unwrap();
    let registry = MetricsRegistry::new();
    let instrumented = Instrumented::with_probe(tree, registry.index("mvp"), probe);

    let mut range_role_sum = 0u64;
    let mut knn_trace_sum = 0u64;
    let mut range_ops = 0u64;
    let mut knn_ops = 0u64;
    for q in &queries() {
        for r in RADII {
            let telemetered = instrumented.range(q, r);
            let mut profile = QueryProfile::new();
            let traced = instrumented.inner().range_traced(q, r, &mut profile);
            assert_eq!(
                telemetered, traced,
                "instrumented range differs from traced at r={r}"
            );
            range_role_sum += profile.distances(DistanceRole::Vantage)
                + profile.distances(DistanceRole::Candidate);
            range_ops += 1;
        }
        for k in KS {
            let telemetered = instrumented.knn(q, k);
            let mut profile = QueryProfile::new();
            let traced = instrumented.inner().knn_traced(q, k, &mut profile);
            assert_eq!(
                telemetered, traced,
                "instrumented knn differs from traced at k={k}"
            );
            knn_trace_sum += profile.total_distances();
            knn_ops += 1;
        }
    }

    let snapshot = registry.snapshot();
    let mvp = snapshot.index("mvp").expect("mvp metrics recorded");
    let range = mvp.op(OpKind::Range).expect("range op recorded");
    assert_eq!(range.ops, range_ops);
    assert_eq!(
        range.distances.sum, range_role_sum,
        "per-role trace counts must sum to the telemetry distance total"
    );
    let knn = mvp.op(OpKind::Knn).expect("knn op recorded");
    assert_eq!(knn.ops, knn_ops);
    assert_eq!(
        knn.distances.sum, knn_trace_sum,
        "trace totals must sum to the telemetry distance total"
    );
}

#[cfg(feature = "trace")]
#[test]
fn trace_feature_captures_individual_events() {
    let points = uniform_vectors(300, 8, 5);
    let tree = VpTree::build(points.clone(), Euclidean, VpTreeParams::binary().seed(2)).unwrap();
    let mut profile = QueryProfile::new();
    tree.range_traced(&points[3], 0.1, &mut profile);
    let events = profile.events();
    assert!(!events.is_empty());
    let subtree_events = events.iter().filter(|e| e.subtree).count() as u64;
    assert_eq!(subtree_events, profile.subtrees_pruned());
    for e in events {
        assert!(!e.bound.is_nan());
    }
}

/// A metric that opts into [`BoundedMetric`] with the default
/// full-computation methods: it never abandons, so searching with it is
/// the pre-kernel "always evaluate fully" behavior.
#[derive(Clone)]
struct FullCompute;

impl Metric<Vec<f64>> for FullCompute {
    fn distance(&self, a: &Vec<f64>, b: &Vec<f64>) -> f64 {
        Euclidean.distance(a, b)
    }
}

impl BoundedMetric<Vec<f64>> for FullCompute {}

/// The tentpole's bit-identity claim, end to end: every structure must
/// return byte-for-byte the same answers (ids *and* f64 distances) and
/// charge the same number of distance computations whether its leaf
/// filters run the early-abandoning kernels (`Euclidean`) or always
/// evaluate fully (`FullCompute`).
#[test]
fn early_abandoning_search_is_bit_identical_to_full_evaluation() {
    let points = uniform_vectors(400, 8, 1);

    let fast_probe = Counted::new(Euclidean);
    let full_probe = Counted::new(FullCompute);
    let check = |name: &str, fast: &dyn MetricIndex<Vec<f64>>, full: &dyn MetricIndex<Vec<f64>>| {
        for q in &queries() {
            for r in RADII {
                fast_probe.reset();
                full_probe.reset();
                let a = fast.range(q, r);
                let b = full.range(q, r);
                assert_eq!(a, b, "{name} range answers differ at r={r}");
                assert_eq!(
                    fast_probe.take(),
                    full_probe.take(),
                    "{name} range cost differs at r={r}"
                );
            }
            for k in KS {
                fast_probe.reset();
                full_probe.reset();
                let a = fast.knn(q, k);
                let b = full.knn(q, k);
                assert_eq!(a, b, "{name} knn answers differ at k={k}");
                assert_eq!(
                    fast_probe.take(),
                    full_probe.take(),
                    "{name} knn cost differs at k={k}"
                );
            }
        }
    };

    let params = VpTreeParams::with_order(3).leaf_capacity(6).seed(7);
    check(
        "vp",
        &VpTree::build(points.clone(), fast_probe.clone(), params.clone()).unwrap(),
        &VpTree::build(points.clone(), full_probe.clone(), params).unwrap(),
    );
    let params = MvpParams::paper(3, 20, 5).seed(7);
    check(
        "mvp",
        &MvpTree::build(points.clone(), fast_probe.clone(), params.clone()).unwrap(),
        &MvpTree::build(points.clone(), full_probe.clone(), params).unwrap(),
    );
    check(
        "linear",
        &LinearScan::new(points.clone(), fast_probe.clone()),
        &LinearScan::new(points.clone(), full_probe.clone()),
    );
    check(
        "gh",
        &GhTree::build(points.clone(), fast_probe.clone(), GhTreeParams::default()).unwrap(),
        &GhTree::build(points.clone(), full_probe.clone(), GhTreeParams::default()).unwrap(),
    );
    check(
        "gnat",
        &Gnat::build(points.clone(), fast_probe.clone(), GnatParams::default()).unwrap(),
        &Gnat::build(points.clone(), full_probe.clone(), GnatParams::default()).unwrap(),
    );
    check(
        "fq",
        &FqTree::build(points.clone(), fast_probe.clone(), FqTreeParams::default()).unwrap(),
        &FqTree::build(points, full_probe.clone(), FqTreeParams::default()).unwrap(),
    );
}
