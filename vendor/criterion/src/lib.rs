//! Offline stand-in for the `criterion` crate.
//!
//! The build container resolves no remote registries, so the workspace
//! vendors a minimal wall-clock bench harness exposing the criterion API
//! subset its benches use (see `DESIGN.md`, "Offline dependency policy"):
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::benchmark_group`],
//! `bench_function` / `bench_with_input` / `sample_size`, [`BenchmarkId`]
//! and [`black_box`].
//!
//! Measurement model: each benchmark closure is warmed up, then timed over
//! `samples` batches whose per-batch iteration count is auto-scaled so a
//! batch takes roughly [`TARGET_BATCH`]. The median batch time is
//! reported. No statistics beyond min/median/max, no plots, no baselines —
//! enough to compare configurations (e.g. 1 thread vs N threads) within
//! one run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall-clock time of one measured batch.
const TARGET_BATCH: Duration = Duration::from_millis(25);

/// Opaque value barrier preventing the optimizer from deleting benched
/// work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Types accepted as benchmark ids (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Converts into the rendered id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the measured body.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    result: Option<Duration>,
}

impl Bencher {
    /// Measures `body`, storing the median per-iteration time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        // Warm-up and batch-size calibration: run once, scale the batch so
        // it takes roughly TARGET_BATCH.
        let start = Instant::now();
        black_box(body());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters_per_batch =
            usize::try_from((TARGET_BATCH.as_nanos() / once.as_nanos()).clamp(1, 100_000))
                .expect("clamped to small range");

        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(body());
            }
            per_iter.push(start.elapsed() / u32::try_from(iters_per_batch).expect("clamped"));
        }
        per_iter.sort_unstable();
        self.result = Some(per_iter[per_iter.len() / 2]);
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured batches per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.samples,
            result: None,
        };
        body(&mut bencher);
        self.criterion
            .report(&self.name, &id.into_id(), bencher.result);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut body: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |bencher| body(bencher, input))
    }

    /// Ends the group (formatting separator only in this stand-in).
    pub fn finish(self) {
        println!();
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            samples: 10,
        }
    }

    fn report(&mut self, group: &str, id: &str, median: Option<Duration>) {
        match median {
            Some(t) => println!("{group}/{id:<40} median {}", format_duration(t)),
            None => println!("{group}/{id:<40} (no measurement: Bencher::iter never called)"),
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

/// Declares a benchmark group function running each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_round_trips() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("demo");
        group.sample_size(3);
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.bench_with_input(BenchmarkId::new("mul", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x) * 3)
        });
        group.finish();
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 10).into_id(), "f/10");
        assert_eq!(BenchmarkId::from_parameter(5).into_id(), "5");
    }

    #[test]
    fn durations_format_across_scales() {
        assert_eq!(format_duration(Duration::from_nanos(5)), "5 ns");
        assert!(format_duration(Duration::from_micros(5)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(5)).ends_with(" s"));
    }
}
