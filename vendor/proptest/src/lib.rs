//! Offline stand-in for the `proptest` crate.
//!
//! The build container resolves no remote registries, so the workspace
//! vendors the *subset* of the proptest 1.x API its property tests use
//! (see `DESIGN.md`, "Offline dependency policy"): the [`proptest!`]
//! macro, [`prop_assert!`]/[`prop_assert_eq!`], numeric range strategies,
//! [`collection::vec`], [`any`] for `u8`/`bool`, a character-class regex
//! string strategy, and `prop_map`.
//!
//! Semantics: each `#[test]` runs `ProptestConfig::cases` generated cases
//! from a deterministic per-test seed (derived from the test's module
//! path), so failures reproduce exactly. There is **no shrinking** — a
//! failing case panics with the offending assertion immediately.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[doc(hidden)]
pub mod __rt {
    pub use rand;
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use rand::rngs::StdRng;
    use rand::RngExt;

    /// A recipe for generating values of a type.
    ///
    /// The vendored stand-in collapses upstream's `Strategy`/`ValueTree`
    /// pair into one method: strategies generate values directly and do
    /// not shrink.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl<T: rand::SampleUniform> Strategy for std::ops::Range<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.random_range(self.clone())
        }
    }

    impl<T: rand::SampleUniform> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.random_range(self.clone())
        }
    }

    /// Strategy for `&str` regex patterns of the form `[class]{min,max}`
    /// (character classes with literal characters and `a-z` ranges, and an
    /// optional repetition count; a bare `[class]` generates one char).
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut StdRng) -> String {
            let (chars, min, max) = parse_class_pattern(self).unwrap_or_else(|| {
                panic!(
                    "vendored proptest supports only `[class]{{min,max}}` string \
                     patterns, got `{self}`"
                )
            });
            let len = rng.random_range(min..=max);
            (0..len)
                .map(|_| chars[rng.random_range(0..chars.len())])
                .collect()
        }
    }

    /// Parses `[abc0-9]{min,max}` into (expanded class, min, max).
    fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let (class, rest) = rest.split_once(']')?;
        let mut chars = Vec::new();
        let mut it = class.chars().peekable();
        while let Some(c) = it.next() {
            if it.peek() == Some(&'-') {
                let mut look = it.clone();
                look.next(); // the '-'
                if let Some(&end) = look.peek() {
                    it = look;
                    it.next();
                    for code in (c as u32)..=(end as u32) {
                        chars.push(char::from_u32(code)?);
                    }
                    continue;
                }
            }
            chars.push(c);
        }
        if chars.is_empty() {
            return None;
        }
        if rest.is_empty() {
            return Some((chars, 1, 1));
        }
        let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
        let (min, max) = counts.split_once(',')?;
        Some((chars, min.trim().parse().ok()?, max.trim().parse().ok()?))
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use rand::SeedableRng;

        #[test]
        fn class_patterns_parse() {
            let (chars, min, max) = parse_class_pattern("[a-c]{0,7}").unwrap();
            assert_eq!(chars, vec!['a', 'b', 'c']);
            assert_eq!((min, max), (0, 7));
            let (chars, min, max) = parse_class_pattern("[01]{0,16}").unwrap();
            assert_eq!(chars, vec!['0', '1']);
            assert_eq!((min, max), (0, 16));
            assert!(parse_class_pattern("hello").is_none());
        }

        #[test]
        fn string_strategy_respects_class_and_length() {
            let mut rng = StdRng::seed_from_u64(5);
            for _ in 0..200 {
                let s = "[a-c]{0,7}".generate(&mut rng);
                assert!(s.len() <= 7);
                assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s}");
            }
        }
    }
}

pub mod arbitrary {
    //! The [`any`] entry point for types with a canonical strategy.

    use std::marker::PhantomData;

    use rand::rngs::StdRng;

    use crate::strategy::Strategy;

    /// Strategy generating "any" value of `T` (the types the workspace
    /// needs: the full range of `u8` and `bool`).
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    /// Returns the canonical strategy for `T`.
    pub fn any<T>() -> Any<T>
    where
        T: rand::Standard,
    {
        Any(PhantomData)
    }

    impl<T: rand::Standard> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            use rand::RngExt;
            rng.random()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use rand::rngs::StdRng;
    use rand::RngExt;

    use crate::strategy::Strategy;

    /// A size specification for [`vec`]: an exact length or a half-open
    /// range of lengths.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max_inclusive: exact,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(range: std::ops::Range<usize>) -> Self {
            assert!(!range.is_empty(), "empty vec size range");
            SizeRange {
                min: range.start,
                max_inclusive: range.end - 1,
            }
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.min..=self.size.max_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test-run configuration.

    /// Error raised by a failing test case.
    ///
    /// The vendored [`prop_assert!`](crate::prop_assert) panics rather
    /// than returning this, but helper functions written against the
    /// upstream API still name the type in their signatures, and test
    /// bodies run inside a closure returning `Result<(), TestCaseError>`
    /// so `?` works.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case failed an assertion.
        Fail(String),
        /// The case asked to be discarded.
        Reject(String),
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(msg) => write!(f, "test case failed: {msg}"),
                TestCaseError::Reject(msg) => write!(f, "test case rejected: {msg}"),
            }
        }
    }

    /// Configuration for a [`proptest!`](crate::proptest) block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

/// Asserts a condition inside a property test.
///
/// (Upstream returns a `TestCaseError` so the runner can shrink; the
/// vendored stand-in panics immediately, which fails the test with the
/// generating seed fixed per test, so the case reproduces on re-run.)
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// item becomes a regular test running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $(
        $(#[$attr:meta])+
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                // FNV-1a over the fully qualified test name: a fixed,
                // distinct generation seed per test.
                let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
                for byte in concat!(module_path!(), "::", stringify!($name)).bytes() {
                    seed ^= u64::from(byte);
                    seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
                }
                let mut rng = <$crate::__rt::rand::rngs::StdRng as
                    $crate::__rt::rand::SeedableRng>::seed_from_u64(seed);
                for _case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )*
                    // Run inside a Result closure so `?`-style helpers
                    // written against upstream proptest still compile.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!("{e}");
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @impl ::core::default::Default::default();
            $($rest)*
        );
    };
}

pub mod prelude {
    //! The glob-import surface property tests use.

    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_generate_in_bounds(
            x in 0usize..10,
            y in -5.0f64..5.0,
            flag in any::<bool>(),
        ) {
            prop_assert!(x < 10);
            prop_assert!((-5.0..5.0).contains(&y));
            prop_assert!(usize::from(flag) <= 1);
        }

        #[test]
        fn vec_strategy_sizes(
            v in crate::collection::vec(any::<u8>(), 0..12),
            exact in crate::collection::vec(0u32..100, 7usize),
        ) {
            prop_assert!(v.len() < 12);
            prop_assert_eq!(exact.len(), 7);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(s in "[a-e]{0,10}") {
            prop_assert!(s.len() <= 10);
        }
    }
}
