//! Offline stand-in for the `rand` crate.
//!
//! The build container resolves no remote registries, so the workspace
//! vendors the *subset* of the rand 0.10 API it actually uses (see
//! `DESIGN.md`, "Offline dependency policy"). The implementation is a real
//! deterministic PRNG — xoshiro256++ seeded through SplitMix64 — so every
//! seeded workload in the workspace is reproducible, which is all the
//! index structures and experiments require. It is **not** intended to be
//! statistically or API-compatible with upstream `rand` beyond the surface
//! exercised here.
//!
//! Provided surface:
//!
//! * [`SeedableRng`] with `from_seed` / `seed_from_u64`;
//! * [`rngs::StdRng`];
//! * [`RngExt`] with `random_range` (integer and float ranges, half-open
//!   and inclusive) and `random::<T>()`;
//! * [`seq::IndexedRandom::choose`] and [`seq::index::sample`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator driven by a 64-bit core step.
///
/// Upstream rand splits this into `RngCore` + extension traits; for the
/// vendored subset one base trait carrying the raw step is enough.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A deterministic generator seedable from a fixed-size byte seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed by expanding it with
    /// SplitMix64 (the conventional seeding scheme for xoshiro-family
    /// generators).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let value = splitmix64(&mut state);
            for (dst, src) in chunk.iter_mut().zip(value.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// (Upstream `StdRng` is a ChaCha stream cipher; the vendored stand-in
    /// trades cryptographic strength — unused here — for zero
    /// dependencies. Sequences differ from upstream, which only matters if
    /// trees built by upstream rand were persisted, and none are.)
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

/// A type that can be sampled uniformly from a range by [`RngExt`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample from empty range");
                let span = (high as u128).wrapping_sub(low as u128);
                low.wrapping_add(uniform_u128(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample from empty range");
                let span = (high as u128).wrapping_sub(low as u128) + 1;
                low.wrapping_add(uniform_u128(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw from `[0, span)` (`span > 0`) by rejection sampling over
/// the top bits, so small spans are exactly uniform.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // span fits in u64 + 1 for every integer type above except full-width
    // u64/u128 spans, which the workspace never requests via ranges.
    let span64 = u64::try_from(span).expect("range span exceeds u64");
    let zone = u64::MAX - (u64::MAX % span64 + 1) % span64;
    loop {
        let draw = rng.next_u64();
        if draw <= zone {
            return u128::from(draw % span64);
        }
    }
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample from empty range");
                let unit = (rng.next_u64() >> 11) as $t
                    / (1u64 << 53) as $t;
                low + (high - low) * unit
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample from empty range");
                // Uses the same open-ended draw; the endpoint has measure
                // zero, matching upstream's behaviour closely enough for
                // the workload generators that use `..=` float ranges.
                let unit = (rng.next_u64() >> 11) as $t
                    / (1u64 << 53) as $t;
                low + (high - low) * unit
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// A range argument accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(rng, low, high)
    }
}

/// A type with a canonical "plain random value" distribution for
/// [`RngExt::random`] (upstream's `StandardUniform`).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Convenience sampling methods on any [`RngCore`] (upstream 0.10's
/// renamed `Rng` extension trait).
pub trait RngExt: RngCore {
    /// Samples a value uniformly from `range`.
    fn random_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Draws a value from the type's standard distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Sequence-related helpers.
pub mod seq {
    use super::{RngCore, RngExt};

    /// Random selection from slices.
    pub trait IndexedRandom {
        /// The element type.
        type Output;

        /// Returns a uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }

    /// Index sampling without replacement.
    pub mod index {
        use super::super::{RngCore, RngExt};

        /// A set of distinct sampled indices (upstream's `IndexVec`).
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Iterates the sampled indices.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether no indices were sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Consumes into a plain vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;

            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices from `0..length` by partial
        /// Fisher–Yates shuffle.
        ///
        /// # Panics
        ///
        /// Panics when `amount > length`.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from 0..{length}"
            );
            let mut indices: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.random_range(i..length);
                indices.swap(i, j);
            }
            indices.truncate(amount);
            IndexVec(indices)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{index::sample, IndexedRandom};
    use super::{RngCore, RngExt, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn integer_ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..10);
            assert!((3..10).contains(&v));
            seen[v] = true;
        }
        assert!(seen[3..10].iter().all(|&s| s), "{seen:?}");
        for _ in 0..1000 {
            let v: u8 = rng.random_range(0..=2);
            assert!(v <= 2);
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v: f64 = rng.random_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&v));
            let w: f64 = rng.random_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn random_draws_all_supported_types() {
        let mut rng = StdRng::seed_from_u64(11);
        let _: u64 = rng.random();
        let _: u32 = rng.random();
        let _: u8 = rng.random();
        let _: bool = rng.random();
        let f: f64 = rng.random();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn choose_is_none_on_empty_and_uniformish() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1u32, 2, 3];
        let mut counts = [0u32; 3];
        for _ in 0..300 {
            counts[(*items.choose(&mut rng).unwrap() - 1) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 50), "{counts:?}");
    }

    #[test]
    fn sample_yields_distinct_in_range_indices() {
        let mut rng = StdRng::seed_from_u64(2);
        let picked = sample(&mut rng, 20, 8);
        let v = picked.into_vec();
        assert_eq!(v.len(), 8);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8, "indices must be distinct: {v:?}");
        assert!(v.iter().all(|&i| i < 20));
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversampling_panics() {
        let mut rng = StdRng::seed_from_u64(2);
        sample(&mut rng, 3, 4);
    }

    #[test]
    fn zero_seed_does_not_stick_at_zero() {
        let mut rng = StdRng::from_seed([0; 32]);
        assert_ne!(rng.next_u64(), 0);
    }
}
