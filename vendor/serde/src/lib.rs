//! Offline stand-in for the `serde` crate.
//!
//! Exists so the workspace's *optional* `serde` dependencies resolve
//! without a registry (see `DESIGN.md`, "Offline dependency policy"). The
//! traits are name-compatible markers and the derives are no-ops: default
//! builds (which never enable the `serde` features) are unaffected, while
//! actually serializing against the stand-in is a compile error rather
//! than silent misbehaviour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Deserialization support traits.
pub mod de {
    /// Marker stand-in for `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned: Sized {}

    impl<T> DeserializeOwned for T where T: for<'de> super::Deserialize<'de> {}
}
