//! Offline stand-in for `serde_derive`.
//!
//! The derives expand to nothing: types annotated with
//! `#[derive(Serialize, Deserialize)]` compile, but no trait impls are
//! generated, so code *requiring* the impls (the feature-gated
//! serde-roundtrip test suite) does not build against the stand-in. See
//! `DESIGN.md`, "Offline dependency policy".

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
