//! Offline stand-in for the `serde_json` crate.
//!
//! Exists so dev-dependencies resolve without a registry (see
//! `DESIGN.md`, "Offline dependency policy"). The functions are never
//! reachable from default builds: the only consumer is the
//! `--features serde` roundtrip suite, which cannot compile against the
//! no-op serde derives in the first place.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Stand-in error type.
#[derive(Debug)]
pub struct Error(&'static str);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Stand-in result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Stand-in for `serde_json::to_string`; always errors.
pub fn to_string<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String> {
    Err(Error(
        "vendored serde_json stand-in cannot serialize (offline build)",
    ))
}

/// Stand-in for `serde_json::from_str`; always errors.
pub fn from_str<'a, T: serde::Deserialize<'a>>(_s: &'a str) -> Result<T> {
    Err(Error(
        "vendored serde_json stand-in cannot deserialize (offline build)",
    ))
}
